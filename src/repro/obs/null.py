"""The zero-overhead disabled observer.

Every instrumented call site in the library talks to whatever
:func:`repro.obs.get_observer` returns.  When observability is off (the
default) that is the module-level :data:`NULL_OBSERVER` below: every
method is a no-op and :meth:`NullObserver.span` hands back one shared
do-nothing context manager, so instrumentation costs a method call and
nothing else.  Tier-1 tests and benchmark numbers are therefore identical
whether the ``repro.obs`` package exists or not.
"""

from __future__ import annotations

from .decision import NULL_DECISION, NullDecision

__all__ = ["NullObserver", "NullSpan", "NULL_OBSERVER", "NULL_SPAN"]


class NullSpan:
    """A reusable do-nothing span (context manager)."""

    __slots__ = ()

    #: disabled spans belong to no trace
    context = None

    def __enter__(self) -> NullSpan:
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> NullSpan:
        return self


NULL_SPAN = NullSpan()


class NullObserver:
    """Observer API with every operation stubbed out.

    Mirrors :class:`repro.obs.Observer`; see that class for semantics.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, value: float = 1, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def histogram(self, name: str, value: float, **labels) -> None:
        pass

    def span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def root_span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def event(self, kind: str, **fields) -> None:
        pass

    def decision(self, **fields) -> NullDecision:
        return NULL_DECISION

    def explain(self, request_id: int) -> None:
        return None

    def current_context(self) -> None:
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_OBSERVER = NullObserver()
