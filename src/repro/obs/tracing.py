"""Hierarchical timing spans with trace-context propagation.

A span measures one timed operation (an LP solve, an allocation request,
a whole simulation run).  Spans nest: entering a span while another is
open records the parent, so the exported trace carries the full path
(``proxysim.run/allocation.request/lp.solve``) and the report can show
self-time-style breakdowns.

Every live span also carries a :class:`~repro.obs.context.TraceContext`:
the innermost open span's context is inherited (same trace, new span id),
an ambient context installed at an async boundary (message delivery, DES
event firing — see :func:`repro.obs.context.use_context`) is adopted
when the local stack is empty, and otherwise the span starts a brand-new
trace whose head-based sampling decision it takes on creation.  The
exported JSONL line records ``trace``/``span``/``parent`` ids, which is
what lets ``scripts/obs_trace.py`` reassemble one request's spans into a
single causal tree across per-node trace files.

Use as a context manager::

    with tracer.span("lp.solve", backend="scipy") as sp:
        ...
        sp.set(iterations=12)

or as a decorator::

    @traced("flow.coefficients")
    def transitive_coefficients(...): ...

The module only measures; recording is delegated to the ``on_close``
callback the owning :class:`~repro.obs.Observer` installs.
"""

from __future__ import annotations

import functools
import threading
import time
from collections.abc import Callable

from . import context as obs_context
from .context import TraceContext

__all__ = ["Span", "Tracer", "traced"]


class Span:
    """One timed operation; created by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "path", "start", "duration", "ctx", "root")

    def __init__(self, tracer: Tracer, name: str, attrs: dict, root: bool = False):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = name  # finalised on __enter__ from the active stack
        self.start = 0.0
        self.duration = 0.0
        self.ctx: TraceContext | None = None
        self.root = root

    @property
    def context(self) -> TraceContext | None:
        """The span's trace context (None before ``__enter__``)."""
        return self.ctx

    def set(self, **attrs) -> Span:
        """Attach attributes after creation (e.g. results known at the end)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> Span:
        stack = self.tracer._stack()
        parent_ctx: TraceContext | None = None
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
            parent_ctx = stack[-1].ctx
        else:
            parent_ctx = obs_context.current()
        if self.root or parent_ctx is None:
            # A fresh trace: the sampling decision is taken here, at the
            # head, and inherited by everything underneath.
            self.ctx = obs_context.new_root(self.tracer.sample_rate)
        else:
            self.ctx = parent_ctx.child()
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._on_close(self)
        return False


class Tracer:
    """Span factory holding the per-thread active-span stack.

    ``sample_rate`` is the head-based sampled-in fraction applied when a
    span starts a new trace (it has no parent span and no ambient
    context); inherited contexts keep the decision made at their head.
    """

    def __init__(self, on_close: Callable[[Span], None], sample_rate: float = 1.0):
        self._on_close = on_close
        self.sample_rate = float(sample_rate)
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def root_span(self, name: str, **attrs) -> Span:
        """A span that starts a new trace even while another span is open.

        Used where one long-lived operation (a whole simulation run)
        contains many independently-sampled requests: each consultation
        roots its own trace instead of riding the run's sampling fate.
        """
        return Span(self, name, attrs, root=True)

    @property
    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """Innermost open span's context, else the ambient context."""
        stack = self._stack()
        if stack:
            return stack[-1].ctx
        return obs_context.current()

    @property
    def depth(self) -> int:
        return len(self._stack())


def traced(name: str | None = None, **attrs):
    """Decorator: run the wrapped function inside an observer span.

    The observer is looked up per call, so enabling/disabling
    observability at runtime affects already-decorated functions.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import get_observer

            with get_observer().span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
