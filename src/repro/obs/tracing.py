"""Hierarchical timing spans.

A span measures one timed operation (an LP solve, an allocation request,
a whole simulation run).  Spans nest: entering a span while another is
open records the parent, so the exported trace carries the full path
(``proxysim.run/allocation.request/lp.solve``) and the report can show
self-time-style breakdowns.

Use as a context manager::

    with tracer.span("lp.solve", backend="scipy") as sp:
        ...
        sp.set(iterations=12)

or as a decorator::

    @traced("flow.coefficients")
    def transitive_coefficients(...): ...

The module only measures; recording is delegated to the ``on_close``
callback the owning :class:`~repro.obs.Observer` installs.
"""

from __future__ import annotations

import functools
import threading
import time
from collections.abc import Callable

__all__ = ["Span", "Tracer", "traced"]


class Span:
    """One timed operation; created by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "path", "start", "duration")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = name  # finalised on __enter__ from the active stack
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attrs) -> Span:
        """Attach attributes after creation (e.g. results known at the end)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> Span:
        stack = self.tracer._stack()
        if stack:
            self.path = f"{stack[-1].path}/{self.name}"
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._on_close(self)
        return False


class Tracer:
    """Span factory holding the per-thread active-span stack."""

    def __init__(self, on_close: Callable[[Span], None]):
        self._on_close = on_close
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    @property
    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def depth(self) -> int:
        return len(self._stack())


def traced(name: str | None = None, **attrs):
    """Decorator: run the wrapped function inside an observer span.

    The observer is looked up per call, so enabling/disabling
    observability at runtime affects already-decorated functions.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from . import get_observer

            with get_observer().span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
