"""Merge per-node traces and reconstruct per-request span trees.

Each node in a deployment writes its own JSONL trace; what connects them
is the trace context every span line carries (``trace``/``span``/
``parent`` ids, see :mod:`repro.obs.context`).  This module is the
offline half of that design:

- :func:`load_traces` — read one or many JSONL files into a single
  record list (each record tagged with its source file);
- :func:`build_trees` — group span records by trace id and link them
  into parent/child trees (a span whose parent never made it into any
  file becomes a root, so partial traces still render);
- :func:`breakdown` — per-request critical-path latency attribution:
  because delivery is synchronous, a request's end-to-end latency is its
  root span's duration, and the interesting question is where it went —
  queueing (DES), transport hops, topology cache work, or the LP solve.
  Attribution uses *exclusive* time (a span's duration minus its
  children's), so nothing is double-counted;
- :func:`find_decisions` — query ``{"kind": "decision"}`` flight-recorder
  lines by request id (the offline ``obs.explain``).

``scripts/obs_trace.py`` is the CLI wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .events import read_trace

__all__ = [
    "SpanNode",
    "load_traces",
    "build_trees",
    "breakdown",
    "find_decisions",
    "render_trees",
    "trees_summary",
]

#: span-name prefix -> latency category, first match wins
CATEGORY_PREFIXES: tuple[tuple[str, str], ...] = (
    ("transport.", "transport"),
    ("lp.", "lp"),
    ("des.", "queue"),
    ("queue.", "queue"),
    ("topology.", "topology"),
)


def categorize(name: str) -> str:
    for prefix, category in CATEGORY_PREFIXES:
        if name.startswith(prefix):
            return category
    return "other"


@dataclass
class SpanNode:
    """One span record plus its reconstructed children."""

    record: dict
    children: list[SpanNode] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def duration(self) -> float:
        return float(self.record.get("dur", 0.0))

    @property
    def span_id(self) -> str | None:
        return self.record.get("span")

    @property
    def trace_id(self) -> str | None:
        return self.record.get("trace")

    @property
    def start(self) -> float:
        """Approximate start offset within the source file's clock."""
        return float(self.record.get("ts", 0.0)) - self.duration

    @property
    def self_time(self) -> float:
        """Duration not accounted for by child spans (clamped at 0)."""
        return max(self.duration - sum(c.duration for c in self.children), 0.0)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def load_traces(paths: list[str | Path]) -> list[dict]:
    """Read and concatenate JSONL traces, tagging records with their source."""
    records: list[dict] = []
    for path in paths:
        source = str(path)
        for record in read_trace(path):
            record["source"] = source
            records.append(record)
    return records


def build_trees(records: list[dict]) -> dict[str, list[SpanNode]]:
    """Group span records by trace id and link parent/child edges.

    Returns ``{trace_id: [roots...]}``.  Spans with no trace id (written
    by a pre-context trace) are grouped under ``"(untraced)"`` as flat
    roots.  A span whose parent id is absent from the merged record set
    (its file was lost, or the parent is still open) becomes a root of
    its trace rather than being dropped.
    """
    by_trace: dict[str, list[SpanNode]] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        trace_id = record.get("trace") or "(untraced)"
        by_trace.setdefault(trace_id, []).append(SpanNode(record))

    trees: dict[str, list[SpanNode]] = {}
    for trace_id, nodes in by_trace.items():
        by_span = {n.span_id: n for n in nodes if n.span_id is not None}
        roots: list[SpanNode] = []
        for node in nodes:
            parent_id = node.record.get("parent")
            parent = by_span.get(parent_id) if parent_id is not None else None
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        # Spans are emitted at close (children before parents, deeper
        # first); re-sort siblings by their start offset so the rendered
        # tree reads in execution order within one source file.
        for node in nodes:
            node.children.sort(key=lambda n: (n.record.get("source", ""), n.start))
        roots.sort(key=lambda n: (n.record.get("source", ""), n.start))
        trees[trace_id] = roots
    return trees


def breakdown(roots: list[SpanNode]) -> dict[str, float]:
    """Exclusive-time totals per latency category over the whole tree.

    The values sum to the roots' total duration: every nanosecond of the
    request is attributed to exactly one category (the innermost span it
    was spent in).
    """
    totals: dict[str, float] = {}
    for root in roots:
        for node in root.walk():
            category = categorize(node.name)
            totals[category] = totals.get(category, 0.0) + node.self_time
    return totals


def find_decisions(records: list[dict], request_id: int | None = None) -> list[dict]:
    """Flight-recorder lines from merged traces, optionally by request id."""
    out = []
    for record in records:
        if record.get("kind") != "decision":
            continue
        if request_id is not None and record.get("request_id") != request_id:
            continue
        out.append(record)
    return out


# -- rendering ----------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _render_node(node: SpanNode, indent: int, lines: list[str]) -> None:
    attrs = node.record.get("attrs") or {}
    attr_text = ""
    if attrs:
        parts = [f"{k}={v}" for k, v in list(attrs.items())[:4]]
        attr_text = "  {" + ", ".join(parts) + "}"
    lines.append(
        f"{'  ' * indent}{node.name:<{max(40 - 2 * indent, 8)}} "
        f"{_fmt_seconds(node.duration):>10}{attr_text}"
    )
    for child in node.children:
        _render_node(child, indent + 1, lines)


def _breakdown_line(roots: list[SpanNode]) -> str:
    totals = breakdown(roots)
    total = sum(totals.values()) or 1.0
    parts = [
        f"{category} {_fmt_seconds(seconds)} ({100 * seconds / total:.0f}%)"
        for category, seconds in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    return "breakdown: " + ", ".join(parts)


def render_trees(
    trees: dict[str, list[SpanNode]], trace_id: str | None = None
) -> str:
    """Human-readable span trees plus per-trace latency breakdowns."""
    selected = (
        {trace_id: trees[trace_id]} if trace_id is not None and trace_id in trees
        else trees if trace_id is None
        else {}
    )
    if not selected:
        target = f"trace {trace_id!r}" if trace_id else "any trace"
        return f"(no spans found for {target})"
    lines: list[str] = []
    for tid, roots in sorted(
        selected.items(), key=lambda kv: min((r.start for r in kv[1]), default=0.0)
    ):
        total = sum(r.duration for r in roots)
        root_names = ", ".join(r.name for r in roots[:3])
        lines.append(
            f"trace {tid}  root: {root_names}  "
            f"spans: {sum(1 for r in roots for _ in r.walk())}  "
            f"total: {_fmt_seconds(total)}"
        )
        for root in roots:
            _render_node(root, 1, lines)
        lines.append("  " + _breakdown_line(roots))
        lines.append("")
    lines.append(f"{len(selected)} trace(s)")
    return "\n".join(lines)


def trees_summary(trees: dict[str, list[SpanNode]]) -> dict:
    """JSON-friendly per-trace summary (for ``obs_trace.py --json``)."""

    def node_dict(node: SpanNode) -> dict:
        return {
            "name": node.name,
            "span": node.span_id,
            "dur": node.duration,
            "attrs": node.record.get("attrs") or {},
            "children": [node_dict(c) for c in node.children],
        }

    out = {}
    for trace_id, roots in trees.items():
        out[trace_id] = {
            "roots": [node_dict(r) for r in roots],
            "span_count": sum(1 for r in roots for _ in r.walk()),
            "total_seconds": sum(r.duration for r in roots),
            "breakdown_seconds": breakdown(roots),
        }
    return out
