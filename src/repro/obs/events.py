"""Structured JSONL event export.

One line per record, each a self-describing JSON object with a ``kind``
field:

- ``{"kind": "span", "name": ..., "path": ..., "dur": ..., "attrs": {...}}``
- ``{"kind": "event", "event": ..., ...free-form fields...}``
- ``{"kind": "metric", "metric": "counter"|"gauge"|"histogram",
   "name": ..., "labels": ..., ...}`` — snapshot lines written on flush.

Every record carries ``ts``, seconds since the log was opened (wall
clock), so traces are self-contained and replayable by
``scripts/obs_report.py`` without any in-process state.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

__all__ = ["EventLog", "read_trace"]

#: in-memory mode keeps only the most recent records, so a long
#: metrics-only run (e.g. a whole test suite under REPRO_OBS=1) cannot
#: grow without bound
MAX_BUFFERED_RECORDS = 65536


class EventLog:
    """Append-only JSONL writer (or bounded in-memory buffer when ``path`` is None)."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._t0 = time.perf_counter()
        self._records: deque[dict] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        else:
            self._fh = None
            self._records = deque(maxlen=MAX_BUFFERED_RECORDS)

    def emit(self, record: dict) -> None:
        record.setdefault("ts", round(time.perf_counter() - self._t0, 6))
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=_jsonable) + "\n")
        else:
            self._records.append(record)

    def records(self) -> list[dict]:
        """In-memory records (empty when writing to a file)."""
        return list(self._records or [])

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        """True once a file-backed log has been closed (in-memory: False)."""
        return self.path is not None and self._fh is None


def _jsonable(value):
    """Fallback serialiser: numpy scalars and anything else stringable."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace back into a list of records.

    Lines that do not decode are skipped: a process killed mid-write
    leaves a torn final line, and that must not make the rest of the
    trace unreadable.
    """
    records = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
