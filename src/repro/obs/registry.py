"""Metric primitives: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is a flat namespace of named metrics, each
optionally split by a small set of string labels (for example
``transport.sent{endpoint=grm}``).  Labels are normalised to a sorted
tuple so ``counter("m", a=1, b=2)`` and ``counter("m", b=2, a=1)`` hit
the same series.

Histograms keep count/sum/min/max plus log-spaced bucket counts, which is
enough for the report's mean/max columns and a coarse latency
distribution without storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry", "label_key", "label_str"]


def label_key(labels: dict) -> tuple:
    """Normalise a label dict to a hashable, order-independent key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def label_str(key: tuple) -> str:
    """Render a normalised label key as ``k=v,k=v`` (empty for no labels)."""
    return ",".join(f"{k}={v}" for k, v in key)


# Bucket upper bounds grow by 4x per bucket from 1 microsecond; the last
# bucket is +inf.  Suits both sub-millisecond spans and minutes-long runs.
_BUCKET_BASE = 1e-6
_BUCKET_GROWTH = 4.0
_NUM_BUCKETS = 16


def _bucket_index(value: float) -> int:
    if value <= _BUCKET_BASE:
        return 0
    idx = int(math.log(value / _BUCKET_BASE, _BUCKET_GROWTH)) + 1
    return min(idx, _NUM_BUCKETS - 1)


@dataclass
class Histogram:
    """Streaming summary of observed values."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: list[int] = field(default_factory=lambda: [0] * _NUM_BUCKETS)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[tuple, float]] = {}
        self._gauges: dict[str, dict[tuple, float]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    # -- writes -------------------------------------------------------------

    def counter_inc(self, name: str, value: float = 1, **labels) -> None:
        series = self._counters.setdefault(name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def gauge_set(self, name: str, value: float, **labels) -> None:
        self._gauges.setdefault(name, {})[label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        series = self._histograms.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram()
        hist.observe(value)

    # -- reads --------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Value of one counter series (0 if never incremented)."""
        return self._counters.get(name, {}).get(label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum over all label combinations of a counter."""
        return sum(self._counters.get(name, {}).values())

    def gauge_value(self, name: str, **labels) -> float | None:
        return self._gauges.get(name, {}).get(label_key(labels))

    def get_histogram(self, name: str, **labels) -> Histogram | None:
        return self._histograms.get(name, {}).get(label_key(labels))

    def snapshot(self) -> dict:
        """Plain-dict dump of every metric, suitable for JSON export."""
        return {
            "counters": {
                name: {label_str(k): v for k, v in series.items()}
                for name, series in sorted(self._counters.items())
            },
            "gauges": {
                name: {label_str(k): v for k, v in series.items()}
                for name, series in sorted(self._gauges.items())
            },
            "histograms": {
                name: {label_str(k): h.summary() for k, h in series.items()}
                for name, series in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
