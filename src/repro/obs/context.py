"""Trace-context propagation: stitching one request into one causal tree.

A :class:`TraceContext` names a request (``trace_id``) and one operation
within it (``span_id``, with ``parent_id`` pointing at the operation that
caused it).  Every span minted by the tracer carries a context; crossing
an async or process boundary means carrying the context across by hand:

- :class:`~repro.manager.messages.Message` has an optional ``ctx`` field
  that :class:`~repro.manager.transport.InProcessTransport` stamps with
  the sending span's context and re-activates on the receiving side;
- :class:`~repro.des.engine.Engine` captures the scheduling context on
  each event and restores it when the callback fires.

With that in place, the spans an allocation touches — DES queueing,
transport hops, topology cache work, the LP solve — share one
``trace_id`` and form a parent-linked tree even when each node streams
its own JSONL file; ``scripts/obs_trace.py`` merges the files and
reconstructs the trees.

Head-based sampling happens where a trace is *born*: a new root context
hashes its trace id against the configured rate, and the decision rides
along in :attr:`TraceContext.sampled`.  Hashing (rather than drawing a
random number per hop) makes the decision consistent — every node that
sees a sampled trace id records it fully, and everything else stays
counters-only.
"""

from __future__ import annotations

import itertools
import threading
import uuid
import zlib
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "current",
    "use_context",
    "new_root",
    "new_span_id",
    "sampled_in",
]

# Span ids carry a per-process prefix so ids minted by different nodes
# (each writing its own trace file) never collide in a merged view.
_PROC = uuid.uuid4().hex[:8]
_ids = itertools.count(1)


def new_span_id() -> str:
    return f"{_PROC}-{next(_ids):x}"


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def sampled_in(trace_id: str, rate: float) -> bool:
    """Deterministic head-based sampling decision for a trace id.

    ``rate`` is the sampled-in fraction in ``[0, 1]``.  The decision is a
    pure function of the id, so any participant can re-derive it without
    coordination.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return zlib.crc32(trace_id.encode("ascii", "replace")) / 0x100000000 < rate


@dataclass(frozen=True)
class TraceContext:
    """One request (``trace_id``) and one operation within it (``span_id``)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    sampled: bool = True

    def child(self, span_id: str | None = None) -> TraceContext:
        """A context for an operation caused by this one (same trace)."""
        return TraceContext(
            self.trace_id, span_id or new_span_id(), self.span_id, self.sampled
        )


def new_root(sample_rate: float = 1.0) -> TraceContext:
    """Mint the context for a brand-new trace, deciding sampling here."""
    trace_id = _new_trace_id()
    return TraceContext(
        trace_id, new_span_id(), None, sampled_in(trace_id, sample_rate)
    )


# -- the ambient (thread-local) context --------------------------------------
#
# Set at async boundaries (message delivery, DES event firing) so the
# first span opened on the far side attaches to the causing trace even
# though the Python call stack does not connect them.

_ambient = threading.local()


def current() -> TraceContext | None:
    """The ambient context for this thread (None outside any boundary)."""
    return getattr(_ambient, "ctx", None)


@contextmanager
def use_context(ctx: TraceContext | None):
    """Make ``ctx`` the ambient context for the duration of the block.

    ``use_context(None)`` is a cheap no-op, so call sites can pass a
    possibly-absent message context without branching.
    """
    if ctx is None:
        yield None
        return
    prev = getattr(_ambient, "ctx", None)
    _ambient.ctx = ctx
    try:
        yield ctx
    finally:
        _ambient.ctx = prev
