"""The allocation flight recorder: one auditable record per decision.

Market-style resource sharing lives or dies on participants being able
to audit why an allocation came out the way it did.  Metrics aggregate
that evidence away and traces are sampled; the flight recorder keeps the
last N grant/deny decisions *whole* — requestor, size, donor split, the
perturbation ``theta`` the LP settled on, LP backend/status/iterations,
the bank version the topology was built from, and capacities before and
after — in a bounded ring buffer that is always on while observability
is enabled.

Layering: the GRM (or a direct policy) opens a :class:`DecisionBuilder`
around the allocation; deeper layers that know facts the opener cannot
see (the LP solver's iteration count, the multigrid allocator's round
count) attach them to the *active* decision via :func:`current_decision`
without any handle being threaded through the call chain.  On close the
record lands in the observer's :class:`FlightRecorder` and — when the
surrounding trace is sampled — as a ``{"kind": "decision"}`` JSONL line,
which is what ``scripts/obs_trace.py explain`` queries offline.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field, fields
from pathlib import Path

__all__ = [
    "DecisionRecord",
    "DecisionBuilder",
    "FlightRecorder",
    "NullDecision",
    "NULL_DECISION",
    "current_decision",
    "next_request_id",
]

# Request ids for decisions made outside the message protocol (direct
# policy calls have no Message.msg_id); negative so they can never
# collide with message ids.
_direct_ids = itertools.count(1)


def next_request_id() -> int:
    return -next(_direct_ids)


@dataclass
class DecisionRecord:
    """Everything needed to audit one grant or denial after the fact."""

    request_id: int
    requestor: str = ""
    resource_type: str = "general"
    amount: float = 0.0
    #: "granted" | "denied" | "error"
    outcome: str = "unknown"
    granted: float = 0.0
    #: per-donor split ``((principal, quantity), ...)``; sums to ``granted``
    takes: tuple[tuple[str, float], ...] = ()
    #: the minimised perturbation (max capacity drop among non-requestors)
    theta: float = 0.0
    reason: str = ""
    grm: str = ""
    bank_version: int | None = None
    lp_backend: str | None = None
    lp_status: int | str | None = None
    lp_iterations: int | None = None
    availability_before: dict[str, float] = field(default_factory=dict)
    capacities_before: dict[str, float] = field(default_factory=dict)
    capacities_after: dict[str, float] = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    #: fields recorded by layers this schema does not know about
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "kind": "decision",
            "request_id": self.request_id,
            "requestor": self.requestor,
            "resource_type": self.resource_type,
            "amount": self.amount,
            "outcome": self.outcome,
            "granted": self.granted,
            "takes": [list(t) for t in self.takes],
            "theta": self.theta,
        }
        for name in (
            "reason", "grm", "bank_version", "lp_backend", "lp_status",
            "lp_iterations", "availability_before", "capacities_before",
            "capacities_after", "trace_id", "span_id",
        ):
            value = getattr(self, name)
            if value not in (None, "", {}):
                out[name] = value
        if self.extra:
            out.update(self.extra)
        return out

    @classmethod
    def from_fields(cls, data: dict) -> DecisionRecord:
        """Build a record, routing unknown keys into ``extra``."""
        known = {f.name for f in fields(cls)} - {"extra"}
        core = {k: v for k, v in data.items() if k in known}
        extra = {k: v for k, v in data.items() if k not in known}
        return cls(**core, extra=extra)


_active = threading.local()


def current_decision() -> DecisionBuilder | None:
    """The decision currently being assembled on this thread, if any."""
    return getattr(_active, "builder", None)


class DecisionBuilder:
    """Context manager assembling one :class:`DecisionRecord`.

    While the block is open the builder is the thread's *active* decision
    (:func:`current_decision`), so nested layers can :meth:`set` facts on
    it.  An exception escaping the block marks the outcome ``error``
    rather than losing the record — a crashed allocation is exactly the
    one worth auditing.
    """

    __slots__ = ("_observer", "fields", "_prev")

    def __init__(self, observer, fields: dict):
        self._observer = observer
        self.fields = fields

    def set(self, **fields) -> DecisionBuilder:
        self.fields.update(fields)
        return self

    def __enter__(self) -> DecisionBuilder:
        self._prev = getattr(_active, "builder", None)
        _active.builder = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _active.builder = self._prev
        if exc_type is not None:
            self.fields.setdefault("outcome", "error")
            self.fields.setdefault("reason", f"{exc_type.__name__}: {exc}")
        self._observer._record_decision(self.fields)
        return False


class NullDecision:
    """The disabled-observer counterpart: records nothing."""

    __slots__ = ()

    def set(self, **fields) -> NullDecision:
        return self

    def __enter__(self) -> NullDecision:
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_DECISION = NullDecision()


class FlightRecorder:
    """Bounded ring buffer of the most recent decisions."""

    def __init__(self, capacity: int = 512):
        self.capacity = int(capacity)
        self._buf: deque[DecisionRecord] = deque(maxlen=self.capacity)

    def record(self, record: DecisionRecord) -> None:
        self._buf.append(record)

    def explain(self, request_id: int) -> DecisionRecord | None:
        """The most recent decision for a request id (None if evicted)."""
        for record in reversed(self._buf):
            if record.request_id == request_id:
                return record
        return None

    def records(self) -> list[DecisionRecord]:
        """Oldest-first copy of the buffer."""
        return list(self._buf)

    def export_jsonl(self, path: str | Path) -> int:
        """Append the buffered decisions to a JSONL file; returns count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            for record in self._buf:
                fh.write(json.dumps(record.to_dict(), default=str) + "\n")
        return len(self._buf)

    def __len__(self) -> int:
        return len(self._buf)
