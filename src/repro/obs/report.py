"""Human-readable summaries of metrics and traces.

Two entry points:

- :func:`render_snapshot` — format a live
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot` as aligned tables;
- :func:`summarize_trace` / :func:`render_trace` — replay a JSONL trace
  (see :mod:`repro.obs.events`) into aggregated span timings plus the
  final metric snapshot, independent of any in-process state.  This is
  what ``scripts/obs_report.py`` wraps.
"""

from __future__ import annotations

from pathlib import Path

from .events import read_trace

__all__ = ["render_snapshot", "summarize_trace", "render_trace"]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _table(rows: list[tuple], headers: tuple) -> str:
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(tuple("-" * w for w in widths))]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def render_snapshot(snapshot: dict) -> str:
    """Format a metrics snapshot as counter/gauge/histogram tables."""
    parts = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            (name, labels or "-", _fmt(value))
            for name, series in counters.items()
            for labels, value in sorted(series.items())
        ]
        parts.append("== counters ==\n" + _table(rows, ("name", "labels", "value")))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            (name, labels or "-", _fmt(value))
            for name, series in gauges.items()
            for labels, value in sorted(series.items())
        ]
        parts.append("== gauges ==\n" + _table(rows, ("name", "labels", "value")))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            (
                name,
                labels or "-",
                _fmt(h["count"]),
                f"{h['mean']:.6g}",
                f"{h['min']:.6g}",
                f"{h['max']:.6g}",
                f"{h['sum']:.6g}",
            )
            for name, series in histograms.items()
            for labels, h in sorted(series.items())
        ]
        parts.append(
            "== histograms ==\n"
            + _table(rows, ("name", "labels", "count", "mean", "min", "max", "sum"))
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate raw trace records.

    Returns ``{"spans": {name: {count, total, mean, max}}, "events":
    {event: count}, "decisions": {outcome: count}, "traces": n,
    "counters": ..., "gauges": ..., "histograms": ...}``.  Metric lines
    later in the trace supersede earlier ones (flush writes a full
    snapshot each time).
    """
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    decisions: dict[str, int] = {}
    trace_ids: set[str] = set()
    counters: dict[str, dict[str, float]] = {}
    gauges: dict[str, dict[str, float]] = {}
    histograms: dict[str, dict[str, dict]] = {}
    for rec in records:
        kind = rec.get("kind")
        if kind == "span":
            agg = spans.setdefault(
                rec["name"], {"count": 0, "total": 0.0, "max": 0.0}
            )
            agg["count"] += 1
            agg["total"] += rec.get("dur", 0.0)
            agg["max"] = max(agg["max"], rec.get("dur", 0.0))
            if rec.get("trace"):
                trace_ids.add(rec["trace"])
        elif kind == "event":
            name = rec.get("event", "?")
            events[name] = events.get(name, 0) + 1
        elif kind == "decision":
            outcome = rec.get("outcome", "unknown")
            decisions[outcome] = decisions.get(outcome, 0) + 1
        elif kind == "metric":
            target = {"counter": counters, "gauge": gauges, "histogram": histograms}[
                rec["metric"]
            ]
            entry = rec.get("summary") if rec["metric"] == "histogram" else rec.get("value")
            target.setdefault(rec["name"], {})[rec.get("labels", "")] = entry
    for agg in spans.values():
        agg["mean"] = agg["total"] / agg["count"] if agg["count"] else 0.0
    return {
        "spans": spans,
        "events": events,
        "decisions": decisions,
        "traces": len(trace_ids),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def render_trace(path: str | Path) -> str:
    """Replay a JSONL trace file into the full human-readable report."""
    summary = summarize_trace(read_trace(path))
    parts = [f"trace: {path}"]
    if summary["spans"]:
        rows = [
            (
                name,
                agg["count"],
                f"{agg['total']:.6g}",
                f"{agg['mean']:.6g}",
                f"{agg['max']:.6g}",
            )
            for name, agg in sorted(
                summary["spans"].items(), key=lambda kv: -kv[1]["total"]
            )
        ]
        parts.append(
            "== spans (seconds) ==\n"
            + _table(rows, ("name", "count", "total", "mean", "max"))
        )
    if summary["events"]:
        rows = sorted(summary["events"].items())
        parts.append("== events ==\n" + _table(rows, ("event", "count")))
    if summary.get("decisions"):
        rows = sorted(summary["decisions"].items())
        parts.append(
            "== decisions ==\n" + _table(rows, ("outcome", "count"))
            + "\n(use scripts/obs_trace.py explain <request_id> for details)"
        )
    if summary.get("traces"):
        parts.append(f"distinct traces: {summary['traces']}")
    parts.append(
        render_snapshot(
            {
                "counters": summary["counters"],
                "gauges": summary["gauges"],
                "histograms": summary["histograms"],
            }
        )
    )
    return "\n\n".join(parts)
