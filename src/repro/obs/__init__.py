"""repro.obs — structured tracing, metrics, and profiling hooks.

The library's hot paths (LP solves, flow-matrix builds, GRM/LRM message
round-trips, the DES loop) are instrumented against a process-global
*observer*.  By default that observer is the zero-overhead
:class:`~repro.obs.null.NullObserver`, so nothing is measured and
benchmark numbers are unchanged.  Switch it on with::

    import repro.obs as obs
    obs.enable(trace_path="run.jsonl")   # or obs.enable() for metrics only
    ... run workload ...
    print(obs.report())                  # live metrics tables
    obs.disable()                        # flushes + closes the trace

or from the environment, with no code changes::

    REPRO_OBS=1 python examples/quickstart.py
    REPRO_OBS=1 REPRO_OBS_TRACE=run.jsonl python examples/tracing_demo.py
    REPRO_OBS=1 REPRO_OBS_TRACE=run.jsonl REPRO_OBS_SAMPLE=0.01 ...

A written trace is replayed into summary tables by
``scripts/obs_report.py`` (or :func:`repro.obs.report.render_trace`),
and per-request span trees are reconstructed — across one or many
per-node trace files — by ``scripts/obs_trace.py``.

Instrumented call sites follow one pattern::

    from ..obs import get_observer
    ...
    obs = get_observer()
    with obs.span("lp.solve", backend="scipy") as sp:
        ...
    obs.counter("lp.solves", backend="scipy")

Spans automatically feed a duration histogram named ``span.<name>``, so
enabling metrics alone (no trace file) still yields timing breakdowns.
Each span also carries a :class:`~repro.obs.context.TraceContext`
(trace/span/parent ids) propagated across messages and DES events, with
head-based sampling (``REPRO_OBS_SAMPLE``) deciding per *trace* whether
its spans/events are written to the JSONL file; metrics are always on.

Allocation decisions additionally land in a bounded flight recorder
(:mod:`repro.obs.decision`): :func:`explain` answers "why did request N
come out this way?" with the full donor split, theta, LP statistics, and
the capacities before/after.
"""

from __future__ import annotations

import atexit
import os
from pathlib import Path

from . import context as trace_context
from .context import TraceContext, use_context
from .decision import DecisionBuilder, DecisionRecord, FlightRecorder
from .events import EventLog
from .null import NULL_OBSERVER, NullObserver
from .registry import MetricsRegistry
from .report import render_snapshot, render_trace
from .tracing import Span, Tracer, traced

__all__ = [
    "Observer",
    "NullObserver",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "TraceContext",
    "use_context",
    "trace_context",
    "DecisionRecord",
    "FlightRecorder",
    "traced",
    "get_observer",
    "enable",
    "disable",
    "report",
    "explain",
    "render_snapshot",
    "render_trace",
]

#: default flight-recorder capacity (override with REPRO_OBS_DECISIONS)
DEFAULT_DECISION_CAPACITY = 512


class Observer:
    """A live observer: metrics registry + tracer + optional JSONL export.

    All instrumentation funnels through a handful of methods (shared with
    :class:`~repro.obs.null.NullObserver`):

    - :meth:`counter` / :meth:`gauge` / :meth:`histogram` — metrics;
    - :meth:`span` / :meth:`root_span` — timed context managers, recorded
      as both a ``span.<name>`` histogram and (if tracing and the trace
      is sampled in) a JSONL line carrying trace/span/parent ids;
    - :meth:`event` — a discrete structured record (only meaningful with
      a trace path; otherwise kept in memory for inspection);
    - :meth:`decision` — opens a flight-recorder entry for one
      allocation decision; :meth:`explain` queries the ring buffer.

    ``sample`` is the head-based sampled-in fraction for *new* traces:
    sampled-in traces are recorded fully, everything else stays
    counters-only (the metrics side is unaffected by sampling).
    """

    enabled = True

    def __init__(
        self,
        trace_path: str | Path | None = None,
        sample: float = 1.0,
        decision_capacity: int = DEFAULT_DECISION_CAPACITY,
    ):
        self.registry = MetricsRegistry()
        self.events_log = EventLog(trace_path)
        self.sample_rate = float(sample)
        self.tracer = Tracer(self._on_span_close, sample_rate=self.sample_rate)
        self.decisions = FlightRecorder(decision_capacity)

    # -- metrics ------------------------------------------------------------

    def counter(self, name: str, value: float = 1, **labels) -> None:
        self.registry.counter_inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge_set(name, value, **labels)

    def histogram(self, name: str, value: float, **labels) -> None:
        self.registry.observe(name, value, **labels)

    # -- tracing ------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def root_span(self, name: str, **attrs) -> Span:
        """A span that starts a new, independently-sampled trace."""
        return self.tracer.root_span(name, **attrs)

    def current_context(self) -> TraceContext | None:
        """The trace context in effect on this thread (span or ambient)."""
        return self.tracer.current_context()

    def _on_span_close(self, span: Span) -> None:
        self.registry.observe(f"span.{span.name}", span.duration)
        ctx = span.ctx
        if ctx is not None and not ctx.sampled:
            self.registry.counter_inc("trace.sampled_out_spans")
            return
        record = {
            "kind": "span",
            "name": span.name,
            "path": span.path,
            "dur": round(span.duration, 9),
            "attrs": span.attrs,
        }
        if ctx is not None:
            record["trace"] = ctx.trace_id
            record["span"] = ctx.span_id
            if ctx.parent_id is not None:
                record["parent"] = ctx.parent_id
        self.events_log.emit(record)

    # -- events -------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        ctx = self.tracer.current_context()
        if ctx is not None:
            if not ctx.sampled:
                self.registry.counter_inc("trace.sampled_out_events")
                return
            fields.setdefault("trace", ctx.trace_id)
            fields.setdefault("span", ctx.span_id)
        self.events_log.emit({"kind": "event", "event": kind, **fields})

    # -- decisions ----------------------------------------------------------

    def decision(self, **fields) -> DecisionBuilder:
        """Open a flight-recorder entry; use as a context manager.

        Nested layers attach facts to the in-flight record through
        :func:`repro.obs.decision.current_decision`; on block exit the
        record is ring-buffered (always) and exported to the trace (when
        the surrounding trace is sampled in).
        """
        return DecisionBuilder(self, fields)

    def _record_decision(self, fields: dict) -> None:
        ctx = self.tracer.current_context()
        if ctx is not None:
            fields.setdefault("trace_id", ctx.trace_id)
            fields.setdefault("span_id", ctx.span_id)
        record = DecisionRecord.from_fields(fields)
        self.decisions.record(record)
        self.registry.counter_inc("decision.recorded", outcome=record.outcome)
        if ctx is None or ctx.sampled:
            self.events_log.emit(record.to_dict())

    def explain(self, request_id: int) -> DecisionRecord | None:
        """The most recent decision for a request id (None if evicted)."""
        return self.decisions.explain(request_id)

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """Write the current metric snapshot into the trace and flush."""
        snap = self.registry.snapshot()
        for name, series in snap["counters"].items():
            for labels, value in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "counter", "name": name,
                     "labels": labels, "value": value}
                )
        for name, series in snap["gauges"].items():
            for labels, value in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "gauge", "name": name,
                     "labels": labels, "value": value}
                )
        for name, series in snap["histograms"].items():
            for labels, summary in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "histogram", "name": name,
                     "labels": labels, "summary": summary}
                )
        self.events_log.flush()

    def close(self) -> None:
        self.flush()
        self.events_log.close()

    def report(self) -> str:
        """Render the live metrics as human-readable tables."""
        return render_snapshot(self.registry.snapshot())


# -- the process-global observer -------------------------------------------

_observer: Observer | NullObserver = NULL_OBSERVER


def get_observer() -> Observer | NullObserver:
    """The current process-global observer (the null one when disabled)."""
    return _observer


_atexit_registered = False


def _close_at_exit() -> None:
    if isinstance(_observer, Observer):
        _observer.close()


def enable(
    trace_path: str | Path | None = None,
    sample: float | None = None,
    decision_capacity: int | None = None,
) -> Observer:
    """Switch observability on, replacing any previous observer.

    ``trace_path`` makes every span/event (and, on flush, the metric
    snapshot) stream to a JSONL file; without it, metrics and spans
    aggregate in memory only.  ``sample`` is the head-based sampled-in
    fraction for new traces (default 1.0, or ``REPRO_OBS_SAMPLE``);
    ``decision_capacity`` bounds the allocation flight recorder (default
    512, or ``REPRO_OBS_DECISIONS``).  Re-enabling flushes and closes
    the previous observer's trace first, so no already-recorded data is
    lost; the new trace file starts fresh.  The active trace is flushed
    and closed on :func:`disable` or, failing that, at interpreter exit.
    """
    global _observer, _atexit_registered
    if isinstance(_observer, Observer):
        _observer.close()
    if sample is None:
        sample = _env_float("REPRO_OBS_SAMPLE", 1.0)
    if decision_capacity is None:
        decision_capacity = int(
            _env_float("REPRO_OBS_DECISIONS", DEFAULT_DECISION_CAPACITY)
        )
    _observer = Observer(
        trace_path, sample=sample, decision_capacity=decision_capacity
    )
    if not _atexit_registered:
        atexit.register(_close_at_exit)
        _atexit_registered = True
    return _observer


def disable() -> None:
    """Switch observability off (flushing and closing any open trace)."""
    global _observer
    if isinstance(_observer, Observer):
        _observer.close()
    _observer = NULL_OBSERVER


def report() -> str:
    """Report from the current observer ('(observability disabled)' if off)."""
    if isinstance(_observer, Observer):
        return _observer.report()
    return "(observability disabled)"


def explain(request_id: int) -> DecisionRecord | None:
    """Look up a request's decision in the live flight recorder.

    Returns None when observability is disabled or the record has been
    evicted from the ring buffer (or never existed).
    """
    return _observer.explain(request_id)


def _env_truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() not in ("", "0", "false", "no")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        return default


if _env_truthy(os.environ.get("REPRO_OBS")):
    enable(trace_path=os.environ.get("REPRO_OBS_TRACE") or None)
