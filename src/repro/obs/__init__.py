"""repro.obs — structured tracing, metrics, and profiling hooks.

The library's hot paths (LP solves, flow-matrix builds, GRM/LRM message
round-trips, the DES loop) are instrumented against a process-global
*observer*.  By default that observer is the zero-overhead
:class:`~repro.obs.null.NullObserver`, so nothing is measured and
benchmark numbers are unchanged.  Switch it on with::

    import repro.obs as obs
    obs.enable(trace_path="run.jsonl")   # or obs.enable() for metrics only
    ... run workload ...
    print(obs.report())                  # live metrics tables
    obs.disable()                        # flushes + closes the trace

or from the environment, with no code changes::

    REPRO_OBS=1 python examples/quickstart.py
    REPRO_OBS=1 REPRO_OBS_TRACE=run.jsonl python examples/tracing_demo.py

A written trace is replayed into summary tables by
``scripts/obs_report.py`` (or :func:`repro.obs.report.render_trace`).

Instrumented call sites follow one pattern::

    from ..obs import get_observer
    ...
    obs = get_observer()
    with obs.span("lp.solve", backend="scipy") as sp:
        ...
    obs.counter("lp.solves", backend="scipy")

Spans automatically feed a duration histogram named ``span.<name>``, so
enabling metrics alone (no trace file) still yields timing breakdowns.
"""

from __future__ import annotations

import atexit
import os
from pathlib import Path

from .events import EventLog
from .null import NULL_OBSERVER, NullObserver
from .registry import MetricsRegistry
from .report import render_snapshot, render_trace
from .tracing import Span, Tracer, traced

__all__ = [
    "Observer",
    "NullObserver",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "traced",
    "get_observer",
    "enable",
    "disable",
    "report",
    "render_snapshot",
    "render_trace",
]


class Observer:
    """A live observer: metrics registry + tracer + optional JSONL export.

    All instrumentation funnels through five methods (shared with
    :class:`~repro.obs.null.NullObserver`):

    - :meth:`counter` / :meth:`gauge` / :meth:`histogram` — metrics;
    - :meth:`span` — a timed context manager, recorded as both a
      ``span.<name>`` histogram and (if tracing) a JSONL line;
    - :meth:`event` — a discrete structured record (only meaningful with
      a trace path; otherwise kept in memory for inspection).
    """

    enabled = True

    def __init__(self, trace_path: str | Path | None = None):
        self.registry = MetricsRegistry()
        self.events_log = EventLog(trace_path)
        self.tracer = Tracer(self._on_span_close)

    # -- metrics ------------------------------------------------------------

    def counter(self, name: str, value: float = 1, **labels) -> None:
        self.registry.counter_inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge_set(name, value, **labels)

    def histogram(self, name: str, value: float, **labels) -> None:
        self.registry.observe(name, value, **labels)

    # -- tracing ------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def _on_span_close(self, span: Span) -> None:
        self.registry.observe(f"span.{span.name}", span.duration)
        self.events_log.emit(
            {
                "kind": "span",
                "name": span.name,
                "path": span.path,
                "dur": round(span.duration, 9),
                "attrs": span.attrs,
            }
        )

    # -- events -------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        self.events_log.emit({"kind": "event", "event": kind, **fields})

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """Write the current metric snapshot into the trace and flush."""
        snap = self.registry.snapshot()
        for name, series in snap["counters"].items():
            for labels, value in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "counter", "name": name,
                     "labels": labels, "value": value}
                )
        for name, series in snap["gauges"].items():
            for labels, value in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "gauge", "name": name,
                     "labels": labels, "value": value}
                )
        for name, series in snap["histograms"].items():
            for labels, summary in series.items():
                self.events_log.emit(
                    {"kind": "metric", "metric": "histogram", "name": name,
                     "labels": labels, "summary": summary}
                )
        self.events_log.flush()

    def close(self) -> None:
        self.flush()
        self.events_log.close()

    def report(self) -> str:
        """Render the live metrics as human-readable tables."""
        return render_snapshot(self.registry.snapshot())


# -- the process-global observer -------------------------------------------

_observer: Observer | NullObserver = NULL_OBSERVER


def get_observer() -> Observer | NullObserver:
    """The current process-global observer (the null one when disabled)."""
    return _observer


_atexit_registered = False


def _close_at_exit() -> None:
    if isinstance(_observer, Observer):
        _observer.close()


def enable(trace_path: str | Path | None = None) -> Observer:
    """Switch observability on, replacing any previous observer.

    ``trace_path`` makes every span/event (and, on flush, the metric
    snapshot) stream to a JSONL file; without it, metrics and spans
    aggregate in memory only.  The trace is flushed and closed on
    :func:`disable` or, failing that, at interpreter exit.
    """
    global _observer, _atexit_registered
    if isinstance(_observer, Observer):
        _observer.close()
    _observer = Observer(trace_path)
    if not _atexit_registered:
        atexit.register(_close_at_exit)
        _atexit_registered = True
    return _observer


def disable() -> None:
    """Switch observability off (flushing and closing any open trace)."""
    global _observer
    if isinstance(_observer, Observer):
        _observer.close()
    _observer = NULL_OBSERVER


def report() -> str:
    """Report from the current observer ('(observability disabled)' if off)."""
    if isinstance(_observer, Observer):
        return _observer.report()
    return "(observability disabled)"


def _env_truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() not in ("", "0", "false", "no")


if _env_truthy(os.environ.get("REPRO_OBS")):
    enable(trace_path=os.environ.get("REPRO_OBS_TRACE") or None)
