"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..proxysim.config import SimulationConfig
from ..units import approx_eq

__all__ = ["ExperimentResult", "base_config", "mean_over_seeds"]


def base_config(scale: float = 25.0, **overrides) -> SimulationConfig:
    """The standard case-study configuration at a given workload scale.

    ``scale=25`` (default) is the benchmark preset: the paper's offered-
    load profile with 25x fewer, 25x longer requests (see DESIGN.md §3 and
    EXPERIMENTS.md for how this preserves figure shapes).  ``scale=1`` is
    the paper's own parameters (slow in pure Python).
    """
    if approx_eq(scale, 1.0):
        return SimulationConfig.paper(**overrides)
    return SimulationConfig.scaled(scale=scale, **overrides)


@dataclass
class ExperimentResult:
    """Rows + series for one reproduced figure.

    ``rows`` is what the figure's summary reduces to (one dict per
    configuration); ``series`` holds per-slot curves keyed by label for
    figures that plot full time series.
    """

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """Render rows as an aligned text table."""
        if not self.rows:
            return "(no rows)"
        cols = list(self.rows[0].keys())
        cells = [[_fmt(r.get(c)) for c in cols] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in cells))
            for i, c in enumerate(cols)
        ]
        def line(vals):
            return "  ".join(v.rjust(w) for v, w in zip(vals, widths))
        out = [line(cols), line(["-" * w for w in widths])]
        out.extend(line(row) for row in cells)
        return "\n".join(out)

    def render(self) -> str:
        head = f"== {self.experiment}: {self.description} =="
        parts = [head, self.table()]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_csv(self, directory) -> list:
        """Write rows (and each series) as CSV files; returns paths written.

        ``<experiment>_rows.csv`` holds the summary table; when the result
        carries per-slot series, ``<experiment>_series.csv`` holds them as
        columns aligned on the slot axis — ready for any plotting tool.
        """
        import csv
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        if self.rows:
            path = directory / f"{self.experiment}_rows.csv"
            with path.open("w", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=list(self.rows[0].keys()))
                writer.writeheader()
                writer.writerows(self.rows)
            written.append(path)
        if self.series:
            keys = list(self.series.keys())
            length = max(len(np.atleast_1d(self.series[k])) for k in keys)
            path = directory / f"{self.experiment}_series.csv"
            with path.open("w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(keys)
                for i in range(length):
                    writer.writerow(
                        [
                            (np.atleast_1d(self.series[k])[i]
                             if i < len(np.atleast_1d(self.series[k])) else "")
                            for k in keys
                        ]
                    )
            written.append(path)
        return written

    def row_by(self, **match) -> dict:
        """First row whose items all match (for assertions in benches)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3g}"
    return str(v)


def mean_over_seeds(fn, seeds) -> float:
    """Average a scalar-returning callable over several workload seeds."""
    vals = [fn(seed) for seed in seeds]
    return float(np.mean(vals))
