"""Figure 12: impact of redirection cost.

"Here we consider the impact on waiting time when each redirected request
must incur a fixed overhead that is either 0.1 seconds or 0.2 seconds.
These costs are approximately the same as or double the average
processing time...  the added cost has negligible impact on the average
waiting time.  This is because only a small number of requests (less than
1.5%) are redirected.  Even at peak time, this amount is less than 6%."

Costs are expressed as multiples of the mean service time so the
experiment is scale-invariant (the paper's 0.1 s ~ its 0.112 s mean
service).  Expected shape: the mean-wait curves for cost 0x / 1x / 2x lie
within a small factor of one another, far below the no-sharing baseline.
"""

from __future__ import annotations

from ..agreements import complete_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config

__all__ = ["run", "COST_MULTIPLIERS"]

COST_MULTIPLIERS = (0.0, 1.0, 2.0)


def run(
    scale: float = 25.0,
    cost_multipliers=COST_MULTIPLIERS,
    seed: int = 0,
    **overrides,
) -> ExperimentResult:
    system = complete_structure(10, share=0.1)
    probe = base_config(scale, seed=seed, **overrides)
    mean_service = probe.service.mean_service(probe.sizes)

    rows = []
    for mult in cost_multipliers:
        cost = float(mult) * mean_service
        cfg = base_config(
            scale, scheme="lp", gap=3600.0, redirect_cost=cost, seed=seed,
            **overrides,
        )
        result = run_simulation(cfg, system)
        rows.append(
            {
                "cost_multiplier": float(mult),
                "redirect_cost_s": round(cost, 3),
                "mean_wait_s": result.overall_mean_wait(0),
                "worst_slot_wait_s": result.worst_case_wait(0),
                "redirected_frac": result.redirect_fraction(),
                "peak_redirected_frac": result.peak_redirect_fraction(),
                # "Although the waiting time of these requests has
                # significant penalty ... the redirection pays off."
                "mean_wait_redirected_s": result.redirected_wait_stats.mean,
            }
        )
    return ExperimentResult(
        experiment="fig12",
        description="waiting time vs redirection cost (complete graph)",
        rows=rows,
        notes=(
            "Paper: costs comparable to the mean service time have "
            "negligible impact because few requests are redirected.  "
            "Expected here: mean waits within a small factor across costs."
        ),
    )
