"""Figure 5: load and waiting time over the day, *without* resource sharing.

The paper's solid line is the request count per 10-minute slot (peaking
around midnight, bottoming out in the early morning); the dotted line is
the average waiting time per slot, which peaks with the load at ~250 s.

We reproduce both series for one ISP with redirection disabled.  The
expected shape: the wait curve tracks the load curve with a lag, and the
peak wait is two to four orders of magnitude above the trough wait.
"""

from __future__ import annotations

from ..proxysim import run_simulation
from .common import ExperimentResult, base_config

__all__ = ["run"]


def run(scale: float = 25.0, seed: int = 0, **overrides) -> ExperimentResult:
    cfg = base_config(scale, scheme="none", seed=seed, **overrides)
    result = run_simulation(cfg)

    counts = result.request_count_series(0)
    waits = result.mean_wait_series(0)
    slots = result.slot_times()

    peak_slot = int(waits.argmax())
    load_peak_slot = int(counts.argmax())
    res = ExperimentResult(
        experiment="fig05",
        description="requests and avg waiting time per 10-min slot, no sharing",
        rows=[
            {
                "metric": "peak_mean_wait_s",
                "value": float(waits.max()),
                "at_hour": round(slots[peak_slot] / 3600.0, 1),
            },
            {
                "metric": "trough_mean_wait_s",
                "value": float(waits[counts > 0].min()),
                "at_hour": round(float(slots[counts > 0][waits[counts > 0].argmin()]) / 3600.0, 1),
            },
            {
                "metric": "peak_requests_per_slot",
                "value": float(counts.max()),
                "at_hour": round(slots[load_peak_slot] / 3600.0, 1),
            },
            {
                "metric": "total_requests",
                "value": float(result.total_requests),
                "at_hour": float("nan"),
            },
        ],
        series={
            "slot_hours": slots / 3600.0,
            "requests_per_slot": counts.astype(float),
            "mean_wait": waits,
        },
        notes=(
            "Paper: load heaviest around midnight, lightest early morning; "
            "peak waits ~250 s.  Expected here: wait curve tracks the load "
            "curve and peaks within a few hours after the load peak."
        ),
    )
    return res
