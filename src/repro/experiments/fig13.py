"""Figure 13: centralized LP scheduling vs end-point enforcement.

"The agreement structure is a complete graph where each ISP shares 20% of
its resources with neighbors one-hour time zone away, 10% with neighbors
two-hour time zone away, 5% with those three hours away and 3% with
further neighbors...  the linear programming scheme reduces the average
waiting time by more than 50% at traffic peak time.  This is because the
non-linear scheme tends to redistribute requests to nearby ISPs no matter
whether they are busy or not, while [the] linear programming scheme takes
both the resource availability status and sharing agreements into
account."

Scheme comparisons only discriminate in the *saturated* regime: when
donors have slack everywhere, even availability-blind placement works
(we measured an 8% gap at mean utilisation 0.62 vs 47-78% at 0.70-0.75).
``load_factor`` therefore pushes this experiment's workload deeper into
overload than the other figures' default (1.18x -> mean utilisation
~0.73); the value and its effect are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..agreements import distance_decay_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config

__all__ = ["run", "SCHEMES"]

SCHEMES = ("lp", "endpoint")


def run(
    scale: float = 25.0,
    schemes=SCHEMES,
    seed: int = 0,
    load_factor: float = 1.18,
    **overrides,
) -> ExperimentResult:
    system = distance_decay_structure(10)
    rows = []
    series = {}
    peak_waits = {}
    probe = base_config(scale, **overrides)
    rpd = probe.requests_per_day * float(load_factor)
    for scheme in schemes:
        kwargs = dict(gap=3600.0, requests_per_day=rpd)
        kwargs.update(overrides)
        kwargs["scheme"] = scheme
        kwargs["seed"] = seed
        cfg = base_config(scale, **kwargs)
        result = run_simulation(cfg, system)
        waits = result.mean_wait_series(None)  # all ISPs (symmetric structure)
        rows.append(
            {
                "scheme": scheme,
                "mean_wait_s": result.overall_mean_wait(),
                "worst_slot_wait_s": float(waits.max()),
                "redirected_frac": result.redirect_fraction(),
            }
        )
        series[f"wait:{scheme}"] = waits
        series["slot_hours"] = result.slot_times() / 3600.0
        peak_waits[scheme] = float(waits.max())

    notes = "Paper: LP cuts peak-time average waiting by > 50% vs endpoint."
    if "lp" in peak_waits and "endpoint" in peak_waits and peak_waits["endpoint"] > 0:
        reduction = 1.0 - peak_waits["lp"] / peak_waits["endpoint"]
        notes += f"  Measured peak reduction: {100 * reduction:.0f}%."
    return ExperimentResult(
        experiment="fig13",
        description="LP vs endpoint enforcement (distance-decay complete graph)",
        rows=rows,
        series=series,
        notes=notes,
    )


def peak_reduction(result: ExperimentResult) -> float:
    """Fraction by which LP reduces the endpoint scheme's peak-slot wait."""
    lp = result.row_by(scheme="lp")["worst_slot_wait_s"]
    ep = result.row_by(scheme="endpoint")["worst_slot_wait_s"]
    return 1.0 - lp / ep if ep > 0 else float("nan")
