"""Figure 6: effect of time skew ("gap") on waiting time under sharing.

"Figure 6 shows the impact of resource sharing agreements between a group
of 10 ISPs on the average waiting time of a client request at a
particular ISP, parameterized for different amounts of time skew between
the client request streams.  The agreement structure is a complete graph
where each server shares 10% of its resources with every other server...
with a gap of 3600 seconds, the average waiting time drops dramatically
from 250 seconds to below 2 seconds."

Expected shape: larger gaps spread the rush hours apart, so donors are
idle when a proxy peaks; the peak wait collapses by one to two orders of
magnitude as the gap grows from 0 to 3600 s.
"""

from __future__ import annotations

from ..agreements import complete_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config

__all__ = ["run", "GAPS"]

GAPS = (0.0, 900.0, 1800.0, 3600.0)


def run(
    scale: float = 25.0,
    gaps=GAPS,
    seed: int = 0,
    share: float = 0.1,
    include_baseline: bool = True,
    **overrides,
) -> ExperimentResult:
    system = complete_structure(10, share=share)
    rows = []
    series = {}

    if include_baseline:
        cfg = base_config(scale, scheme="none", gap=3600.0, seed=seed, **overrides)
        base = run_simulation(cfg)
        rows.append(
            {
                "gap_s": "none (no sharing)",
                "worst_slot_wait_s": base.worst_case_wait(0),
                "mean_wait_s": base.overall_mean_wait(0),
                "redirected": 0.0,
            }
        )
        series["wait:no-sharing"] = base.mean_wait_series(0)

    for gap in gaps:
        cfg = base_config(scale, scheme="lp", gap=float(gap), seed=seed, **overrides)
        result = run_simulation(cfg, system)
        rows.append(
            {
                "gap_s": gap,
                "worst_slot_wait_s": result.worst_case_wait(0),
                "mean_wait_s": result.overall_mean_wait(0),
                "redirected": result.redirect_fraction(),
            }
        )
        series[f"wait:gap={int(gap)}"] = result.mean_wait_series(0)
        series["slot_hours"] = result.slot_times() / 3600.0

    return ExperimentResult(
        experiment="fig06",
        description="avg waiting time vs gap, complete graph, 10% shares",
        rows=rows,
        series=series,
        notes=(
            "Paper: gap=3600 drops the peak from ~250 s to < 2 s.  Expected "
            "here: monotone improvement with gap; gap=3600 one to two orders "
            "of magnitude below no-sharing."
        ),
    )
