"""Figures 9-11: transitivity levels on loop agreement structures.

Three loop structures over 10 ISPs, each ISP sharing 80% of its resources
with one other; the "skip" sets how many time zones away the donor is.

- Figure 9 (skip=1): "The worst-case waiting time when considering only
  direct agreements (level=1) is 35 seconds";
- Figure 10 (skip=3): "dropped to 7 seconds";
- Figure 11 (skip=7): "further to about 3 seconds";
- "When three or more levels of transitive agreements are considered, the
  worst-case waiting time drops to about 2 seconds in all three
  configurations."

Expected shape: at level 1, larger skip => lower worst-case wait (the sole
donor is further from the requester's rush hour); at level >= 3, all
three loops converge because transitive chains reach idle donors anyway.

Measurement note (see DESIGN.md): with 10 proxies spanning 10 hourly time
zones, a donor index wraps modulo 10 while the day is 24 h, so a proxy
with ``i - skip < 0`` does not actually have a donor ``skip`` hours away.
The reported waits therefore aggregate over origins ``skip..9`` whose
level-1 donor is genuine.
"""

from __future__ import annotations

from ..agreements import loop_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config, mean_over_seeds

__all__ = ["run", "SKIPS", "LEVELS"]

SKIPS = (1, 3, 7)
LEVELS = (1, 2, 3, 9)


def run(
    scale: float = 25.0,
    skips=SKIPS,
    levels=LEVELS,
    seeds=(0,),
    share: float = 0.8,
    **overrides,
) -> ExperimentResult:
    rows = []
    for skip in skips:
        system = loop_structure(10, share=share, skip=int(skip))
        origins = list(range(int(skip), 10))
        for level in levels:
            worst = mean_over_seeds(
                lambda s: run_simulation(
                    base_config(
                        scale, scheme="lp", gap=3600.0, level=int(level),
                        seed=s, **overrides,
                    ),
                    system,
                ).worst_case_wait_over(origins),
                seeds,
            )
            rows.append(
                {
                    "figure": {1: "fig09", 3: "fig10", 7: "fig11"}.get(int(skip), f"skip{skip}"),
                    "skip": int(skip),
                    "level": int(level),
                    "worst_slot_wait_s": worst,
                }
            )
    return ExperimentResult(
        experiment="fig09_11",
        description="transitivity levels on loops (80% share, skip 1/3/7)",
        rows=rows,
        notes=(
            "Paper: level-1 worst-case waits 35 / 7 / 3 s for skip 1 / 3 / 7; "
            "level >= 3 converges to ~2 s for all skips.  Expected here: "
            "level-1 wait decreasing in skip; level-3 within a small factor "
            "across skips and no worse than level 1."
        ),
    )
