"""Experiment harnesses: one module per figure of the paper's evaluation.

Each ``figNN`` module exposes ``run(...) -> ExperimentResult`` producing
the same series/rows the figure plots, at a configurable workload scale
(default: the scaled preset documented in DESIGN.md).  The
:mod:`~repro.experiments.runner` CLI runs any subset and prints tables;
``benchmarks/`` wraps the same functions under pytest-benchmark.

| Module   | Paper figure | What it reproduces |
|----------|--------------|--------------------|
| fig05    | Figure 5     | request volume & waiting time per 10-min slot, no sharing |
| fig06    | Figure 6     | waiting time vs time skew (gap), complete graph |
| fig07    | Figure 7     | sharing vs extra standalone capacity |
| fig08    | Figure 8     | transitivity levels, complete graph |
| fig09_11 | Figures 9-11 | transitivity levels, loops with skip 1/3/7 |
| fig12    | Figure 12    | redirection cost impact |
| fig13    | Figure 13    | centralized LP vs endpoint enforcement |
"""

from .common import ExperimentResult, base_config

__all__ = ["ExperimentResult", "base_config"]
