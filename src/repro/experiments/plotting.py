"""Terminal plotting for experiment series (no plotting library needed).

Renders per-slot series as Unicode block-character charts so
``repro-experiments fig06 --plot`` can show the figure shapes directly in
the terminal — the closest offline equivalent of the paper's plots.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "ascii_chart", "render_series"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 72) -> str:
    """One-line block-character summary of a series (downsampled to width)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * v.size
    idx = ((v - lo) / (hi - lo) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def ascii_chart(
    values,
    height: int = 10,
    width: int = 72,
    label: str = "",
    log: bool = False,
) -> str:
    """Multi-line bar chart of a series.

    ``log=True`` plots log10(1 + value), useful for waiting-time curves
    spanning orders of magnitude.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return "(empty series)"
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    raw_hi = float(np.asarray(values, dtype=float).max())
    plot = np.log10(1.0 + v) if log else v
    hi = float(plot.max())
    if hi <= 0:
        hi = 1.0
    rows = []
    levels = (plot / hi * height).round().astype(int)
    for row in range(height, 0, -1):
        line = "".join("█" if lv >= row else " " for lv in levels)
        rows.append("|" + line)
    axis = "+" + "-" * len(levels)
    head = f"{label}  (max {raw_hi:.3g}{', log scale' if log else ''})"
    return "\n".join([head] + rows + [axis])


def render_series(result, keys=None, height: int = 8, log: bool = True) -> str:
    """Render an :class:`~repro.experiments.common.ExperimentResult`'s
    series as stacked charts (skipping axis series like ``slot_hours``)."""
    out = []
    for key, series in result.series.items():
        if keys is not None and key not in keys:
            continue
        if key.startswith("slot_"):
            continue
        out.append(ascii_chart(series, height=height, label=key, log=log))
    return "\n\n".join(out) if out else "(no series to plot)"
