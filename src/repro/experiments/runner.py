"""Command-line runner for the experiment harnesses.

::

    repro-experiments --list
    repro-experiments fig06 fig13
    repro-experiments all --scale 50 --seed 1
    python -m repro.experiments.runner fig05

Scale selects the workload preset (see DESIGN.md): 25 = default benchmark
scale, 1 = the paper's raw parameters (~500 k requests/proxy/day — slow).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import fig05, fig06, fig07, fig08, fig09_11, fig12, fig13

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09_11": fig09_11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale", type=float, default=25.0,
        help="workload scale factor (1 = paper parameters; default 25)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--plot", action="store_true",
        help="render per-slot series as terminal charts",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write rows/series as CSV files into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in EXPERIMENTS.items():
            first_line = (fn.__module__ and sys.modules[fn.__module__].__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {first_line}")
        return 0

    names = args.experiments
    if names == ["all"] or names == []:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; try --list")

    for name in names:
        fn = EXPERIMENTS[name]
        start = time.perf_counter()
        kwargs = {"scale": args.scale}
        if "seed" in fn.__code__.co_varnames:
            kwargs["seed"] = args.seed
        elif "seeds" in fn.__code__.co_varnames:
            kwargs["seeds"] = (args.seed,)
        result = fn(**kwargs)
        elapsed = time.perf_counter() - start
        print(result.render())
        if args.plot and result.series:
            from .plotting import render_series

            print(render_series(result))
        if args.csv:
            for path in result.to_csv(args.csv):
                print(f"wrote {path}")
        print(f"[{name} took {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
