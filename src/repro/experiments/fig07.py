"""Figure 7: sharing vs buying more capacity.

"Figure 7 compares this performance with the average waiting time
obtained when sharing is disabled, but the proxy server has more
processing power (corresponding to an increased capacity investment).  We
can see that 25%-35% more resources are required to match the performance
obtained by resource sharing."

We sweep standalone capacity 1.0..1.5 with sharing off, run sharing at
capacity 1.0, and report the crossover: the smallest capacity factor whose
no-sharing configuration beats the sharing configuration.  "Matching the
performance" is judged on the *peak-slot* waiting time (the region the
paper's curves separate in); the off-peak mean is dominated in our scaled
setup by the scheduler's threshold floor, which extra standalone capacity
does not have to pay (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..agreements import complete_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config

__all__ = ["run", "CAPACITY_FACTORS"]

CAPACITY_FACTORS = (1.0, 1.1, 1.2, 1.25, 1.3, 1.35, 1.4, 1.5)


def run(
    scale: float = 25.0,
    factors=CAPACITY_FACTORS,
    seed: int = 0,
    **overrides,
) -> ExperimentResult:
    system = complete_structure(10, share=0.1)
    cfg_share = base_config(scale, scheme="lp", gap=3600.0, seed=seed, **overrides)
    shared = run_simulation(cfg_share, system)
    target = shared.worst_case_wait(0)

    rows = [
        {
            "config": "sharing @ capacity 1.0",
            "capacity": 1.0,
            "mean_wait_s": shared.overall_mean_wait(0),
            "worst_slot_wait_s": target,
        }
    ]
    crossover = None
    for f in factors:
        cfg = base_config(
            scale, scheme="none", gap=3600.0, capacity=float(f), seed=seed,
            **overrides,
        )
        result = run_simulation(cfg)
        worst = result.worst_case_wait(0)
        rows.append(
            {
                "config": "no sharing",
                "capacity": float(f),
                "mean_wait_s": result.overall_mean_wait(0),
                "worst_slot_wait_s": worst,
            }
        )
        if crossover is None and worst <= target:
            crossover = float(f)

    notes = (
        "Paper: 25-35% extra standalone capacity needed to match sharing.  "
        f"Measured crossover capacity factor: {crossover if crossover else '>1.5'}"
    )
    return ExperimentResult(
        experiment="fig07",
        description="sharing vs increased standalone capacity",
        rows=rows,
        notes=notes,
    )
