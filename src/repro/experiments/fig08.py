"""Figure 8: transitivity levels on a complete agreement graph.

"Figure 8 shows that in the complete graph case, resource sharing helps
but the incremental improvement by considering indirect transitive
agreements is small.  This is explained by the fact that all of the
servers are already reachable from the requesting server using direct
agreements."

Expected shape: level 1 already achieves nearly all of the benefit;
levels 2+ change the waiting time only marginally.
"""

from __future__ import annotations

from ..agreements import complete_structure
from ..proxysim import run_simulation
from .common import ExperimentResult, base_config, mean_over_seeds

__all__ = ["run", "LEVELS"]

LEVELS = (1, 2, 3, 5, 9)


def run(
    scale: float = 25.0,
    levels=LEVELS,
    seeds=(0,),
    share: float = 0.1,
    **overrides,
) -> ExperimentResult:
    system = complete_structure(10, share=share)
    rows = []

    base = mean_over_seeds(
        lambda s: run_simulation(
            base_config(scale, scheme="none", gap=3600.0, seed=s, **overrides)
        ).worst_case_wait(0),
        seeds,
    )
    rows.append({"level": "none", "worst_slot_wait_s": base})

    for level in levels:
        worst = mean_over_seeds(
            lambda s: run_simulation(
                base_config(
                    scale, scheme="lp", gap=3600.0, level=int(level), seed=s,
                    **overrides,
                ),
                system,
            ).worst_case_wait(0),
            seeds,
        )
        rows.append({"level": int(level), "worst_slot_wait_s": worst})

    return ExperimentResult(
        experiment="fig08",
        description="transitivity levels, complete graph (10 ISPs, 10% shares)",
        rows=rows,
        notes=(
            "Paper: sharing helps; incremental transitive benefit is small "
            "because every server is directly reachable.  Expected here: "
            "level 1 within ~25% of deeper levels, all far below no-sharing."
        ),
    )
