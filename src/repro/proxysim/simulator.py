"""The proxy-group simulation loop (Figure 4's model).

Each proxy owns a single-server :class:`~repro.des.queues.WorkQueue`.
Client requests arrive on per-proxy diurnal streams; each consumes
``min(a + b*length, c)`` seconds of the collapsed "general" resource.
Every ``epoch`` seconds the scheduler inspects front-end queues; a proxy
whose queued work exceeds ``threshold`` consults the global scheduler,
which plans redirections under the configured policy.  Redirected requests
reach their donor after ``redirect_cost`` seconds and keep their original
arrival timestamp, so their recorded waiting time includes both the local
queueing already suffered and the transfer overhead.

Statistics cover the final ``measure_days`` (the warmup day lets queues
reach the diurnal steady state the paper's 18-day trace average implies).
"""

from __future__ import annotations

import numpy as np

from ..agreements.matrix import AgreementSystem
from ..des.engine import Engine
from ..des.queues import QueuedItem, WorkQueue
from ..obs import get_observer
from ..workload.generator import Request, generate_streams
from .config import SimulationConfig
from .metrics import SimulationResult
from .redirect import RedirectPolicy, make_policy

__all__ = ["ProxySimulation", "run_simulation"]


class ProxySimulation:
    """One configured run over one sampled workload.

    ::

        system = complete_structure(10, share=0.1)
        cfg = SimulationConfig.scaled(gap=3600.0, scheme="lp")
        result = ProxySimulation(cfg, system).run()
        result.worst_case_wait(0)
    """

    def __init__(
        self,
        config: SimulationConfig,
        system: AgreementSystem | None = None,
        streams: list[list[Request]] | None = None,
        system_updates: list[tuple[float, AgreementSystem]] | None = None,
    ):
        """``system_updates`` is an optional schedule of agreement changes:
        ``[(time, new_system), ...]`` applied at the first epoch tick at or
        after each time — modelling the paper's dynamically renegotiated
        or revoked agreements (principals joining/leaving, tickets revoked).
        """
        self.config = config
        self.system = system
        self.policy: RedirectPolicy = make_policy(config, system)
        self._system_updates = sorted(system_updates or [], key=lambda u: u[0])
        self._next_update = 0
        self._lp_solves_retired = 0  # from policies replaced by updates
        capacities = config.capacities()
        self.queues = [WorkQueue(rate=float(r)) for r in capacities]
        self.capacities = capacities
        if streams is None:
            streams = generate_streams(
                config.n_proxies,
                config.base_profile(),
                config.gap,
                sizes=config.sizes,
                horizon=config.horizon,
                seed=config.seed,
            )
        if len(streams) != config.n_proxies:
            raise ValueError(
                f"got {len(streams)} streams for {config.n_proxies} proxies"
            )
        self.streams = streams
        self._cursor = [0] * config.n_proxies
        # Per-proxy expected service work per second over the day (the load
        # information LRMs report to the GRM): lambda_i(t) * E[service].
        base = config.base_profile()
        mean_service = config.service.mean_service(config.sizes)
        self._profiles = [
            base.with_skew(i * config.gap) for i in range(config.n_proxies)
        ]
        self._mean_service = mean_service
        self.result = SimulationResult(
            n_proxies=config.n_proxies, slot_width=config.slot_width
        )

    # -- internals -----------------------------------------------------------

    def _push_arrivals(self, proxy: int, until: float) -> None:
        """Move stream arrivals with time <= until into the proxy's queue."""
        stream = self.streams[proxy]
        i = self._cursor[proxy]
        queue = self.queues[proxy]
        service = self.config.service
        while i < len(stream) and stream[i].arrival <= until:
            req = stream[i]
            queue.push(
                QueuedItem(
                    arrival=req.arrival,
                    service=service.service_time(req.length),
                    payload=req,
                )
            )
            i += 1
        self._cursor[proxy] = i

    def _on_served(self, item: QueuedItem, start: float) -> None:
        req: Request = item.payload
        if req.arrival >= self.config.measure_start:
            self.result.record_wait(
                req.origin,
                req.arrival,
                max(start - req.arrival, 0.0),
                redirected=item.hops > 0,
            )

    def _availability(self, now: float) -> np.ndarray:
        """Spare work capacity (seconds) per proxy over the lookahead window.

        Committed work counts the queue backlog, the in-service remainder,
        and (when ``config.project_arrivals``) the work the proxy's *own*
        clients are expected to bring during the window — the load report
        an LRM would send the GRM.  Without the projection the scheduler
        happily parks work on a donor that is minutes from its own rush
        hour.
        """
        cfg = self.config
        W = cfg.lookahead
        avail = np.empty(cfg.n_proxies)
        for k, q in enumerate(self.queues):
            committed = q.backlog + max(q._server_free_at - now, 0.0) * q.rate
            weight = float(cfg.project_arrivals)
            if weight > 0.0:
                committed += weight * (
                    self._profiles[k].expected_count(now, now + W, steps=4)
                    * self._mean_service
                )
            avail[k] = max(self.capacities[k] * W - committed, 0.0)
        return avail

    def _consult(self, proxy: int, now: float) -> None:
        """Ask the scheduler to shed this proxy's excess queued work.

        Each consultation roots its *own* trace (``root_span``): the
        simulation run contains thousands of them, and head-based
        sampling has to pick requests independently rather than ride the
        run-level span's fate.
        """
        cfg = self.config
        queue = self.queues[proxy]
        excess = queue.backlog - cfg.threshold / 2.0
        if excess <= 0:
            return
        avail = self._availability(now)
        avail[proxy] = 0.0  # the requester is consulting because it has none
        self.result.scheduler_consults += 1
        with get_observer().root_span(
            "proxysim.consult", proxy=proxy, sim_time=now, excess=float(excess)
        ):
            take = self.policy.plan(proxy, excess, avail)
        for donor in np.argsort(-take):
            donor = int(donor)
            if donor == proxy or take[donor] <= 1e-9:
                continue
            moved = queue.pop_tail(float(take[donor]), cfg.max_hops)
            if not moved:
                continue
            target = self.queues[donor]
            for item in moved:
                item.ready = now + cfg.redirect_cost
                item.hops += 1
                target.push(item)
            self.result.record_redirect(now, len(moved))

    def _apply_system_updates(self, now: float) -> None:
        while (
            self._next_update < len(self._system_updates)
            and self._system_updates[self._next_update][0] <= now
        ):
            _, new_system = self._system_updates[self._next_update]
            if new_system.n != self.config.n_proxies:
                raise ValueError(
                    "scheduled agreement system has the wrong principal count"
                )
            self.system = new_system
            self._lp_solves_retired += getattr(self.policy, "lp_solves", 0)
            self.policy = make_policy(self.config, new_system)
            self._next_update += 1

    def _epoch_tick(self, engine: Engine) -> None:
        now = engine.now
        cfg = self.config
        if self._system_updates:
            self._apply_system_updates(now)
        for p in range(cfg.n_proxies):
            self._push_arrivals(p, now)
            self.queues[p].advance(now, self._on_served)
        if cfg.scheme != "none":
            order = sorted(
                range(cfg.n_proxies),
                key=lambda p: -self.queues[p].backlog,
            )
            for p in order:
                if self.queues[p].backlog > cfg.threshold:
                    self._consult(p, now)
        if now + cfg.epoch <= cfg.horizon + 1e-9:
            engine.schedule(cfg.epoch, lambda: self._epoch_tick(engine))

    # -- API --------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its statistics."""
        obs = get_observer()
        cfg = self.config
        with obs.span(
            "proxysim.run", scheme=cfg.scheme, n_proxies=cfg.n_proxies,
            horizon=cfg.horizon,
        ):
            engine = Engine()
            engine.schedule(cfg.epoch, lambda: self._epoch_tick(engine))
            engine.run(until=cfg.horizon)
            # Flush: push any remaining arrivals, then serve everything.
            for p in range(cfg.n_proxies):
                self._push_arrivals(p, float("inf"))
                self.queues[p].drain(self._on_served)
            self.result.lp_solves = (
                self._lp_solves_retired + getattr(self.policy, "lp_solves", 0)
            )
        if obs.enabled:
            # Bridge the simulation's own accounting onto the shared
            # registry so traces carry the case-study counters too.
            res = self.result
            obs.counter("proxysim.requests", res.total_requests, scheme=cfg.scheme)
            obs.counter("proxysim.redirected", res.total_redirected, scheme=cfg.scheme)
            obs.counter(
                "proxysim.scheduler_consults", res.scheduler_consults,
                scheme=cfg.scheme,
            )
            obs.counter("proxysim.lp_solves", res.lp_solves, scheme=cfg.scheme)
            obs.gauge("proxysim.mean_wait", res.overall_mean_wait(), scheme=cfg.scheme)
            obs.gauge(
                "proxysim.redirect_fraction", res.redirect_fraction(),
                scheme=cfg.scheme,
            )
            obs.event("proxysim.done", **res.summary())
        return self.result


def run_simulation(
    config: SimulationConfig,
    system: AgreementSystem | None = None,
    streams: list[list[Request]] | None = None,
    system_updates: list[tuple[float, AgreementSystem]] | None = None,
) -> SimulationResult:
    """Convenience one-shot wrapper around :class:`ProxySimulation`."""
    return ProxySimulation(config, system, streams, system_updates).run()
