"""Result types for the proxy simulation.

Everything the paper's figures plot comes out of one
:class:`SimulationResult`: per-10-minute-slot request counts and mean
waiting times (per origin proxy and aggregated), worst-case (peak-slot)
waits, and redirection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..des.stats import SlotSeries, SummaryStats
from ..workload.diurnal import DAY_SECONDS

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Statistics from one simulation run (measured days only).

    Waiting times are keyed by the request's *arrival* time-of-day and its
    *origin* proxy (so a redirected request counts at the ISP whose client
    issued it, as in the paper's per-ISP curves).
    """

    n_proxies: int
    slot_width: float = 600.0
    waits_by_proxy: list[SlotSeries] = field(default_factory=list)
    waits_all: SlotSeries = None  # type: ignore[assignment]
    redirects: SlotSeries = None  # type: ignore[assignment]
    total_requests: int = 0
    total_redirected: int = 0
    scheduler_consults: int = 0
    lp_solves: int = 0
    local_wait_stats: SummaryStats = field(default_factory=SummaryStats)
    redirected_wait_stats: SummaryStats = field(default_factory=SummaryStats)
    """Wait aggregates split by whether the request was ever redirected —
    the paper notes redirected requests pay a penalty that still beats
    their counterfactual local wait."""

    def __post_init__(self) -> None:
        if not self.waits_by_proxy:
            self.waits_by_proxy = [
                SlotSeries(DAY_SECONDS, self.slot_width)
                for _ in range(self.n_proxies)
            ]
        if self.waits_all is None:
            self.waits_all = SlotSeries(DAY_SECONDS, self.slot_width)
        if self.redirects is None:
            self.redirects = SlotSeries(DAY_SECONDS, self.slot_width)

    # -- recording (used by the simulator) ---------------------------------

    def record_wait(
        self, origin: int, arrival: float, wait: float, redirected: bool = False
    ) -> None:
        self.waits_by_proxy[origin].record(arrival, wait)
        self.waits_all.record(arrival, wait)
        self.total_requests += 1
        if redirected:
            self.redirected_wait_stats.record(wait)
        else:
            self.local_wait_stats.record(wait)

    def record_redirect(self, time: float, count: int = 1) -> None:
        for _ in range(count):
            self.redirects.record(time, 1.0)
        self.total_redirected += count

    # -- queries (what the figures plot) --------------------------------------

    def mean_wait_series(self, proxy: int | None = 0) -> np.ndarray:
        """Per-slot mean waiting time; ``proxy=None`` aggregates all ISPs."""
        series = self.waits_all if proxy is None else self.waits_by_proxy[proxy]
        return series.means()

    def request_count_series(self, proxy: int | None = 0) -> np.ndarray:
        series = self.waits_all if proxy is None else self.waits_by_proxy[proxy]
        return series.counts()

    def slot_times(self) -> np.ndarray:
        return self.waits_all.slot_times()

    def combined_series(self, origins) -> SlotSeries:
        """Merge the wait series of a set of origin proxies.

        Used by the loop experiments (Figures 9-11): with n proxies on an
        n-index ring but skews spanning only n hours of a 24-hour day, a
        proxy whose donor index wraps (``i - skip < 0``) does not actually
        have a donor ``skip`` hours away, so those figures aggregate over
        the proxies whose donors are genuine.
        """
        merged = SlotSeries(self.waits_all.horizon, self.slot_width)
        for o in origins:
            merged.merge(self.waits_by_proxy[o])
        return merged

    def worst_case_wait_over(self, origins) -> float:
        """Peak per-slot mean wait over a set of origin proxies."""
        return self.combined_series(origins).peak_mean()

    def worst_case_wait(self, proxy: int | None = 0) -> float:
        """Peak per-slot mean wait — the figures' 'worst-case waiting time'."""
        series = self.waits_all if proxy is None else self.waits_by_proxy[proxy]
        return series.peak_mean()

    def overall_mean_wait(self, proxy: int | None = None) -> float:
        series = self.waits_all if proxy is None else self.waits_by_proxy[proxy]
        return series.overall_mean()

    def redirect_fraction(self) -> float:
        """Fraction of all requests that were redirected (Figure 12 quotes
        < 1.5% overall for the complete graph)."""
        return self.total_redirected / self.total_requests if self.total_requests else 0.0

    def peak_redirect_fraction(self) -> float:
        """Worst per-slot redirected fraction (Figure 12 quotes < 6% at peak)."""
        red = self.redirects.counts().astype(float)
        req = self.waits_all.counts().astype(float)
        mask = req > 0
        if not mask.any():
            return 0.0
        return float(np.max(red[mask] / req[mask]))

    def summary(self) -> dict:
        """Scalar digest used by the experiment tables."""
        return {
            "total_requests": self.total_requests,
            "total_redirected": self.total_redirected,
            "redirect_fraction": round(self.redirect_fraction(), 5),
            "mean_wait": round(self.overall_mean_wait(), 4),
            "worst_case_wait_isp0": round(self.worst_case_wait(0), 4),
            "worst_case_wait_all": round(self.worst_case_wait(None), 4),
            "scheduler_consults": self.scheduler_consults,
            "mean_wait_local": round(self.local_wait_stats.mean, 4),
            "mean_wait_redirected": round(self.redirected_wait_stats.mean, 4),
        }
