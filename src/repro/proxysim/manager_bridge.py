"""Driving the proxy simulation through the GRM/LRM manager protocol.

The benchmark runs use :class:`~repro.proxysim.redirect.LPPolicy`, which
calls the allocator directly for speed.  :class:`ManagerPolicy` instead
routes every scheduler consultation through the Section-3.2 architecture:
availability reports and allocation requests travel as messages to a
:class:`~repro.manager.grm.GlobalResourceManager` holding the agreements
as a ticket/currency bank.  Results are identical (the GRM runs the same
LP); what this buys is end-to-end exercise of the deployment path — and a
place where agreement changes made on the *bank* (revoking a ticket)
immediately affect scheduling decisions: every mutation bumps
:attr:`~repro.economy.Bank.version`, which invalidates the GRM's cached
topology, so the very next consultation is scheduled against the changed
agreements.

Message traffic per consultation is one :class:`AvailabilityBatch`
(carrying all n proxy reports) plus the allocation request, instead of n
individual :class:`AvailabilityReport` sends; the single-report path
remains in the GRM for plain LRMs.
"""

from __future__ import annotations

import numpy as np

from ..economy.bank import Bank
from ..manager.grm import GlobalResourceManager
from ..manager.messages import AllocationGrant, AllocationRequestMsg, AvailabilityBatch
from ..manager.transport import InProcessTransport
from ..obs import get_observer
from .redirect import RedirectPolicy

__all__ = ["ManagerPolicy", "bank_for_structure"]


def bank_for_structure(system) -> Bank:
    """Express an :class:`~repro.agreements.AgreementSystem`'s relative
    agreements as tickets in a fresh bank (capacities are reported live by
    the simulator, so no base deposits are made)."""
    bank = Bank()
    for p in system.principals:
        bank.create_currency(p, face_value=100.0)
    n = system.n
    for i in range(n):
        for j in range(n):
            if i != j and system.S[i, j] > 0:
                bank.issue_relative_ticket(
                    system.principals[i],
                    system.principals[j],
                    100.0 * float(system.S[i, j]),
                )
    return bank


class ManagerPolicy(RedirectPolicy):
    """A redirect policy backed by a GRM over a message transport.

    Each :meth:`plan` call sends one batched availability report covering
    every proxy, followed by an allocation request, exactly as an LRM
    aggregator would.
    """

    def __init__(self, system, level: int | None = None):
        self.systemish = system
        self.level = level
        self.n = system.n
        self.principals = list(system.principals)
        self._pindex = {p: i for i, p in enumerate(self.principals)}
        self.transport = InProcessTransport()
        self.bank = bank_for_structure(system)
        self.grm = GlobalResourceManager("grm", self.bank)
        self.grm.attach(self.transport)
        self.messages = 0
        #: msg_id of the most recent allocation request — the key for
        #: ``repro.obs.explain`` against the decision flight recorder
        self.last_request_id: int | None = None

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        # The whole consultation — availability batch, request, possible
        # re-request — is one trace rooted here (unless an outer span,
        # e.g. a proxysim consult, already opened one).
        obs = get_observer()
        with obs.span(
            "manager.plan",
            requester=self.principals[requester],
            excess=float(excess),
        ):
            # One batched availability refresh for all proxies.
            self.transport.send(
                "grm",
                AvailabilityBatch(
                    sender=self.principals[requester],
                    resource_type="general",
                    reports=tuple(
                        (principal, float(avail[k]))
                        for k, principal in enumerate(self.principals)
                    ),
                ),
            )
            request = AllocationRequestMsg(
                sender=self.principals[requester],
                principal=self.principals[requester],
                amount=float(excess),
                level=self.level,
            )
            self.last_request_id = request.msg_id
            reply = self.transport.send("grm", request)
            if not isinstance(reply, AllocationGrant):
                # The GRM uses request/deny semantics; an overloaded proxy
                # re-requests what the denial quoted as available.
                available = getattr(reply, "available", 0.0)
                if available > 1e-9:
                    retry = AllocationRequestMsg(
                        sender=self.principals[requester],
                        principal=self.principals[requester],
                        amount=float(available) * (1 - 1e-9),
                        level=self.level,
                    )
                    self.last_request_id = retry.msg_id
                    reply = self.transport.send("grm", retry)
            self.messages = self.transport.delivered
            self.lp_solves = self.grm.requests_served + self.grm.requests_denied
            take = np.zeros(self.n)
            if isinstance(reply, AllocationGrant):
                for principal, amount in reply.takes:
                    take[self._pindex[principal]] = amount
            # Denials and any unplaced remainder stay local.
            take[requester] += max(excess - take.sum(), 0.0)
            return take
