"""Redirection policies: how a consult turns excess work into a plan.

Every policy answers one question: given that proxy ``a`` has ``excess``
seconds of queued work it wants to shed, and each proxy currently has
``avail[k]`` seconds of spare processing capacity over the scheduler's
lookahead window, how much work goes to whom?

- :class:`NoSharingPolicy` — the Figure-5 baseline: nothing moves;
- :class:`LPPolicy` — the paper's scheme: the Section-3 LP over the
  agreement system, enforcing (level-limited) transitive flow bounds and
  minimising global perturbation;
- :class:`EndpointPolicy` — Figure 13's baseline: proportional to direct
  agreement quantities, blind to remote availability;
- :class:`GreedyPolicy` — availability-aware but agreement-bound greedy.
"""

from __future__ import annotations

import numpy as np

from ..agreements.matrix import AgreementSystem
from ..allocation.endpoint import allocate_endpoint
from ..allocation.greedy import allocate_greedy
from ..allocation.lp_allocator import allocate_lp
from ..errors import SimulationError
from ..obs import get_observer
from ..obs.decision import next_request_id

__all__ = [
    "RedirectPolicy",
    "NoSharingPolicy",
    "LPPolicy",
    "EndpointPolicy",
    "GreedyPolicy",
    "make_policy",
]


class RedirectPolicy:
    """Interface: :meth:`plan` returns per-proxy take amounts."""

    #: number of LP solves performed (for instrumentation)
    lp_solves: int = 0

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        """Amount of the requester's excess work each proxy should absorb.

        Entry ``requester`` means "keep local"; the vector sums to at most
        ``excess``.  ``avail[k]`` is proxy ``k``'s spare capacity (seconds
        of work) over the lookahead window; ``avail[requester]`` is 0 by
        construction (it is consulting precisely because it has none).
        """
        raise NotImplementedError


class NoSharingPolicy(RedirectPolicy):
    """No agreements enforced; all work stays where it arrived."""

    def __init__(self, n: int):
        self.n = n

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        take = np.zeros(self.n)
        take[requester] = excess  # "keep local" — i.e. no redirection
        return take


class _SystemPolicy(RedirectPolicy):
    """Shared plumbing: bind live availability to the agreement topology.

    The structure half (and its transitive-coefficient cache) is shared
    across every epoch; each consultation only mints a cheap
    :class:`~repro.agreements.topology.CapacityView` over the current
    availability vector.
    """

    def __init__(self, system: AgreementSystem):
        self.system = system
        self.topology = system.topology
        self.n = system.n

    def _live(self, avail: np.ndarray):
        if avail.shape != (self.n,):
            raise SimulationError(
                f"availability vector must have length {self.n}"
            )
        return self.topology.view(np.maximum(avail, 0.0))


class LPPolicy(_SystemPolicy):
    """Centralized LP enforcement with transitive agreements (the paper)."""

    def __init__(
        self,
        system: AgreementSystem,
        level: int | None = None,
        formulation: str = "reduced",
        backend: str = "scipy",
    ):
        super().__init__(system)
        self.level = level
        self.formulation = formulation
        self.backend = backend

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        live = self._live(avail)
        self.lp_solves += 1
        principal = live.principals[requester]
        obs = get_observer()
        # Direct policy calls bypass the GRM, so they feed the flight
        # recorder themselves (negative synthetic request ids — there is
        # no message id to key on).
        with obs.decision(
            request_id=next_request_id(),
            requestor=principal,
            amount=float(excess),
            scheme="lp-direct",
        ) as dec:
            allocation = allocate_lp(
                live,
                principal,
                excess,
                level=self.level,
                formulation=self.formulation,
                backend=self.backend,
                partial=True,
            )
            if obs.enabled:
                dec.set(
                    outcome="granted",
                    granted=float(allocation.satisfied),
                    takes=tuple(
                        (p, float(t))
                        for p, t in zip(live.principals, allocation.take)
                        if t > 1e-12
                    ),
                    theta=float(allocation.theta),
                )
        take = allocation.take.copy()
        # Anything the agreements cannot place stays local.
        take[requester] += max(excess - allocation.satisfied, 0.0)
        return take


class EndpointPolicy(_SystemPolicy):
    """Figure 13's proportional, availability-blind endpoint scheme.

    Donor weights come from the *agreement quantities alone* — the nominal
    share of each donor's rated capacity, not its live availability —
    because endpoints enforcing their own agreements cannot see remote
    queues.  Redirected work may therefore land on a busy donor.
    """

    def __init__(self, system: AgreementSystem, rated: np.ndarray):
        super().__init__(system)
        self.rated = np.asarray(rated, dtype=float)
        if self.rated.shape != (self.n,):
            raise SimulationError(f"rated capacities must have length {self.n}")

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        rated = self.rated.copy()
        rated[requester] = 0.0  # the excess is precisely what cannot stay
        nominal = self.topology.view(rated)
        allocation = allocate_endpoint(
            nominal, nominal.principals[requester], excess, partial=True
        )
        take = allocation.take.copy()
        take[requester] += max(excess - allocation.satisfied, 0.0)
        return take


class GreedyPolicy(_SystemPolicy):
    """Most-available-donor-first, bounded by direct+transitive agreements."""

    def __init__(self, system: AgreementSystem, level: int | None = None):
        super().__init__(system)
        self.level = level

    def plan(self, requester: int, excess: float, avail: np.ndarray) -> np.ndarray:
        live = self._live(avail)
        allocation = allocate_greedy(
            live, live.principals[requester], excess,
            level=self.level, partial=True,
        )
        take = allocation.take.copy()
        take[requester] += max(excess - allocation.satisfied, 0.0)
        return take


def make_policy(config, system: AgreementSystem | None) -> RedirectPolicy:
    """Build the policy named by ``config.scheme``."""
    if config.scheme == "none":
        return NoSharingPolicy(config.n_proxies)
    if system is None:
        raise SimulationError(
            f"scheme {config.scheme!r} needs an agreement system"
        )
    if system.n != config.n_proxies:
        raise SimulationError(
            f"agreement system has {system.n} principals but the simulation "
            f"has {config.n_proxies} proxies"
        )
    if config.scheme == "lp":
        return LPPolicy(
            system,
            level=config.level,
            formulation=config.allocator_formulation,
            backend=config.allocator_backend,
        )
    if config.scheme == "endpoint":
        return EndpointPolicy(system, config.capacities() * config.lookahead)
    if config.scheme == "greedy":
        return GreedyPolicy(system, level=config.level)
    raise SimulationError(f"unknown scheme {config.scheme!r}")  # pragma: no cover
