"""Simulation configuration.

Two presets are provided:

- :meth:`SimulationConfig.paper` — the paper's parameters: ``a = 0.1`` s,
  ``b = 1e-6`` s/byte, cap ``c = 30`` s, with a request volume producing
  the trace's overload level (~500 k requests/proxy/day).  Slow in pure
  Python; used by the experiment CLI when full scale is wanted.
- :meth:`SimulationConfig.scaled` (default for tests/benchmarks) — the
  same *utilisation profile* at ~25x fewer requests: service times scaled
  up so ``lambda(t) * E[service] / capacity`` matches the paper preset.
  Queueing shape (who wins, crossovers) is preserved; absolute waiting
  times scale with the service time (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import SimulationError
from ..workload.diurnal import DAY_SECONDS, DiurnalProfile
from ..workload.sizes import LogNormalSizes, SizeDistribution

__all__ = ["ServiceModel", "SimulationConfig"]


@dataclass(frozen=True)
class ServiceModel:
    """Per-request resource requirement: ``min(a + b*x, c)`` seconds.

    The paper: "a request producing a response of length x requires server
    resources a + bx (in the experiments reported here a = 0.1 seconds and
    b = 1e-6 seconds; also ... we set the maximum resources needed per
    request to be c = 30 seconds)".
    """

    a: float = 0.1
    b: float = 1e-6
    c: float = 30.0

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0 or self.c <= 0:
            raise SimulationError(f"invalid service model {self!r}")

    def service_time(self, length_bytes: float) -> float:
        return min(self.a + self.b * length_bytes, self.c)

    def mean_service(self, sizes: SizeDistribution) -> float:
        """Approximate E[service] under a size distribution (ignores the cap)."""
        return min(self.a + self.b * sizes.mean, self.c)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one simulation run."""

    n_proxies: int = 10
    gap: float = 3_600.0
    """Time skew between neighbouring proxies' request streams (seconds)."""

    requests_per_day: float = 20_000.0
    """Expected requests per proxy per day."""

    service: ServiceModel = field(default_factory=ServiceModel)
    sizes: SizeDistribution = field(default_factory=LogNormalSizes)
    profile: DiurnalProfile | None = None
    """Base arrival profile; None derives one from requests_per_day."""

    capacity: float | tuple = 1.0
    """Processing rate per proxy (seconds of work per second); scalar or
    per-proxy tuple.  1.25 models '25% more resources' (Figure 7)."""

    scheme: str = "lp"
    """Redirection policy: 'none', 'lp', 'endpoint', or 'greedy'."""

    level: int | None = None
    """Transitivity level enforced by the scheduler (None = full closure)."""

    redirect_cost: float = 0.0
    """Fixed per-redirected-request overhead (Figure 12: 0.1 / 0.2 s)."""

    epoch: float = 120.0
    """Seconds between scheduler checks of the front-end queues."""

    threshold: float = 60.0
    """Queued work (seconds) above which the global scheduler is consulted."""

    max_hops: int | None = 1
    """Redirect a request at most this many times (None = unlimited).  The
    paper's scheme redirects a queued request once, to the proxy the
    scheduler picked."""

    lookahead: float = 600.0
    """Window (seconds) over which donor availability is projected."""

    project_arrivals: float | bool = 0.0
    """Weight of each donor's own expected arrivals in its availability
    report (0 = backlog only, 1 = fully reserve the projected future;
    booleans map to 0/1).  Full projection starves sharing exactly when it
    is most valuable (the donor of a busy proxy is often near its own peak
    yet still absorbs opportunistically); zero lets mid-load proxies
    front-run a donor's upcoming rush hour.  Swept in the ablation bench."""

    warmup_days: int = 1
    measure_days: int = 1
    """Simulated days; statistics cover only the final measure_days (the
    warmup lets queues reach steady state before the measured midnight
    peak — the paper's trace average has no cold start)."""

    seed: int = 0
    allocator_backend: str = "scipy"
    allocator_formulation: str = "reduced"
    slot_width: float = 600.0
    """Statistics slot width (the paper's 10-minute slots)."""

    def __post_init__(self) -> None:
        if self.n_proxies < 1:
            raise SimulationError("need at least one proxy")
        if self.scheme not in ("none", "lp", "endpoint", "greedy"):
            raise SimulationError(f"unknown scheme {self.scheme!r}")
        if self.epoch <= 0 or self.threshold < 0 or self.lookahead <= 0:
            raise SimulationError("epoch/lookahead must be positive, threshold >= 0")
        if self.warmup_days < 0 or self.measure_days < 1:
            raise SimulationError("warmup_days >= 0 and measure_days >= 1 required")

    # -- derived ---------------------------------------------------------------

    @property
    def horizon(self) -> float:
        return (self.warmup_days + self.measure_days) * DAY_SECONDS

    @property
    def measure_start(self) -> float:
        return self.warmup_days * DAY_SECONDS

    def base_profile(self) -> DiurnalProfile:
        if self.profile is not None:
            return self.profile
        return DiurnalProfile(requests_per_day=self.requests_per_day)

    def capacities(self) -> np.ndarray:
        if np.isscalar(self.capacity):
            return np.full(self.n_proxies, float(self.capacity))
        cap = np.asarray(self.capacity, dtype=float)
        if cap.shape != (self.n_proxies,):
            raise SimulationError(
                f"capacity must be scalar or length-{self.n_proxies}"
            )
        return cap

    def mean_utilisation(self) -> float:
        """Average offered load / capacity (sanity metric for presets)."""
        lam = self.requests_per_day / DAY_SECONDS
        s = self.service.mean_service(self.sizes)
        return lam * s / float(np.mean(self.capacities()))

    def with_(self, **changes) -> "SimulationConfig":
        """Functional update (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    # -- presets ------------------------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "SimulationConfig":
        """The paper's parameters at trace scale (~500 k req/proxy/day).

        Mean utilisation ~0.65 with a diurnal peak ~1.5x capacity —
        the overload regime in which Figure 5's 250-second waits arise.
        """
        cfg = cls(
            requests_per_day=500_000.0,
            service=ServiceModel(a=0.1, b=1e-6, c=30.0),
            sizes=LogNormalSizes(),
            threshold=60.0,
            epoch=120.0,
        )
        return cfg.with_(**overrides) if overrides else cfg

    @classmethod
    def scaled(cls, scale: float = 25.0, **overrides) -> "SimulationConfig":
        """Paper preset with ``scale``-times fewer requests, same utilisation.

        Service times are multiplied by ``scale`` so the offered-load
        profile (and hence queueing behaviour relative to capacity) is
        unchanged; thresholds and costs scale alongside so the policy
        dynamics match.
        """
        base = cls.paper()
        if scale <= 0:
            raise SimulationError("scale must be positive")
        changes = {
            # 0.95 x the paper's nominal volume puts the diurnal peak at the
            # overload depth the paper reports (no-sharing peak waits of a
            # few hundred seconds; ~1.5-6% of requests redirected under
            # sharing) -- see DESIGN.md section 6.
            "requests_per_day": base.requests_per_day / scale * 0.95,
            "service": ServiceModel(
                a=base.service.a * scale,
                b=base.service.b * scale,
                c=base.service.c * scale,
            ),
            # Policy knobs track the service-time scale so the redirect
            # dynamics (when to consult, how much latency a consult saves)
            # stay equivalent to the paper preset.
            "threshold": 0.25 * scale,
            "epoch": 60.0,
            "lookahead": 600.0,
        }
        changes.update(overrides)
        return base.with_(**changes)
