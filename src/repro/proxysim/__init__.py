"""The case study: resource sharing among ISP-level web proxies (Section 4).

A group of proxies serves diurnal client request streams; a request of
response length ``x`` consumes ``a + b*x`` seconds of the proxy's single
collapsed "general" resource (capped at ``c``).  When the work queued at a
proxy's front-end exceeds a threshold, the global scheduler is consulted;
it redirects the excess to other proxies, enforcing the sharing agreements
by solving the Section-3 LP (or one of the baseline schemes).

- :class:`~repro.proxysim.config.SimulationConfig` — all knobs, with
  paper-parameter and scaled-benchmark presets;
- :class:`~repro.proxysim.simulator.ProxySimulation` — the event loop;
- :class:`~repro.proxysim.metrics.SimulationResult` — per-slot series and
  scalar summaries matching what the figures plot;
- :mod:`~repro.proxysim.redirect` — redirection policies: none,
  LP (centralized, transitive), endpoint (proportional, Figure 13's
  baseline), greedy.
"""

from .config import ServiceModel, SimulationConfig
from .metrics import SimulationResult
from .redirect import (
    EndpointPolicy,
    GreedyPolicy,
    LPPolicy,
    NoSharingPolicy,
    RedirectPolicy,
    make_policy,
)
from .simulator import ProxySimulation, run_simulation

__all__ = [
    "ServiceModel",
    "SimulationConfig",
    "SimulationResult",
    "ProxySimulation",
    "run_simulation",
    "RedirectPolicy",
    "NoSharingPolicy",
    "LPPolicy",
    "EndpointPolicy",
    "GreedyPolicy",
    "make_policy",
]
