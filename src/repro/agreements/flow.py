"""Transitive resource flow through chained agreements (Section 3.1).

The paper defines ``I^(m)_ij`` as the resource amount flowing from currency
node ``i`` into currency node ``j`` through at most ``m`` levels of
transitive agreements, where chains may not revisit nodes::

    I^(m)_ij = V_i * T^(m)_ij
    T^(m)_ij = sum over simple paths i -> k_1 -> ... -> k_{l-1} -> j
               (1 <= l <= m, k_p distinct, k_p != i, j)
               of S[i,k_1] * S[k_1,k_2] * ... * S[k_{l-1},j]

``T`` depends only on the agreement matrix ``S``, so it is computed once
per (structure, level) and cached by :class:`~repro.agreements.matrix.AgreementSystem`.

Three algorithms are provided:

``"dp"`` (default)
    Held–Karp-style dynamic programming over visited-node subsets,
    exact, O(2^n * n^2) per source — fast for the paper's scales
    (n = 10) and practical to n ≈ 16–18.  Level-limited runs only touch
    subsets of size <= m, so small ``m`` is cheap even for larger n.

``"dfs"``
    Direct enumeration of simple paths.  Exponential; used as the oracle
    the DP is verified against in tests.

``"walk"``
    Matrix-power approximation ``sum_{l<=m} S^l`` with the diagonal zeroed.
    Counts walks that revisit nodes, hence an *upper bound* on ``T``;
    provided for large sparse systems where exactness is not affordable.

The extensions of Section 3.2 are :func:`overdraft_clamp` (``K^(m)``,
clamping coefficients at 1 when row sums may exceed 1) and
:func:`u_matrix` (clamping combined relative+absolute inflows at the
donor's raw capacity ``V_k``).
"""

from __future__ import annotations

import numpy as np

from ..errors import AgreementError
from ..obs import get_observer

__all__ = [
    "transitive_coefficients",
    "flow_matrix",
    "overdraft_clamp",
    "u_matrix",
    "capacities",
]


def _check_square(S: np.ndarray) -> np.ndarray:
    S = np.asarray(S, dtype=float)
    if S.ndim != 2 or S.shape[0] != S.shape[1]:
        raise AgreementError(f"agreement matrix must be square, got shape {S.shape}")
    return S


def _coefficients_dp(S: np.ndarray, max_level: int) -> np.ndarray:
    """Exact simple-path sums via subset DP, layered by path length."""
    n = S.shape[0]
    T = np.zeros((n, n))
    for i in range(n):
        # layer: dict mask -> vector over last nodes, masks of size == level
        layer: dict[int, np.ndarray] = {}
        for j in range(n):
            if j != i and S[i, j] != 0.0:
                v = np.zeros(n)
                v[j] = S[i, j]
                layer[1 << j] = v
        for vec in layer.values():
            T[i] += vec
        for _level in range(2, max_level + 1):
            nxt: dict[int, np.ndarray] = {}
            for mask, vec in layer.items():
                active = np.nonzero(vec)[0]
                if active.size == 0:
                    continue
                weights = vec[active]
                for k in range(n):
                    bit = 1 << k
                    if k == i or (mask & bit):
                        continue
                    w = float(weights @ S[active, k])
                    if w == 0.0:
                        continue
                    nmask = mask | bit
                    tgt = nxt.get(nmask)
                    if tgt is None:
                        tgt = np.zeros(n)
                        nxt[nmask] = tgt
                    tgt[k] += w
            if not nxt:
                break
            layer = nxt
            for vec in layer.values():
                T[i] += vec
        T[i, i] = 0.0
    return T


def _coefficients_dfs(S: np.ndarray, max_level: int) -> np.ndarray:
    """Oracle: explicit simple-path enumeration (exponential)."""
    n = S.shape[0]
    T = np.zeros((n, n))

    def dfs(i: int, node: int, product: float, visited: int, depth: int) -> None:
        if depth > max_level:
            return
        if node != i:
            T[i, node] += product
        if depth == max_level:
            return
        for k in range(n):
            if k != i and not (visited & (1 << k)) and S[node, k] != 0.0:
                dfs(i, k, product * S[node, k], visited | (1 << k), depth + 1)

    for i in range(n):
        dfs(i, i, 1.0, 1 << i, 0)
    return T


def _coefficients_walk(S: np.ndarray, max_level: int) -> np.ndarray:
    """Walk approximation: sum of powers of S, diagonal zeroed per step."""
    n = S.shape[0]
    T = np.zeros((n, n))
    P = np.eye(n)
    for _ in range(max_level):
        P = P @ S
        np.fill_diagonal(P, 0.0)
        T += P
    np.fill_diagonal(T, 0.0)
    return T


_METHODS = {
    "dp": _coefficients_dp,
    "dfs": _coefficients_dfs,
    "walk": _coefficients_walk,
}


def transitive_coefficients(
    S: np.ndarray, max_level: int | None = None, method: str = "dp"
) -> np.ndarray:
    """Compute ``T^(m)`` for relative agreement matrix ``S``.

    Parameters
    ----------
    S:
        Square relative agreement matrix (``S[i, j]`` = fraction of ``i``'s
        resources shared with ``j``; zero diagonal).
    max_level:
        Maximum chain length ``m``.  ``None`` (or anything >= n-1) means
        the full transitive closure ``T^(n-1)`` — a simple path visits at
        most n-1 edges, so deeper levels add nothing.
    method:
        ``"dp"`` (exact, default), ``"dfs"`` (exact oracle) or ``"walk"``
        (upper-bound approximation for large n).
    """
    S = _check_square(S)
    n = S.shape[0]
    m = n - 1 if max_level is None else int(max_level)
    if m < 0:
        raise AgreementError(f"max_level must be >= 0, got {max_level}")
    m = min(m, n - 1) if method != "walk" else m
    try:
        fn = _METHODS[method]
    except KeyError:
        raise AgreementError(
            f"unknown flow method {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    if m == 0:
        return np.zeros((n, n))
    obs = get_observer()
    with obs.span("flow.coefficients", method=method, n=n, hop_depth=m):
        T = fn(S, m)
    if obs.enabled:
        obs.counter("flow.builds", method=method)
        obs.histogram("flow.hop_depth", m)
    return T


def flow_matrix(V: np.ndarray, T: np.ndarray) -> np.ndarray:
    """``I^(m)_ij = V_i * T^(m)_ij`` — actual resource flows."""
    V = np.asarray(V, dtype=float)
    T = _check_square(T)
    if V.shape != (T.shape[0],):
        raise AgreementError(
            f"capacity vector shape {V.shape} does not match matrix {T.shape}"
        )
    return V[:, None] * T


def overdraft_clamp(T: np.ndarray) -> np.ndarray:
    """Section 3.2's ``K^(m)``: clamp coefficients at 1.

    When the row-sum restriction ``sum_k S_ik <= 1`` is lifted, chained
    shares can promise node ``j`` more than all of ``i``'s resources; the
    clamp caps the transfer at 100% of ``V_i`` ("the quantity of resources
    C can obtain is limited to 10 instead of 12").
    """
    return np.minimum(_check_square(T), 1.0)


def u_matrix(I: np.ndarray, A: np.ndarray | None, V: np.ndarray) -> np.ndarray:
    """Combine relative flows with absolute grants, clamped at donor capacity.

    ``U_ki = min(I^(n-1)_ki + A_ki, V_k)`` (Section 3.2): the total a donor
    ``k`` provides to ``i`` cannot exceed what ``k`` owns.
    """
    I = _check_square(I)
    V = np.asarray(V, dtype=float)
    n = I.shape[0]
    if A is None:
        A = np.zeros((n, n))
    A = _check_square(A)
    if A.shape != I.shape:
        raise AgreementError("absolute matrix shape does not match flow matrix")
    U = np.minimum(I + A, V[:, None])
    np.fill_diagonal(U, 0.0)
    return U


def capacities(V: np.ndarray, U: np.ndarray) -> np.ndarray:
    """Effective capacities ``C_i = V_i + sum_{k != i} U_ki``."""
    V = np.asarray(V, dtype=float)
    U = _check_square(U)
    return V + U.sum(axis=0)
