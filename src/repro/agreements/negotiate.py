"""Negotiation support: derive agreements from capacity targets.

The paper's machinery answers "given these agreements, what can each
principal use?"  Operators face the inverse question when drafting
agreements: *which shares do we need so that every participant's
effective capacity meets its target?*  :func:`suggest_shares` solves the
direct-agreement (level-1) version as a linear program:

    minimise   sum_{ij} V_i * S_ij          (total capacity committed)
    subject to V_i + sum_k V_k * S_ki >= target_i     for every i
               sum_j S_ij <= max_share_out            for every i
               0 <= S_ij <= cap, only on allowed edges

Restricting to level 1 keeps the problem linear (transitive flows are
products of shares) and is conservative: any chains that arise only add
capacity on top of the guaranteed direct flows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import AgreementError, InfeasibleAllocationError
from ..lp import LinearProgram
from .matrix import AgreementSystem

__all__ = ["suggest_shares"]


def suggest_shares(
    principals: Sequence[str],
    V: np.ndarray,
    targets: np.ndarray,
    *,
    allowed: np.ndarray | None = None,
    max_share_out: float = 1.0,
    max_edge_share: float = 1.0,
    backend: str = "scipy",
) -> AgreementSystem:
    """Find a minimal relative agreement matrix meeting capacity targets.

    Parameters
    ----------
    principals, V:
        Names and raw capacities.
    targets:
        Required effective capacity per principal (level-1 guarantee).
    allowed:
        Optional boolean matrix; ``allowed[i, j]`` permits an agreement
        from ``i`` to ``j``.  Defaults to everything off-diagonal
        (a complete negotiation).
    max_share_out:
        Cap on each principal's total outgoing share (the paper's
        row-sum <= 1 constraint by default).
    max_edge_share:
        Cap on a single agreement's share.

    Returns
    -------
    AgreementSystem
        With the suggested ``S``; total committed capacity is minimal.

    Raises
    ------
    InfeasibleAllocationError
        If no agreement matrix can meet the targets (e.g. total targets
        exceed total capacity).
    """
    principals = list(principals)
    n = len(principals)
    V = np.asarray(V, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if V.shape != (n,) or targets.shape != (n,):
        raise AgreementError("V and targets must both have one entry per principal")
    if allowed is None:
        allowed = ~np.eye(n, dtype=bool)
    allowed = np.asarray(allowed, dtype=bool)
    if allowed.shape != (n, n):
        raise AgreementError(f"allowed must be {n}x{n}")

    lp = LinearProgram("negotiate-shares")
    s = {}
    for i in range(n):
        for j in range(n):
            if i != j and allowed[i, j] and V[i] > 0:
                s[i, j] = lp.variable(
                    f"s_{i}_{j}", lower=0.0, upper=float(max_edge_share)
                )

    # Capacity targets: V_i + sum_k V_k s_ki >= target_i.
    for i in range(n):
        need = float(targets[i] - V[i])
        if need <= 0:
            continue
        inflow_vars = [(k, s[k, i]) for k in range(n) if (k, i) in s]
        if not inflow_vars:
            raise InfeasibleAllocationError(
                f"principal {principals[i]!r} needs {need:g} more capacity "
                "but no inbound agreement is allowed"
            )
        expr = inflow_vars[0][1] * float(V[inflow_vars[0][0]])
        for k, var in inflow_vars[1:]:
            expr = expr + var * float(V[k])
        lp.add_constraint(expr >= need, name=f"target_{i}")

    # Row sums: sum_j s_ij <= max_share_out.
    for i in range(n):
        out_vars = [s[i, j] for j in range(n) if (i, j) in s]
        if not out_vars:
            continue
        expr = out_vars[0] * 1.0
        for var in out_vars[1:]:
            expr = expr + var
        lp.add_constraint(expr <= float(max_share_out), name=f"rowsum_{i}")

    # Objective: total committed capacity.
    if s:
        items = list(s.items())
        obj = items[0][1] * float(V[items[0][0][0]])
        for (i, _j), var in items[1:]:
            obj = obj + var * float(V[i])
        lp.minimize(obj)

    result = lp.solve(backend=backend)
    if not result.ok:
        raise InfeasibleAllocationError(
            "no agreement matrix meets the requested capacity targets "
            f"(LP status: {result.status.value})"
        )
    S = np.zeros((n, n))
    for (i, j), var in s.items():
        S[i, j] = max(result[var.name], 0.0)
    return AgreementSystem(principals, V, S, allow_overdraft=max_share_out > 1.0)
