"""Agreement matrices and the transitive flow computation (Section 3).

- :class:`~repro.agreements.topology.AgreementTopology` /
  :class:`~repro.agreements.topology.CapacityView` — the core split: an
  immutable, hashable structure (principals, ``S``, ``A``, overdraft
  flag, flow method) owning the per-level coefficient cache, and cheap
  capacity views over it, one per scheduling epoch;
- :class:`~repro.agreements.matrix.AgreementSystem` — the compatibility
  facade over the pair: principals, raw capacities ``V``, relative matrix
  ``S`` and absolute matrix ``A`` with the paper's validity constraints,
  plus cached flow/capacity queries;
- :mod:`~repro.agreements.flow` — the flow coefficients ``T^(m)``
  (sums over acyclic agreement chains of at most ``m`` hops), flows
  ``I^(m) = V_i T^(m)_ij``, overdraft clamping ``K^(m)``, absolute-ticket
  clamping ``U``, and effective capacities ``C_i``;
- :mod:`~repro.agreements.structures` — generators for the structures the
  paper names (complete, sparse, hierarchical) and the case study's loop
  with skip and distance-decay graphs;
- :mod:`~repro.agreements.analysis` — reachability, exposure and
  dependency reports over agreement graphs (the multigrid *allocator*
  lives in :mod:`repro.allocation.hierarchical`).
"""

from .analysis import (
    StructureSummary,
    chain_contributions,
    dependency,
    donor_set,
    exposure,
    reachable_set,
    summarize,
)
from .graph_export import from_networkx, to_networkx
from .flow import (
    capacities,
    flow_matrix,
    overdraft_clamp,
    transitive_coefficients,
    u_matrix,
)
from .matrix import AgreementSystem
from .negotiate import suggest_shares
from .topology import AgreementTopology, CapacityView
from .structures import (
    complete_structure,
    distance_decay_structure,
    hierarchical_structure,
    loop_structure,
    sparse_structure,
)

__all__ = [
    "AgreementSystem",
    "AgreementTopology",
    "CapacityView",
    "StructureSummary",
    "reachable_set",
    "donor_set",
    "exposure",
    "dependency",
    "chain_contributions",
    "summarize",
    "suggest_shares",
    "to_networkx",
    "from_networkx",
    "transitive_coefficients",
    "flow_matrix",
    "overdraft_clamp",
    "u_matrix",
    "capacities",
    "complete_structure",
    "loop_structure",
    "sparse_structure",
    "hierarchical_structure",
    "distance_decay_structure",
]
