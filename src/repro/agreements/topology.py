"""The versioned topology / capacity-view split of the agreement core.

The enforcement pipeline separates two rates of change.  The agreement
*structure* — who shares what fraction with whom — changes slowly (ticket
issue/revoke), and owning it is expensive: the transitive coefficients
``T^(m)`` behind every flow query cost an O(2^n * n^2) dynamic program.
Raw *capacities* ``V`` change every scheduling epoch as availability
fluctuates, but everything derived from them (``I``, ``U``, ``C``) is a
few dense matrix operations.

This module gives each rate its own type:

- :class:`AgreementTopology` — immutable and hashable: principals, the
  relative matrix ``S``, the optional absolute matrix ``A``, the
  overdraft flag and flow method.  It owns the per-level ``T``/``K``
  coefficient cache, so any number of views (and any number of epochs)
  amortise one DP run.
- :class:`CapacityView` — a capacity vector ``V`` bound to a topology,
  answering the per-epoch queries (:meth:`~CapacityView.capacities`,
  :meth:`~CapacityView.u`, :meth:`~CapacityView.flows`) with per-level
  memoisation.  Views are cheap to mint (:meth:`AgreementTopology.view`)
  and to rebind (:meth:`CapacityView.with_capacities`).

:class:`~repro.agreements.matrix.AgreementSystem` remains as a thin
facade over the pair, so call sites written against the original
monolithic class keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .. import sanitize as _sanitize
from ..errors import InvalidAgreementMatrixError, OversharingError
from . import flow as _flow

__all__ = ["AgreementTopology", "CapacityView"]

_TOL = 1e-9


def _clean_capacities(V: np.ndarray | Sequence[float], n: int) -> np.ndarray:
    """Validate and freeze a raw-capacity vector."""
    V = np.asarray(V, dtype=float).copy()
    if V.shape != (n,):
        raise InvalidAgreementMatrixError(f"V must have shape ({n},), got {V.shape}")
    if np.any(V < -_TOL):
        raise InvalidAgreementMatrixError("capacities V must be non-negative")
    np.maximum(V, 0.0, out=V)
    V.flags.writeable = False
    return V


class AgreementTopology:
    """The slowly-changing half of an agreement system.

    Parameters
    ----------
    principals:
        Names, defining index order in all matrices.
    S:
        Relative agreement matrix; ``S[i, j]`` is the fraction of ``i``'s
        resources shared with ``j``.  Validated against the Section-3.1
        constraints (zero diagonal, non-negative, row sums <= 1 unless
        overdraft is allowed).
    A:
        Optional absolute agreement matrix; ``A[i, j]`` is a constant
        quantity granted by ``i`` to ``j``.
    allow_overdraft:
        Lift the row-sum <= 1 restriction (Section 3.2); coefficients are
        then clamped with ``K``.
    flow_method:
        Algorithm for :func:`repro.agreements.flow.transitive_coefficients`.

    Instances are immutable (matrices are stored read-only) and hashable
    on their full structural content, which is what lets callers key
    caches on a topology — e.g. :meth:`repro.economy.Bank.topology`
    keyed on the bank version.
    """

    __slots__ = (
        "principals",
        "n",
        "S",
        "A",
        "allow_overdraft",
        "flow_method",
        "_index",
        "_t_cache",
        "_hash",
    )

    def __init__(
        self,
        principals: Sequence[str],
        S: np.ndarray,
        A: np.ndarray | None = None,
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> None:
        self.principals = tuple(principals)
        self.n = len(self.principals)
        if len(set(self.principals)) != self.n:
            raise InvalidAgreementMatrixError("principal names must be unique")
        self._index = {p: i for i, p in enumerate(self.principals)}
        self.allow_overdraft = bool(allow_overdraft)
        self.flow_method = str(flow_method)
        self.S = self._clean_relative(np.asarray(S, dtype=float).copy())
        self.A = self._clean_absolute(
            None if A is None else np.asarray(A, dtype=float).copy()
        )
        self._t_cache: dict[int, np.ndarray] = {}
        self._hash: int | None = None

    # -- validation ----------------------------------------------------------

    def _clean_relative(self, S: np.ndarray) -> np.ndarray:
        n = self.n
        if S.shape != (n, n):
            raise InvalidAgreementMatrixError(
                f"S must have shape ({n}, {n}), got {S.shape}"
            )
        if np.any(np.abs(np.diag(S)) > _TOL):
            raise InvalidAgreementMatrixError("S must have a zero diagonal (S_ii = 0)")
        if np.any(S < -_TOL):
            raise InvalidAgreementMatrixError("S entries must be non-negative")
        np.maximum(S, 0.0, out=S)
        np.fill_diagonal(S, 0.0)
        row_sums = S.sum(axis=1)
        if not self.allow_overdraft and np.any(row_sums > 1.0 + _TOL):
            bad = [self.principals[i] for i in np.nonzero(row_sums > 1.0 + _TOL)[0]]
            raise OversharingError(
                f"principals {bad} share more than 100% of their resources; "
                "pass allow_overdraft=True for Section-3.2 overdraft semantics"
            )
        S.flags.writeable = False
        return S

    def _clean_absolute(self, A: np.ndarray | None) -> np.ndarray | None:
        if A is None:
            return None
        n = self.n
        if A.shape != (n, n):
            raise InvalidAgreementMatrixError(
                f"A must have shape ({n}, {n}), got {A.shape}"
            )
        if np.any(A < -_TOL):
            raise InvalidAgreementMatrixError("A entries must be non-negative")
        if np.any(np.abs(np.diag(A)) > _TOL):
            raise InvalidAgreementMatrixError("A must have a zero diagonal")
        np.maximum(A, 0.0, out=A)
        np.fill_diagonal(A, 0.0)
        A.flags.writeable = False
        return A

    # -- identity ------------------------------------------------------------

    def _key(self) -> tuple:
        return (
            self.principals,
            self.S.tobytes(),
            None if self.A is None else self.A.tobytes(),
            self.allow_overdraft,
            self.flow_method,
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AgreementTopology):
            return NotImplemented
        return self._key() == other._key()

    # -- queries ---------------------------------------------------------------

    def index(self, principal: str) -> int:
        try:
            return self._index[principal]
        except KeyError:
            raise InvalidAgreementMatrixError(
                f"unknown principal {principal!r}"
            ) from None

    @property
    def max_level(self) -> int:
        """Chain length of the full transitive closure (n - 1)."""
        return max(self.n - 1, 0)

    def _level(self, level: int | None) -> int:
        return self.max_level if level is None else min(int(level), self.max_level)

    def coefficients(self, level: int | None = None) -> np.ndarray:
        """``T^(m)`` (or ``K^(m)`` under overdraft), cached per level."""
        m = self._level(level)
        T = self._t_cache.get(m)
        if T is None:
            T = _flow.transitive_coefficients(self.S, m, self.flow_method)
            if self.allow_overdraft:
                T = _flow.overdraft_clamp(T)
            if _sanitize.enabled():
                _sanitize.check_coefficients(T, self.allow_overdraft)
            T.flags.writeable = False
            self._t_cache[m] = T
        return T

    # -- capacity-dependent queries -------------------------------------------
    #
    # Everything below takes V explicitly: the topology knows how to
    # evaluate flows for *any* capacity vector without being cloned.

    def flows(self, V: np.ndarray, level: int | None = None) -> np.ndarray:
        """``I^(m)_ij`` — the amount of ``i``'s resources reachable by ``j``."""
        return _flow.flow_matrix(V, self.coefficients(level))

    def u(self, V: np.ndarray, level: int | None = None) -> np.ndarray:
        """``U_ki`` — relative + absolute inflow clamped at donor capacity."""
        return _flow.u_matrix(self.flows(V, level), self.A, V)

    def capacities(self, V: np.ndarray, level: int | None = None) -> np.ndarray:
        """Effective capacities ``C_i`` for capacity vector ``V``."""
        return _flow.capacities(V, self.u(V, level))

    def view(self, V: np.ndarray) -> "CapacityView":
        """Bind a raw-capacity vector to this topology."""
        return CapacityView(self, V)

    def __repr__(self) -> str:
        return (
            f"AgreementTopology(n={self.n}, "
            f"edges={int(np.count_nonzero(self.S))}, "
            f"overdraft={self.allow_overdraft}, method={self.flow_method!r})"
        )


class CapacityView:
    """The fast-changing half: a capacity vector over a topology.

    A view answers the same flow/capacity queries as the old monolithic
    ``AgreementSystem`` but owns no structure of its own — ``T`` lookups
    hit the topology's shared cache, and the per-level ``(U, C)`` pairs
    computed for *this* ``V`` are memoised so an allocator's sequence of
    ``u() / capacities() / coefficients()`` calls does the dense algebra
    once.
    """

    __slots__ = ("topology", "V", "_uc_cache")

    def __init__(self, topology: AgreementTopology, V: np.ndarray) -> None:
        self.topology = topology
        self.V = _clean_capacities(V, topology.n)
        self._uc_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- structure passthrough -------------------------------------------------

    @property
    def principals(self) -> list[str]:
        return list(self.topology.principals)

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def S(self) -> np.ndarray:
        return self.topology.S

    @property
    def A(self) -> np.ndarray | None:
        return self.topology.A

    @property
    def allow_overdraft(self) -> bool:
        return self.topology.allow_overdraft

    @property
    def flow_method(self) -> str:
        return self.topology.flow_method

    @property
    def max_level(self) -> int:
        return self.topology.max_level

    def index(self, principal: str) -> int:
        return self.topology.index(principal)

    def coefficients(self, level: int | None = None) -> np.ndarray:
        return self.topology.coefficients(level)

    # -- capacity queries ------------------------------------------------------

    def _uc(self, level: int | None) -> tuple[np.ndarray, np.ndarray]:
        m = self.topology._level(level)
        pair = self._uc_cache.get(m)
        if pair is None:
            U = self.topology.u(self.V, m)
            C = _flow.capacities(self.V, U)
            # Freeze before caching: every caller shares these arrays, so
            # an in-place write would corrupt the memo for the rest of
            # the epoch (reprolint R5 is the static half of this guard).
            U.flags.writeable = False
            C.flags.writeable = False
            pair = self._uc_cache[m] = (U, C)
        return pair

    def flows(self, level: int | None = None) -> np.ndarray:
        return self.topology.flows(self.V, level)

    def u(self, level: int | None = None) -> np.ndarray:
        return self._uc(level)[0]

    def capacities(self, level: int | None = None) -> np.ndarray:
        return self._uc(level)[1]

    def capacity_of(self, principal: str, level: int | None = None) -> float:
        return float(self.capacities(level)[self.index(principal)])

    def with_capacities(self, V: np.ndarray) -> "CapacityView":
        """A view of the same topology at different raw capacities."""
        return CapacityView(self.topology, V)

    def __repr__(self) -> str:
        return (
            f"CapacityView(n={self.n}, total_capacity={self.V.sum():g}, "
            f"edges={int(np.count_nonzero(self.S))}, "
            f"overdraft={self.allow_overdraft})"
        )
