"""Analysis utilities over agreement systems.

Answers the operational questions a deployment of this scheme raises:
which principals can reach which resources (and through whom), how
exposed is a donor to its beneficiaries, and how balanced is the
structure overall.  Used by the examples and handy for debugging
agreement graphs.

Every function accepts either an
:class:`~repro.agreements.matrix.AgreementSystem` or a
:class:`~repro.agreements.topology.CapacityView` — both expose the same
query surface, so analyses run equally against a static system or a live
view minted from a bank's cached topology
(:meth:`repro.economy.Bank.capacity_view`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .matrix import AgreementSystem
from .topology import CapacityView

Systemish = Union[AgreementSystem, CapacityView]

__all__ = [
    "reachable_set",
    "donor_set",
    "exposure",
    "dependency",
    "chain_contributions",
    "StructureSummary",
    "summarize",
]

_TOL = 1e-12


def reachable_set(
    system: Systemish, principal: str, level: int | None = None
) -> dict[str, float]:
    """Donors whose resources ``principal`` can draw on, with amounts.

    Returns ``{donor: available_flow}`` for every donor with positive
    ``U[donor, principal]`` at the given transitivity level.
    """
    a = system.index(principal)
    U = system.u(level)
    return {
        system.principals[k]: float(U[k, a])
        for k in range(system.n)
        if k != a and U[k, a] > _TOL
    }


def donor_set(
    system: Systemish, principal: str, level: int | None = None
) -> dict[str, float]:
    """Beneficiaries that can draw on ``principal``'s resources.

    Returns ``{beneficiary: flow}`` — the outgoing row of ``U``.
    """
    a = system.index(principal)
    U = system.u(level)
    return {
        system.principals[j]: float(U[a, j])
        for j in range(system.n)
        if j != a and U[a, j] > _TOL
    }


def exposure(system: Systemish, principal: str, level: int | None = None) -> float:
    """Fraction of ``principal``'s raw capacity promised to others.

    1.0 means every unit it owns is (transitively) claimable by someone;
    above 1.0 can only occur in overdraft systems before clamping.
    """
    a = system.index(principal)
    if system.V[a] <= _TOL:
        return 0.0
    outgoing = max(system.u(level)[a].max(), 0.0)
    return float(outgoing / system.V[a])


def dependency(system: Systemish, principal: str, level: int | None = None) -> float:
    """Fraction of ``principal``'s effective capacity that is borrowed.

    0 means fully self-sufficient; close to 1 means nearly everything it
    can use belongs to someone else (like principal D in Example 1).
    """
    a = system.index(principal)
    C = system.capacities(level)[a]
    if C <= _TOL:
        return 0.0
    return float(1.0 - system.V[a] / C)


def chain_contributions(
    system: Systemish, donor: str, beneficiary: str, max_level: int | None = None
) -> list[tuple[int, float]]:
    """Per-level breakdown of the flow coefficient from donor to beneficiary.

    Returns ``[(level, marginal_T)]`` where ``marginal_T`` is the
    coefficient added by chains of exactly that length — showing how much
    of an agreement is direct vs transitive (the paper notes the
    "exponential decrease in the amount of resources accessible along the
    chain").
    """
    i, j = system.index(donor), system.index(beneficiary)
    top = system.max_level if max_level is None else min(max_level, system.max_level)
    out: list[tuple[int, float]] = []
    prev = 0.0
    for m in range(1, top + 1):
        t = float(system.coefficients(m)[i, j])
        marginal = t - prev
        if marginal > _TOL:
            out.append((m, marginal))
        prev = t
    return out


@dataclass(frozen=True)
class StructureSummary:
    """Aggregate facts about an agreement structure."""

    n: int
    edges: int
    density: float
    total_capacity: float
    mean_share_out: float
    mean_capacity_gain: float
    max_dependency: float
    disconnected_principals: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructureSummary(n={self.n}, edges={self.edges}, "
            f"density={self.density:.2f}, gain={self.mean_capacity_gain:.2f}x, "
            f"max_dependency={self.max_dependency:.2f})"
        )


def summarize(system: Systemish, level: int | None = None) -> StructureSummary:
    """Compute a :class:`StructureSummary` for a system."""
    n = system.n
    edges = int(np.count_nonzero(system.S))
    C = system.capacities(level)
    V = system.V
    with np.errstate(divide="ignore", invalid="ignore"):
        gains = np.where(V > _TOL, C / np.maximum(V, _TOL), 1.0)
    deps = [dependency(system, p, level) for p in system.principals]
    disconnected = tuple(
        p
        for k, p in enumerate(system.principals)
        if not np.any(system.S[k] > _TOL) and not np.any(system.S[:, k] > _TOL)
        and (system.A is None or (not np.any(system.A[k] > _TOL)
                                  and not np.any(system.A[:, k] > _TOL)))
    )
    return StructureSummary(
        n=n,
        edges=edges,
        density=edges / (n * (n - 1)) if n > 1 else 0.0,
        total_capacity=float(V.sum()),
        mean_share_out=float(system.S.sum(axis=1).mean()),
        mean_capacity_gain=float(np.mean(gains)),
        max_dependency=float(max(deps)) if deps else 0.0,
        disconnected_principals=disconnected,
    )
