"""The :class:`AgreementSystem`: principals, capacities and agreement matrices.

This is the enforcement layer's view of the world: a list of principals, a
raw-capacity vector ``V``, the relative agreement matrix ``S`` and the
(optional) absolute agreement matrix ``A``, with the validity constraints
of Section 3.1 (``S_ii = 0``, ``S_ij >= 0``, ``sum_k S_ik <= 1`` unless
overdraft is allowed) and cached transitive-flow queries.

An :class:`AgreementSystem` is constructed directly from matrices, from a
structure generator (:mod:`repro.agreements.structures`), or from a
:class:`repro.economy.Bank` via :meth:`AgreementSystem.from_bank`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidAgreementMatrixError, OversharingError
from . import flow as _flow

__all__ = ["AgreementSystem"]

_TOL = 1e-9


class AgreementSystem:
    """Principals + ``(V, S, A)`` with validated structure and cached flows.

    Parameters
    ----------
    principals:
        Names, defining index order in all matrices.
    V:
        Raw owned capacity per principal (``V_i >= 0``).
    S:
        Relative agreement matrix; ``S[i, j]`` is the fraction of ``i``'s
        resources shared with ``j``.
    A:
        Optional absolute agreement matrix; ``A[i, j]`` is a constant
        quantity granted by ``i`` to ``j``.
    allow_overdraft:
        Lift the row-sum <= 1 restriction (Section 3.2); flows are then
        computed with the ``K`` clamp.
    flow_method:
        Algorithm for :func:`repro.agreements.flow.transitive_coefficients`.
    """

    def __init__(
        self,
        principals: Sequence[str],
        V: np.ndarray,
        S: np.ndarray,
        A: np.ndarray | None = None,
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ):
        self.principals = list(principals)
        self.n = len(self.principals)
        if len(set(self.principals)) != self.n:
            raise InvalidAgreementMatrixError("principal names must be unique")
        self._index = {p: i for i, p in enumerate(self.principals)}

        self.V = np.asarray(V, dtype=float).copy()
        self.S = np.asarray(S, dtype=float).copy()
        self.A = None if A is None else np.asarray(A, dtype=float).copy()
        self.allow_overdraft = bool(allow_overdraft)
        self.flow_method = flow_method
        self._validate()
        self._t_cache: dict[int, np.ndarray] = {}

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        n = self.n
        if self.V.shape != (n,):
            raise InvalidAgreementMatrixError(
                f"V must have shape ({n},), got {self.V.shape}"
            )
        if np.any(self.V < -_TOL):
            raise InvalidAgreementMatrixError("capacities V must be non-negative")
        self.V = np.maximum(self.V, 0.0)
        if self.S.shape != (n, n):
            raise InvalidAgreementMatrixError(
                f"S must have shape ({n}, {n}), got {self.S.shape}"
            )
        if np.any(np.abs(np.diag(self.S)) > _TOL):
            raise InvalidAgreementMatrixError("S must have a zero diagonal (S_ii = 0)")
        if np.any(self.S < -_TOL):
            raise InvalidAgreementMatrixError("S entries must be non-negative")
        self.S = np.maximum(self.S, 0.0)
        np.fill_diagonal(self.S, 0.0)
        row_sums = self.S.sum(axis=1)
        if not self.allow_overdraft and np.any(row_sums > 1.0 + _TOL):
            bad = [self.principals[i] for i in np.nonzero(row_sums > 1.0 + _TOL)[0]]
            raise OversharingError(
                f"principals {bad} share more than 100% of their resources; "
                "pass allow_overdraft=True for Section-3.2 overdraft semantics"
            )
        if self.A is not None:
            if self.A.shape != (n, n):
                raise InvalidAgreementMatrixError(
                    f"A must have shape ({n}, {n}), got {self.A.shape}"
                )
            if np.any(self.A < -_TOL):
                raise InvalidAgreementMatrixError("A entries must be non-negative")
            if np.any(np.abs(np.diag(self.A)) > _TOL):
                raise InvalidAgreementMatrixError("A must have a zero diagonal")
            self.A = np.maximum(self.A, 0.0)
            np.fill_diagonal(self.A, 0.0)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_bank(
        cls,
        bank,
        resource_type: str = "general",
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> "AgreementSystem":
        """Flatten a :class:`repro.economy.Bank` into an agreement system."""
        principals, V, S, A = bank.to_agreement_system(resource_type)
        return cls(
            principals,
            V,
            S,
            A if np.any(A) else None,
            allow_overdraft=allow_overdraft,
            flow_method=flow_method,
        )

    # -- queries ------------------------------------------------------------------

    def index(self, principal: str) -> int:
        try:
            return self._index[principal]
        except KeyError:
            raise InvalidAgreementMatrixError(
                f"unknown principal {principal!r}"
            ) from None

    @property
    def max_level(self) -> int:
        """Chain length of the full transitive closure (n - 1)."""
        return max(self.n - 1, 0)

    def coefficients(self, level: int | None = None) -> np.ndarray:
        """``T^(m)`` (or ``K^(m)`` under overdraft), cached per level."""
        m = self.max_level if level is None else min(int(level), self.max_level)
        if m not in self._t_cache:
            T = _flow.transitive_coefficients(self.S, m, self.flow_method)
            if self.allow_overdraft:
                T = _flow.overdraft_clamp(T)
            self._t_cache[m] = T
        return self._t_cache[m]

    def flows(self, level: int | None = None) -> np.ndarray:
        """``I^(m)_ij`` — the amount of ``i``'s resources reachable by ``j``."""
        return _flow.flow_matrix(self.V, self.coefficients(level))

    def u(self, level: int | None = None) -> np.ndarray:
        """``U_ki`` — relative + absolute inflow clamped at donor capacity."""
        return _flow.u_matrix(self.flows(level), self.A, self.V)

    def capacities(self, level: int | None = None) -> np.ndarray:
        """Effective capacities ``C_i`` at the given transitivity level."""
        return _flow.capacities(self.V, self.u(level))

    def capacity_of(self, principal: str, level: int | None = None) -> float:
        """Effective capacity of one principal."""
        return float(self.capacities(level)[self.index(principal)])

    def with_capacities(self, V: np.ndarray) -> "AgreementSystem":
        """A copy of this system with different raw capacities.

        ``T`` depends only on ``S``, so the coefficient cache is shared —
        this is the cheap operation the proxy simulator performs every
        scheduling epoch as availability fluctuates.
        """
        clone = AgreementSystem(
            self.principals,
            V,
            self.S,
            self.A,
            allow_overdraft=self.allow_overdraft,
            flow_method=self.flow_method,
        )
        clone._t_cache = self._t_cache  # shared: same S
        return clone

    def __repr__(self) -> str:
        return (
            f"AgreementSystem(n={self.n}, total_capacity={self.V.sum():g}, "
            f"edges={int(np.count_nonzero(self.S))}, "
            f"overdraft={self.allow_overdraft})"
        )
