"""The :class:`AgreementSystem`: a facade over topology + capacity view.

This is the enforcement layer's view of the world: a list of principals, a
raw-capacity vector ``V``, the relative agreement matrix ``S`` and the
(optional) absolute agreement matrix ``A``, with the validity constraints
of Section 3.1 (``S_ii = 0``, ``S_ij >= 0``, ``sum_k S_ik <= 1`` unless
overdraft is allowed) and cached transitive-flow queries.

Internally the state is split by rate of change (see
:mod:`repro.agreements.topology`): an immutable
:class:`~repro.agreements.topology.AgreementTopology` owns the structure
``(principals, S, A)`` and the expensive per-level coefficient cache,
while a lightweight :class:`~repro.agreements.topology.CapacityView`
binds the raw capacities ``V``.  :class:`AgreementSystem` composes the
two behind the original monolithic interface so existing call sites keep
working; new code that already holds a topology should prefer views
(:meth:`AgreementTopology.view`) directly.

An :class:`AgreementSystem` is constructed directly from matrices, from a
structure generator (:mod:`repro.agreements.structures`), or from a
:class:`repro.economy.Bank` via :meth:`AgreementSystem.from_bank` (which
reuses the bank's version-keyed topology cache).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from typing import TYPE_CHECKING

from .topology import AgreementTopology, CapacityView

if TYPE_CHECKING:
    from ..economy.bank import Bank

__all__ = ["AgreementSystem"]


class AgreementSystem:
    """Principals + ``(V, S, A)`` with validated structure and cached flows.

    Parameters
    ----------
    principals:
        Names, defining index order in all matrices.
    V:
        Raw owned capacity per principal (``V_i >= 0``).
    S:
        Relative agreement matrix; ``S[i, j]`` is the fraction of ``i``'s
        resources shared with ``j``.
    A:
        Optional absolute agreement matrix; ``A[i, j]`` is a constant
        quantity granted by ``i`` to ``j``.
    allow_overdraft:
        Lift the row-sum <= 1 restriction (Section 3.2); flows are then
        computed with the ``K`` clamp.
    flow_method:
        Algorithm for :func:`repro.agreements.flow.transitive_coefficients`.
    """

    def __init__(
        self,
        principals: Sequence[str],
        V: np.ndarray,
        S: np.ndarray,
        A: np.ndarray | None = None,
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> None:
        topology = AgreementTopology(
            principals, S, A, allow_overdraft=allow_overdraft, flow_method=flow_method
        )
        self._view = topology.view(V)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_topology(
        cls, topology: AgreementTopology, V: np.ndarray
    ) -> "AgreementSystem":
        """Wrap an existing topology (sharing its coefficient cache)."""
        system = cls.__new__(cls)
        system._view = topology.view(V)
        return system

    @classmethod
    def from_bank(
        cls,
        bank: "Bank",
        resource_type: str = "general",
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> "AgreementSystem":
        """Flatten a :class:`repro.economy.Bank` into an agreement system.

        Goes through :meth:`repro.economy.Bank.topology`, so repeated
        calls on an unchanged bank reuse one cached
        :class:`~repro.agreements.topology.AgreementTopology` (and its
        coefficient cache) instead of re-flattening.
        """
        view = bank.capacity_view(
            resource_type, allow_overdraft=allow_overdraft, flow_method=flow_method
        )
        return cls.from_topology(view.topology, view.V)

    # -- split accessors ----------------------------------------------------------

    @property
    def topology(self) -> AgreementTopology:
        """The immutable structure half (owns the coefficient cache)."""
        return self._view.topology

    @property
    def view(self) -> CapacityView:
        """The capacity half (``V`` bound to the topology)."""
        return self._view

    # -- structure passthrough -----------------------------------------------------

    @property
    def principals(self) -> list[str]:
        return list(self._view.topology.principals)

    @property
    def n(self) -> int:
        return self._view.topology.n

    @property
    def V(self) -> np.ndarray:
        return self._view.V

    @property
    def S(self) -> np.ndarray:
        return self._view.topology.S

    @property
    def A(self) -> np.ndarray | None:
        return self._view.topology.A

    @property
    def allow_overdraft(self) -> bool:
        return self._view.topology.allow_overdraft

    @property
    def flow_method(self) -> str:
        return self._view.topology.flow_method

    # -- queries ------------------------------------------------------------------

    def index(self, principal: str) -> int:
        return self._view.topology.index(principal)

    @property
    def max_level(self) -> int:
        """Chain length of the full transitive closure (n - 1)."""
        return self._view.topology.max_level

    def coefficients(self, level: int | None = None) -> np.ndarray:
        """``T^(m)`` (or ``K^(m)`` under overdraft), cached per level."""
        return self._view.topology.coefficients(level)

    def flows(self, level: int | None = None) -> np.ndarray:
        """``I^(m)_ij`` — the amount of ``i``'s resources reachable by ``j``."""
        return self._view.flows(level)

    def u(self, level: int | None = None) -> np.ndarray:
        """``U_ki`` — relative + absolute inflow clamped at donor capacity.

        Copy-on-read: the view memoises ``(U, C)`` per level as frozen
        arrays shared by every caller, so the facade hands out a private
        writable copy instead of the cache entry itself.
        """
        return self._view.u(level).copy()

    def capacities(self, level: int | None = None) -> np.ndarray:
        """Effective capacities ``C_i`` at the given transitivity level.

        Copy-on-read (see :meth:`u`).
        """
        return self._view.capacities(level).copy()

    def capacity_of(self, principal: str, level: int | None = None) -> float:
        """Effective capacity of one principal."""
        return self._view.capacity_of(principal, level)

    def with_capacities(self, V: np.ndarray) -> "AgreementSystem":
        """A copy of this system with different raw capacities.

        ``T`` depends only on ``S``, so the topology (and its coefficient
        cache) is shared — this is the cheap operation the proxy
        simulator performs every scheduling epoch as availability
        fluctuates.
        """
        return AgreementSystem.from_topology(self._view.topology, V)

    def __repr__(self) -> str:
        return (
            f"AgreementSystem(n={self.n}, total_capacity={self.V.sum():g}, "
            f"edges={int(np.count_nonzero(self.S))}, "
            f"overdraft={self.allow_overdraft})"
        )
