"""Exporting agreement systems as NetworkX graphs.

The agreement matrices are small dense arrays; for interoperability with
graph tooling (visualisation, centrality analysis, community detection on
large sparse structures) this module converts an
:class:`~repro.agreements.matrix.AgreementSystem` to a
:class:`networkx.DiGraph` and back.

Edge attributes: ``share`` (relative fraction from ``S``) and ``grant``
(absolute quantity from ``A``); node attribute: ``capacity`` (``V``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import AgreementError
from .matrix import AgreementSystem

if TYPE_CHECKING:  # networkx is an optional dependency
    import networkx as nx

__all__ = ["to_networkx", "from_networkx"]

_TOL = 1e-12


def to_networkx(system: AgreementSystem) -> "nx.DiGraph":
    """Convert to a directed graph with share/grant edge attributes."""
    import networkx as nx

    g = nx.DiGraph()
    for i, p in enumerate(system.principals):
        g.add_node(p, capacity=float(system.V[i]))
    for i in range(system.n):
        for j in range(system.n):
            share = float(system.S[i, j])
            grant = float(system.A[i, j]) if system.A is not None else 0.0
            if share > _TOL or grant > _TOL:
                g.add_edge(
                    system.principals[i],
                    system.principals[j],
                    share=share,
                    grant=grant,
                )
    g.graph["allow_overdraft"] = system.allow_overdraft
    return g


def from_networkx(graph: "nx.DiGraph", *, flow_method: str = "dp") -> AgreementSystem:
    """Rebuild an :class:`AgreementSystem` from a graph produced by
    :func:`to_networkx` (or hand-built with the same attributes).

    Nodes need a ``capacity`` attribute (default 0); edges may carry
    ``share`` and/or ``grant`` (defaults 0).
    """
    principals = list(graph.nodes)
    if not principals:
        raise AgreementError("graph has no nodes")
    index = {p: i for i, p in enumerate(principals)}
    n = len(principals)
    V = np.zeros(n)
    S = np.zeros((n, n))
    A = np.zeros((n, n))
    for p, data in graph.nodes(data=True):
        V[index[p]] = float(data.get("capacity", 0.0))
    for u, v, data in graph.edges(data=True):
        S[index[u], index[v]] = float(data.get("share", 0.0))
        A[index[u], index[v]] = float(data.get("grant", 0.0))
    return AgreementSystem(
        principals,
        V,
        S,
        A if np.any(A) else None,
        allow_overdraft=bool(graph.graph.get("allow_overdraft", False)),
        flow_method=flow_method,
    )
