"""Generators for the agreement structures the paper discusses.

Section 2.2 names three expected structures — **complete**, **sparse** and
**hierarchical** — and the case study (Section 4) additionally uses a
**loop** (cycle) where each ISP shares only with the ``skip``-th next ISP,
and Figure 13's **distance-decay** complete graph (20%/10%/5%/3% by
circular hour distance).

Each generator returns an :class:`~repro.agreements.matrix.AgreementSystem`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import InvalidAgreementMatrixError
from .matrix import AgreementSystem

__all__ = [
    "complete_structure",
    "loop_structure",
    "sparse_structure",
    "hierarchical_structure",
    "distance_decay_structure",
    "default_names",
]


def default_names(n: int, prefix: str = "isp") -> list[str]:
    """``['isp0', 'isp1', ...]`` — the naming used throughout the case study."""
    return [f"{prefix}{i}" for i in range(n)]


def _uniform_capacity(n: int, capacity: float | Sequence[float]) -> np.ndarray:
    V = np.full(n, float(capacity)) if np.isscalar(capacity) else np.asarray(capacity, float)
    if V.shape != (n,):
        raise InvalidAgreementMatrixError(
            f"capacity must be a scalar or a length-{n} vector"
        )
    return V


def complete_structure(
    n: int,
    share: float = 0.1,
    capacity: float | Sequence[float] = 1.0,
    names: Sequence[str] | None = None,
    **kwargs,
) -> AgreementSystem:
    """Complete graph: every participant shares ``share`` with every other.

    This is the structure of Figures 6–8 and 12: "a complete graph between
    10 servers: each server shares 10% of its resources with every other
    server".  Requires ``share * (n-1) <= 1`` unless overdraft is allowed.
    """
    S = np.full((n, n), float(share))
    np.fill_diagonal(S, 0.0)
    return AgreementSystem(
        names or default_names(n), _uniform_capacity(n, capacity), S, **kwargs
    )


def loop_structure(
    n: int,
    share: float = 0.8,
    skip: int = 1,
    capacity: float | Sequence[float] = 1.0,
    names: Sequence[str] | None = None,
    **kwargs,
) -> AgreementSystem:
    """Cycle: each participant shares only with the ``skip``-th next one.

    Figures 9–11 use loops over 10 ISPs with ``share = 0.8`` and neighbors
    one, three and seven time zones away.  ``skip`` must be coprime with
    ``n`` for the loop to be a single cycle (the paper's 1, 3, 7 with
    n = 10 all are); other skips produce multiple disjoint cycles, which is
    permitted but noted.
    """
    if not (1 <= skip < n):
        raise InvalidAgreementMatrixError(f"skip must be in [1, n), got {skip}")
    S = np.zeros((n, n))
    for i in range(n):
        S[i, (i + skip) % n] = float(share)
    return AgreementSystem(
        names or default_names(n), _uniform_capacity(n, capacity), S, **kwargs
    )


def sparse_structure(
    n: int,
    degree: int = 3,
    share_total: float = 0.3,
    capacity: float | Sequence[float] = 1.0,
    names: Sequence[str] | None = None,
    seed: int | None = 0,
    **kwargs,
) -> AgreementSystem:
    """Random sparse graph: each participant shares with ``degree`` others.

    "Every participant only has sharing agreements with a relatively small
    number [of] other participants" (Section 2.2).  Each row spreads
    ``share_total`` uniformly over ``degree`` distinct random partners.
    """
    if not (0 <= degree < n):
        raise InvalidAgreementMatrixError(f"degree must be in [0, n), got {degree}")
    rng = np.random.default_rng(seed)
    S = np.zeros((n, n))
    others = np.arange(n)
    for i in range(n):
        partners = rng.choice(others[others != i], size=degree, replace=False)
        for j in partners:
            S[i, j] = share_total / degree if degree else 0.0
    return AgreementSystem(
        names or default_names(n), _uniform_capacity(n, capacity), S, **kwargs
    )


def hierarchical_structure(
    groups: int,
    group_size: int,
    intra_share_total: float = 0.5,
    inter_share: float = 0.05,
    capacity: float | Sequence[float] = 1.0,
    names: Sequence[str] | None = None,
    **kwargs,
) -> AgreementSystem:
    """Groups with complete intra-group sharing and sparse inter-group links.

    "Inside a group, users have complete resource sharing.  Between groups
    there are higher level sparse sharing agreements" (Section 2.2).  Group
    ``g`` occupies indices ``[g*group_size, (g+1)*group_size)``; each row
    spreads ``intra_share_total`` over its group peers, and the *leader*
    (first member) of each group shares ``inter_share`` with the leader of
    the next group (ring of groups).

    The grouping is recorded on the returned system as ``system.groups``
    for the multigrid allocator (:mod:`repro.allocation.hierarchical`).
    """
    n = groups * group_size
    S = np.zeros((n, n))
    for g in range(groups):
        lo = g * group_size
        members = range(lo, lo + group_size)
        for i in members:
            for j in members:
                if i != j and group_size > 1:
                    S[i, j] = intra_share_total / (group_size - 1)
    for g in range(groups):
        leader = g * group_size
        next_leader = ((g + 1) % groups) * group_size
        if groups > 1:
            S[leader, next_leader] += inter_share
    system = AgreementSystem(
        names or default_names(n, prefix="node"), _uniform_capacity(n, capacity), S, **kwargs
    )
    system.groups = [
        list(range(g * group_size, (g + 1) * group_size)) for g in range(groups)
    ]
    return system


def distance_decay_structure(
    n: int = 10,
    shares: Sequence[float] = (0.20, 0.10, 0.05, 0.03),
    capacity: float | Sequence[float] = 1.0,
    names: Sequence[str] | None = None,
    **kwargs,
) -> AgreementSystem:
    """Figure 13's structure: shares decay with circular (time-zone) distance.

    "each ISP shares 20% of its resources with neighbors one-hour time zone
    away, 10% with neighbors two-hour time zone away, 5% with those three
    hours away and 3% with further neighbors."  ``shares[d-1]`` applies at
    circular distance ``d``; the last entry applies to all larger distances.
    """
    S = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            d = min(abs(i - j), n - abs(i - j))
            S[i, j] = shares[min(d, len(shares)) - 1]
    return AgreementSystem(
        names or default_names(n), _uniform_capacity(n, capacity), S, **kwargs
    )
