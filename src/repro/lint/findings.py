"""Finding: one rule violation at one source location.

Findings identify themselves two ways.  The *location* (path, line, col)
is what humans and editors want.  The *fingerprint* — ``(rule, path,
stripped line text, occurrence index)`` — is what the baseline stores:
it survives unrelated edits that shift line numbers, and the occurrence
index disambiguates identical lines (two ``x == 0.5`` on different
lines of one file baseline independently).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line, for fingerprinting and display
    text: str = ""
    #: occurrence index among findings sharing (rule, path, text);
    #: assigned by the engine after collection
    index: int = 0

    def key(self) -> tuple[str, str, str]:
        """The fingerprint key shared by identical findings in a file."""
        return (self.rule, self.path, self.text)

    def fingerprint(self) -> tuple[str, str, str, int]:
        return (self.rule, self.path, self.text, self.index)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule}: {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "index": self.index,
        }


def assign_indices(findings: list[Finding]) -> list[Finding]:
    """Number findings sharing a fingerprint key in line order."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in ordered:
        idx = seen.get(f.key(), 0)
        seen[f.key()] = idx + 1
        out.append(replace(f, index=idx) if f.index != idx else f)
    return out


__all__ = ["Finding", "assign_indices"]
