"""Small AST helpers shared by the reprolint rules."""

from __future__ import annotations

import ast


def dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` for a Name/Attribute chain (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of an expression, looking through calls and
    subscripts: ``system.capacities(level)`` -> ``"capacities"``,
    ``S[i, j]`` -> ``"S"``, ``msg.amount`` -> ``"amount"``."""
    while True:
        if isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            return node.attr
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def root_name(node: ast.expr) -> str | None:
    """The first identifier of an attribute/subscript chain:
    ``self.bank.topology`` -> ``"self"``, ``U[:, a]`` -> ``"U"``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_self_rooted(node: ast.expr) -> bool:
    """True for expressions reaching through ``self`` (attributes,
    subscripts, or calls rooted at ``self``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return isinstance(node, ast.Name) and node.id == "self"


class ImportTracker:
    """Resolve local names to the modules/objects they were imported as.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` to ``time.perf_counter``.  Call
    :meth:`qualified` on a Name/Attribute chain to get a best-effort
    fully-qualified dotted path (``np.random.default_rng`` ->
    ``numpy.random.default_rng``), or None when the root is not an
    import-bound name.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports are project code, not stdlib
                    continue
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._names[local] = f"{module}.{alias.name}" if module else alias.name

    def qualified(self, node: ast.expr) -> str | None:
        path = dotted(node)
        if path is None:
            return None
        root, _, rest = path.partition(".")
        origin = self._names.get(root)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin


__all__ = ["dotted", "terminal_name", "root_name", "is_self_rooted", "ImportTracker"]
