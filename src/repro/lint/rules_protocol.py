"""R2 — GRM/LRM protocol exhaustiveness.

The manager protocol is closed over ``manager/messages.py``: every
:class:`Message` subclass defined there must be *consumed* somewhere in
the manager package — matched by an ``isinstance`` check inside a
``handle`` method, or constructed as a reply — and every type a
``handle`` method matches must be a known message class.  A subclass
nobody handles is a message that silently dead-letters at runtime (the
GRM raises ``ManagerError`` only after the unknown message has crossed
the transport); an ``isinstance`` against an unknown name is a handler
for a message that cannot arrive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from .engine import LintModule, Rule
from .findings import Finding

#: the abstract base; excluded from the exhaustiveness contract
_BASE = "Message"


@dataclass
class _Protocol:
    """One ``messages.py`` module plus its surrounding package."""

    messages_module: LintModule
    #: message class name -> defining ClassDef
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    package_modules: list[LintModule] = field(default_factory=list)


def _message_classes(module: LintModule) -> dict[str, ast.ClassDef]:
    """Classes deriving (transitively, within the file) from Message."""
    known = {_BASE}
    out: dict[str, ast.ClassDef] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {b.id for b in node.bases if isinstance(b, ast.Name)} | {
            b.attr for b in node.bases if isinstance(b, ast.Attribute)
        }
        if bases & known:
            known.add(node.name)
            out[node.name] = node
    return out


def _isinstance_targets(call: ast.Call) -> list[ast.expr]:
    if len(call.args) != 2:
        return []
    second = call.args[1]
    if isinstance(second, ast.Tuple):
        return list(second.elts)
    return [second]


def _type_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ProtocolExhaustivenessRule(Rule):
    id = "R2"
    name = "protocol-exhaustiveness"
    description = (
        "every Message subclass in manager/messages.py must be matched by a "
        "handle() isinstance or constructed in the manager package, and every "
        "isinstance target in handle() must be a known message class"
    )
    project = True

    def check_project(self, modules: list[LintModule]) -> list[Finding]:
        protocols: list[_Protocol] = []
        for m in modules:
            parts = PurePosixPath(m.relpath).parts
            if m.path.name == "messages.py" and "manager" in parts:
                protocols.append(_Protocol(m, _message_classes(m)))
        findings: list[Finding] = []
        for proto in protocols:
            pkg_dir = proto.messages_module.path.parent
            proto.package_modules = [
                m for m in modules if m.path.parent == pkg_dir and m is not proto.messages_module
            ]
            findings.extend(self._check_protocol(proto))
        return findings

    def _check_protocol(self, proto: _Protocol) -> list[Finding]:
        handled: set[str] = set()
        constructed: set[str] = set()
        bad_targets: list[tuple[LintModule, ast.expr, str]] = []

        for m in proto.package_modules:
            in_handle = self._handle_functions(m.tree)
            for fn in in_handle:
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "isinstance"
                    ):
                        for target in _isinstance_targets(node):
                            name = _type_name(target)
                            if name is None:
                                continue
                            if name in proto.classes:
                                handled.add(name)
                            elif name != _BASE:
                                bad_targets.append((m, target, name))
            for node in ast.walk(m.tree):
                if isinstance(node, ast.Call):
                    name = _type_name(node.func)
                    if name in proto.classes:
                        constructed.add(name)

        findings: list[Finding] = []
        for name, cls in proto.classes.items():
            if name not in handled and name not in constructed:
                findings.append(
                    proto.messages_module.finding(
                        self,
                        cls,
                        f"message class {name} has no registered handler: no "
                        f"handle() isinstance match and no construction site "
                        f"in the manager package",
                    )
                )
        for m, target, name in bad_targets:
            findings.append(
                m.finding(
                    self,
                    target,
                    f"handle() matches {name}, which is not a Message subclass "
                    f"defined in {proto.messages_module.relpath}",
                )
            )
        return findings

    @staticmethod
    def _handle_functions(tree: ast.Module) -> list[ast.FunctionDef]:
        return [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef) and node.name == "handle"
        ]


__all__ = ["ProtocolExhaustivenessRule"]
