"""R1 — mutating methods of versioned classes must bump the version.

A *versioned class* is one defining a ``_bump_version`` method (the
:class:`~repro.economy.bank.Bank` pattern: downstream caches key on the
counter, so any unannounced mutation silently serves stale topology to
every later allocation).  For each public method the rule gathers
*mutation evidence* and *bump evidence*, both propagated transitively
through same-class method calls, and flags methods with the former but
not the latter.

Mutation evidence:

- stores into ``self`` state (``self.x = ...``, ``self.x[k] = ...``,
  ``del self.x[k]``), except attributes whose name contains ``cache`` or
  is ``_hash`` — derived state is version-*neutral* by design;
- stores into locals that alias ``self`` state (``t = self.ticket(i);
  t.revoked = True``) — locals bound to fresh objects (constructor
  calls, literals, comprehensions) are exempt;
- mutator-method calls (``append``/``update``/``inflate``/...) on either.

Bump evidence: a ``self._bump_version()`` call, direct or via a called
method of the same class.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .astutil import is_self_rooted
from .engine import LintModule, Rule
from .findings import Finding

#: method names whose call mutates the receiver
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "setdefault", "sort", "reverse",
        "inflate", "push",
    }
)

#: decorators excluding a method from the public-mutator contract
_SKIPPED_DECORATORS = frozenset({"property", "cached_property", "staticmethod"})


def _chain_attrs(node: ast.expr) -> list[str]:
    attrs: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    return attrs


def _cache_exempt(node: ast.expr) -> bool:
    return any("cache" in a or a == "_hash" for a in _chain_attrs(node))


def _walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk that does not descend into nested function bodies."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


@dataclass
class _MethodFacts:
    bumps: bool = False
    self_calls: set[str] = field(default_factory=set)
    #: first direct mutation evidence node, if any
    evidence: ast.AST | None = None


class _MethodScanner:
    """Linear, order-respecting scan of one method body."""

    def __init__(self) -> None:
        self.facts = _MethodFacts()
        #: local name -> "self" | "fresh" | "unknown"
        self._origin: dict[str, str] = {}

    # -- origin tracking ----------------------------------------------------

    def _classify(self, value: ast.expr | None) -> str:
        if value is None:
            return "unknown"
        if is_self_rooted(value):
            return "self"
        if isinstance(value, ast.Name):
            return self._origin.get(value.id, "unknown")
        if isinstance(
            value,
            (
                ast.Call, ast.Constant, ast.List, ast.Dict, ast.Set, ast.Tuple,
                ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
                ast.BinOp, ast.UnaryOp, ast.IfExp, ast.Compare, ast.JoinedStr,
            ),
        ):
            return "fresh"
        return "unknown"

    def _bind(self, target: ast.expr, origin: str) -> None:
        if isinstance(target, ast.Name):
            self._origin[target.id] = origin
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, "unknown")

    def _aliases_self(self, node: ast.expr) -> bool:
        """Does this store/call target reach self state (directly or via
        a local bound to it)?"""
        if is_self_rooted(node):
            return not _cache_exempt(node)
        root = node
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and self._origin.get(root.id) == "self":
            return not _cache_exempt(node)
        return False

    # -- evidence -----------------------------------------------------------

    def _note_mutation(self, node: ast.AST) -> None:
        if self.facts.evidence is None:
            self.facts.evidence = node

    def _scan_calls(self, node: ast.AST) -> None:
        for sub in _walk_no_nested(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                if func.attr == "_bump_version":
                    self.facts.bumps = True
                else:
                    self.facts.self_calls.add(func.attr)
            if func.attr in MUTATOR_METHODS and self._aliases_self(func.value):
                self._note_mutation(sub)

    def _store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)) and self._aliases_self(
            target
        ):
            self._note_mutation(target)

    # -- statements ---------------------------------------------------------

    def scan_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._scan_calls(stmt.value)
            origin = self._classify(stmt.value)
            for target in stmt.targets:
                self._store(target)
                self._bind(target, origin)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_calls(stmt.value)
            self._store(stmt.target)
            self._bind(stmt.target, self._classify(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._scan_calls(stmt.value)
            self._store(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._scan_calls(target)
                self._store(target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_calls(stmt.iter)
            self._bind(stmt.target, self._classify(stmt.iter))
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._scan_calls(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, self._classify(item.context_expr))
            self.scan_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan_body(stmt.body)
            for handler in stmt.handlers:
                self.scan_body(handler.body)
            self.scan_body(stmt.orelse)
            self.scan_body(stmt.finalbody)
        else:
            self._scan_calls(stmt)


def _is_versioned(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(n, ast.FunctionDef) and n.name == "_bump_version" for n in cls.body
    )


def _decorator_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in fn.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


class VersionBumpRule(Rule):
    id = "R1"
    name = "version-bump"
    description = (
        "public methods of versioned classes (those defining _bump_version) "
        "that mutate state must call self._bump_version()"
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_versioned(node):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: LintModule, cls: ast.ClassDef) -> list[Finding]:
        methods = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        facts: dict[str, _MethodFacts] = {}
        for name, fn in methods.items():
            scanner = _MethodScanner()
            scanner.scan_body(fn.body)
            facts[name] = scanner.facts

        # Propagate bump and mutation evidence through same-class calls
        # to a fixpoint, so `deposit_capacity -> _register -> _bump_version`
        # chains resolve without annotations.
        bumps = {name: f.bumps for name, f in facts.items()}
        mutates = {name: f.evidence is not None for name, f in facts.items()}
        changed = True
        while changed:
            changed = False
            for name, f in facts.items():
                for callee in f.self_calls:
                    if callee not in facts:
                        continue
                    if bumps[callee] and not bumps[name]:
                        bumps[name] = changed = True
                    if mutates[callee] and not mutates[name]:
                        mutates[name] = changed = True

        findings: list[Finding] = []
        for name, fn in methods.items():
            if name.startswith("_"):
                continue
            if _decorator_names(fn) & _SKIPPED_DECORATORS:
                continue
            if mutates[name] and not bumps[name]:
                at = facts[name].evidence or fn
                findings.append(
                    module.finding(
                        self,
                        at,
                        f"method {cls.name}.{name}() mutates state without "
                        f"bumping the version; call self._bump_version() "
                        f"before returning",
                    )
                )
        return findings


__all__ = ["VersionBumpRule", "MUTATOR_METHODS"]
