"""The ``reprolint`` command line.

::

    python scripts/reprolint.py src/                 # lint, exit 1 on findings
    python scripts/reprolint.py src/ --write-baseline  # accept current debt
    python scripts/reprolint.py --list-rules

Exit codes: 0 clean (or all findings baselined), 1 new findings, 2 bad
invocation.  The baseline (default ``reprolint-baseline.json`` next to
the current directory, when present) absorbs known findings; stale
entries are reported so paid-down debt gets deleted from the file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import default_rules, run_lint
from .findings import Finding

DEFAULT_BASELINE = "reprolint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _print_findings(findings: list[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
            if f.text:
                print(f"    {f.text}")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.description}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"reprolint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    select = (
        {r.strip().upper() for r in args.select.split(",") if r.strip()}
        if args.select
        else None
    )

    findings = run_lint(paths, root=root, select=select)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    matched_count = 0
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        findings, matched, stale = baseline.filter(findings)
        matched_count = len(matched)
        for entry in stale:
            print(
                "reprolint: stale baseline entry (finding no longer occurs): "
                f"{entry.get('rule')} {entry.get('path')} {entry.get('text')!r}",
                file=sys.stderr,
            )

    _print_findings(findings, args.format)
    if findings:
        print(
            f"reprolint: {len(findings)} finding(s)"
            + (f" ({matched_count} baselined)" if matched_count else ""),
            file=sys.stderr,
        )
        return 1
    suffix = f" ({matched_count} baselined)" if matched_count else ""
    print(f"reprolint: clean{suffix}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
