"""reprolint — domain-aware static analysis for the agreement economy.

The generic linters (ruff, mypy) cannot see the invariants this codebase
actually lives on: that every :class:`~repro.economy.bank.Bank` mutation
bumps the version its caches key on, that the GRM/LRM message protocol
is closed, that DES-managed code never reads the wall clock, that LP
outputs are never compared with ``==``, and that arrays handed out by
the topology/view caches are never written in place.  This package
checks exactly those, over the AST, with per-line suppressions
(``# reprolint: disable=R1``) and a committed baseline for incremental
adoption.  Entry points: ``scripts/reprolint.py`` and ``make lint``.

Rules
-----

- **R1** ``version-bump`` — mutating public methods of versioned classes
  must call ``self._bump_version()``.
- **R2** ``protocol-exhaustiveness`` — ``manager/messages.py`` classes
  and ``handle()`` isinstance matches must cover each other.
- **R3** ``sim-time-purity`` — no ``time.time``/``datetime.now``/
  unseeded randomness in DES-managed code.
- **R4** ``float-equality`` — no ``==``/``!=`` on float capacity/theta
  quantities; use :func:`repro.units.approx_eq`.
- **R5** ``cache-aliasing`` — no in-place mutation of arrays returned by
  ``topology()``/``capacity_view()`` caches.

The runtime counterpart of these checks is :mod:`repro.sanitize`
(``REPRO_SANITIZE=1``), which asserts the same invariants on live values
in allocator/bank epilogues.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintModule, Rule, default_rules, run_lint
from .findings import Finding
from .suppress import parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintModule",
    "Rule",
    "default_rules",
    "parse_suppressions",
    "run_lint",
]
