"""Per-line suppression comments.

A finding is suppressed by a trailing comment on the flagged line::

    t.revoked = True  # reprolint: disable=R1
    x = time.time()   # reprolint: disable=R3,R4
    y = risky()       # reprolint: disable

The bare form suppresses every rule on that line.  Suppressions are
deliberately line-scoped — there is no file- or block-level off switch;
wholesale exclusions belong in the committed baseline where each entry
is visible in review.
"""

from __future__ import annotations

import re

_PATTERN = re.compile(r"#\s*reprolint:\s*disable(?:\s*=\s*([A-Za-z0-9_,\s]+))?")

#: sentinel meaning "all rules suppressed on this line"
ALL_RULES = "*"


def parse_suppressions(source_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of suppressed rule ids ('*' = all)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source_lines, start=1):
        if "reprolint" not in line:
            continue
        m = _PATTERN.search(line)
        if m is None:
            continue
        raw = m.group(1)
        if raw is None:
            out[lineno] = {ALL_RULES}
        else:
            rules = {r.strip().upper() for r in raw.split(",") if r.strip()}
            if rules:
                out[lineno] = rules
    return out


def is_suppressed(suppressions: dict[int, set[str]], line: int, rule: str) -> bool:
    rules = suppressions.get(line)
    return rules is not None and (ALL_RULES in rules or rule.upper() in rules)


__all__ = ["parse_suppressions", "is_suppressed", "ALL_RULES"]
