"""R3 — sim-time purity: no wall clock or unseeded randomness.

The DES owns time: a simulation consulting ``time.time()`` or
``datetime.now()`` produces results that depend on when it ran, and the
module-level ``random``/legacy ``numpy.random`` APIs draw from ambient
global state that no seed in the experiment config controls.  Both
destroy the bit-for-bit reproducibility the experiment harness asserts.

Allowed on purpose:

- ``time.perf_counter`` / ``perf_counter_ns`` / ``process_time`` —
  profiling reads that never feed simulation state;
- ``random.Random(seed)`` / ``random.SystemRandom`` instances — the
  caller owns the stream;
- ``numpy.random.default_rng(seed)`` / ``Generator`` / ``SeedSequence``
  — flagged only when called with *no* arguments (unseeded).

Excluded scopes: ``obs`` (wall-clock timestamps are its job),
``experiments`` (report metadata), and this package.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .astutil import ImportTracker
from .engine import LintModule, Rule
from .findings import Finding

#: path parts exempting a module from the rule
_EXEMPT_PARTS = frozenset({"obs", "experiments", "lint"})

_WALL_CLOCK = frozenset({"time.time", "time.time_ns"})
_DATETIME_BANNED = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "RandomState",
        "PCG64", "MT19937", "Philox", "SFC64", "BitGenerator",
    }
)
#: allowed constructors that are still unseeded when called with no args
_NEEDS_SEED = frozenset({"numpy.random.default_rng", "numpy.random.RandomState"})


class SimTimePurityRule(Rule):
    id = "R3"
    name = "sim-time-purity"
    description = (
        "no wall-clock reads (time.time, datetime.now) or unseeded/global "
        "randomness (random.*, legacy numpy.random.*) in DES-managed code"
    )

    def check(self, module: LintModule) -> list[Finding]:
        parts = set(PurePosixPath(module.relpath).parts)
        if parts & _EXEMPT_PARTS:
            return []
        imports = ImportTracker(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = imports.qualified(node.func)
            if path is None:
                continue
            message = self._verdict(path, node)
            if message is not None:
                findings.append(module.finding(self, node, message))
        return findings

    @staticmethod
    def _verdict(path: str, call: ast.Call) -> str | None:
        if path in _WALL_CLOCK:
            return (
                f"{path}() reads the wall clock inside DES-managed code; "
                f"use the engine's simulation time (time.perf_counter is "
                f"fine for profiling)"
            )
        if path in _DATETIME_BANNED:
            return (
                f"{path}() reads the wall clock inside DES-managed code; "
                f"derive timestamps from simulation time"
            )
        if path.startswith("random."):
            tail = path.split(".", 1)[1]
            if "." not in tail and tail not in _RANDOM_ALLOWED:
                return (
                    f"{path}() draws from the global random stream; use a "
                    f"seeded random.Random(seed) instance"
                )
        if path in _NEEDS_SEED and not call.args and not call.keywords:
            return (
                f"{path}() without a seed is entropy-seeded; pass the "
                f"experiment seed explicitly"
            )
        if path.startswith("numpy.random."):
            tail = path.split("numpy.random.", 1)[1]
            if "." not in tail and tail not in _NP_RANDOM_ALLOWED:
                return (
                    f"{path}() uses the legacy global numpy random state; "
                    f"use numpy.random.default_rng(seed)"
                )
        return None


__all__ = ["SimTimePurityRule"]
