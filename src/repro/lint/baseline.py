"""The committed baseline: known findings that do not fail the build.

Incremental adoption needs a ratchet, not a flag day: the baseline file
records every finding present when a rule landed, new findings fail the
build, and entries are deleted as the debt is paid down.  Entries are
keyed by ``(rule, path, stripped line text, occurrence index)`` rather
than line numbers, so unrelated edits to a file do not invalidate them.

Each entry may carry a human ``justification``; the acceptance bar for
this repository is an *empty* baseline or one where every entry is
justified.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

FORMAT_VERSION = 1


class Baseline:
    """A set of accepted finding fingerprints, loaded from / saved to JSON."""

    def __init__(self, entries: list[dict[str, object]] | None = None) -> None:
        self.entries: list[dict[str, object]] = list(entries or [])

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(data.get("entries", []))

    def save(self, path: str | Path) -> None:
        data = {"version": FORMAT_VERSION, "entries": self.entries}
        Path(path).write_text(
            json.dumps(data, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "text": f.text,
                "index": f.index,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ]
        return cls(entries)

    # -- matching -----------------------------------------------------------

    def _fingerprints(self) -> set[tuple[str, str, str, int]]:
        out: set[tuple[str, str, str, int]] = set()
        for e in self.entries:
            out.add(
                (
                    str(e.get("rule", "")),
                    str(e.get("path", "")),
                    str(e.get("text", "")),
                    int(e.get("index", 0) or 0),
                )
            )
        return out

    def filter(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict[str, object]]]:
        """Split findings into (new, baselined) and report stale entries.

        Stale entries are baseline records whose finding no longer occurs
        — paid-down debt that should be deleted from the file.
        """
        prints = self._fingerprints()
        new: list[Finding] = []
        matched: list[Finding] = []
        seen: set[tuple[str, str, str, int]] = set()
        for f in findings:
            fp = f.fingerprint()
            if fp in prints:
                matched.append(f)
                seen.add(fp)
            else:
                new.append(f)
        stale = [
            e
            for e in self.entries
            if (
                str(e.get("rule", "")),
                str(e.get("path", "")),
                str(e.get("text", "")),
                int(e.get("index", 0) or 0),
            )
            not in seen
        ]
        return new, matched, stale

    def __len__(self) -> int:
        return len(self.entries)


__all__ = ["Baseline", "FORMAT_VERSION"]
