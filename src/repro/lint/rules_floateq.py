"""R4 — no exact equality on float capacity/theta quantities.

Capacities, thetas, takes and availabilities are products of LP solves
and dense linear algebra; comparing them with ``==``/``!=`` encodes an
assumption of exactness that scipy does not provide and that breaks
across BLAS builds.  The rule fires when either side of an ``==``/``!=``
is (a) an expression whose terminal identifier is a known float-domain
name (``theta``, ``capacities``, ``granted``, ...) or (b) a non-zero
float literal.  Use :func:`repro.units.approx_eq` or
``math.isclose``/``numpy.isclose`` instead.

Deliberately exempt:

- comparisons against a literal zero (``S[i, j] != 0.0``) — the exact-
  zero *sparsity* idiom: structural zeros are created by assignment, not
  arithmetic, so exact comparison is correct and fast there;
- comparisons involving strings, booleans or ``None`` (identity-style
  dispatch, not float math).
"""

from __future__ import annotations

import ast

from .astutil import terminal_name
from .engine import LintModule, Rule
from .findings import Finding

#: identifiers treated as float capacity/theta domain values
DOMAIN_NAMES = frozenset(
    {
        "theta", "capacity", "capacities", "cap", "caps",
        "avail", "available", "availability",
        "granted", "satisfied", "face_value", "excess", "backlog",
        "take", "takes", "drop", "drops",
    }
)


def _is_non_numeric_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


def _is_nonzero_float(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


def _is_domain(node: ast.expr) -> bool:
    name = terminal_name(node)
    return name is not None and name.lower() in DOMAIN_NAMES


class FloatEqualityRule(Rule):
    id = "R4"
    name = "float-equality"
    description = (
        "no ==/!= on float capacity/theta/availability values; use "
        "repro.units.approx_eq or numpy.isclose (exact-zero sparsity "
        "checks are exempt)"
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    finding = self._check_pair(module, node, left, right)
                    if finding is not None:
                        findings.append(finding)
                        break  # one finding per compare chain
                left = right
        return findings

    def _check_pair(
        self,
        module: LintModule,
        node: ast.Compare,
        left: ast.expr,
        right: ast.expr,
    ) -> Finding | None:
        if _is_non_numeric_constant(left) or _is_non_numeric_constant(right):
            return None
        # A non-domain expression against a literal zero is the sparsity
        # idiom (structural zeros compare exactly); domain names fire
        # even against zero — an LP's theta is never exactly 0.0.
        domain = _is_domain(left) or _is_domain(right)
        float_literal = _is_nonzero_float(left) or _is_nonzero_float(right)
        if not (domain or float_literal):
            return None
        subject = terminal_name(left) or terminal_name(right) or "value"
        return module.finding(
            self,
            node,
            f"exact ==/!= on float quantity {subject!r}; use "
            f"repro.units.approx_eq (or numpy.isclose) with an explicit "
            f"tolerance",
        )


__all__ = ["FloatEqualityRule", "DOMAIN_NAMES"]
