"""R5 — no in-place mutation of cached topology/view arrays.

``AgreementTopology.coefficients()``, ``CapacityView.u()`` /
``.capacities()``, ``Bank.base_capacities()`` and the ``S``/``A``/``V``
matrices all return arrays *shared* through version-keyed caches.  A
caller that writes into one corrupts every other holder of the cache
entry — silently, because the cache key (the bank version) has not
changed.  The runtime counterpart freezes these arrays
(``REPRO_SANITIZE`` docs), but a frozen array fails at *run* time; this
rule fails at *review* time.

The analysis is a per-function, order-respecting taint pass: locals
assigned from a cache-returning call (or from a ``.S``/``.A``/``.V``
attribute read) are tainted; ``.copy()`` launders; stores into tainted
arrays, in-place numpy methods (``fill``/``sort``/...), ``out=`` aimed
at a tainted array, and mutating ``np.*`` helpers (``fill_diagonal``,
``copyto``, ...) are violations.  Freezing itself
(``x.flags.writeable = False`` / ``x.setflags(write=False)``) is the
sanctioned operation and stays exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import terminal_name
from .engine import LintModule, Rule
from .findings import Finding

#: calls whose result aliases a shared cache entry
CACHE_FUNCS = frozenset(
    {"topology", "capacity_view", "base_capacities", "coefficients",
     "capacities", "u", "flows"}
)

#: attribute reads aliasing shared topology/view matrices
CACHE_ATTRS = frozenset({"S", "A", "V"})

#: ndarray methods that mutate in place
INPLACE_METHODS = frozenset(
    {"fill", "sort", "resize", "put", "itemset", "partition", "byteswap"}
)

#: numpy module helpers that mutate their first argument
MUTATING_NP_FUNCS = frozenset({"fill_diagonal", "copyto", "place", "putmask"})

#: calls that return an owned (fresh) array, clearing taint
_LAUNDERING = frozenset({"copy", "astype", "tolist"})


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def _is_freeze_target(node: ast.expr) -> bool:
    """``x.flags.writeable`` — the sanctioned freeze, not a data write."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "writeable"
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "flags"
    )


class _FunctionScanner:
    def __init__(self, rule: "CacheAliasingRule", module: LintModule) -> None:
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self.tainted: dict[str, str] = {}  # name -> provenance label

    # -- taint sources ------------------------------------------------------

    def _provenance(self, value: ast.expr) -> str | None:
        """Why the value aliases a cache (None if it does not)."""
        if isinstance(value, ast.Call):
            name = terminal_name(value.func)
            if name in _LAUNDERING:
                return None
            if name in CACHE_FUNCS:
                return f"{name}()"
            return None
        if isinstance(value, ast.Attribute) and value.attr in CACHE_ATTRS:
            return f".{value.attr}"
        if isinstance(value, ast.Name):
            return self.tainted.get(value.id)
        return None

    def _root_provenance(self, node: ast.expr) -> str | None:
        """Provenance of the array a store/call target reaches into."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute) and node.attr in ("flags",):
                node = node.value
                continue
            node = node.value
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in CACHE_FUNCS:
                return f"{name}()"
        return None

    # -- violations ---------------------------------------------------------

    def _flag(self, node: ast.AST, provenance: str, what: str) -> None:
        self.findings.append(
            self.module.finding(
                self.rule,
                node,
                f"{what} mutates an array aliased from the shared "
                f"topology/view cache ({provenance}); take a .copy() first",
            )
        )

    def _check_store(self, target: ast.expr) -> None:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        if _is_freeze_target(target):
            return
        prov = self._root_provenance(target)
        if prov is not None:
            self._flag(target, prov, "in-place store")

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in INPLACE_METHODS:
                prov = self._root_provenance(func.value)
                if prov is not None:
                    self._flag(call, prov, f".{func.attr}()")
            if func.attr in MUTATING_NP_FUNCS and call.args:
                prov = self._provenance(call.args[0]) or self._root_provenance(
                    call.args[0]
                )
                if prov is not None:
                    self._flag(call, prov, f"np.{func.attr}()")
        for kw in call.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                prov = self.tainted.get(kw.value.id)
                if prov is not None:
                    self._flag(call, prov, "out= argument")

    # -- traversal ----------------------------------------------------------

    def scan(self, fn: ast.FunctionDef) -> None:
        self._scan_body(fn.body)

    def _scan_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own scanner
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                self._check_call(node)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_store(target)
            prov = self._provenance(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if prov is not None:
                        self.tainted[target.id] = prov
                    else:
                        self.tainted.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign):
            self._check_store(stmt.target)
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                prov = self._provenance(stmt.value)
                if prov is not None:
                    self.tainted[stmt.target.id] = prov
                else:
                    self.tainted.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.AugAssign):
            self._check_store(stmt.target)
            if isinstance(stmt.target, ast.Name) and stmt.target.id in self.tainted:
                # x += y rebinds for ndarrays in place: still a mutation
                self._flag(
                    stmt, self.tainted[stmt.target.id], "augmented assignment"
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._scan_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._scan_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_body(handler.body)
            self._scan_body(stmt.orelse)
            self._scan_body(stmt.finalbody)


class CacheAliasingRule(Rule):
    id = "R5"
    name = "cache-aliasing"
    description = (
        "no in-place mutation of numpy arrays returned by topology()/"
        "capacity_view() caches (coefficients, u, capacities, S/A/V); "
        "copy before writing"
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _functions(module.tree):
            scanner = _FunctionScanner(self, module)
            scanner.scan(fn)
            findings.extend(scanner.findings)
        return findings


__all__ = ["CacheAliasingRule", "CACHE_FUNCS", "INPLACE_METHODS"]
