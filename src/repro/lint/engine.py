"""The reprolint engine: file discovery, parsing, and rule dispatch.

Two rule shapes exist.  *Module* rules see one file at a time (R1, R3,
R4, R5).  *Project* rules see every parsed module at once (R2 — protocol
exhaustiveness needs the message definitions and all their handlers in
view together).  Both return :class:`~repro.lint.findings.Finding`
lists; the engine applies per-line suppressions, assigns occurrence
indices, and sorts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, assign_indices
from .suppress import is_suppressed, parse_suppressions


@dataclass
class LintModule:
    """One parsed source file presented to the rules."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        lineno = int(getattr(node, "lineno", 0) or 0)
        col = int(getattr(node, "col_offset", 0) or 0)
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=lineno,
            col=col,
            message=message,
            text=self.line_text(lineno),
        )


class Rule:
    """Base class; subclasses set ``id``/``name``/``description``."""

    id = "R0"
    name = "unnamed"
    description = ""
    #: project rules get every module at once
    project = False

    def check(self, module: LintModule) -> list[Finding]:  # pragma: no cover
        return []

    def check_project(
        self, modules: list[LintModule]
    ) -> list[Finding]:  # pragma: no cover
        return []


def _iter_py_files(paths: list[Path]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    # de-duplicate while keeping order
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in out:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def load_modules(
    paths: list[Path], root: Path
) -> tuple[list[LintModule], list[Finding]]:
    """Parse every Python file under ``paths``; syntax errors become
    findings under the pseudo-rule ``E0`` (never suppressible)."""
    modules: list[LintModule] = []
    errors: list[Finding] = []
    for f in _iter_py_files(paths):
        try:
            relpath = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = f.as_posix()
        try:
            source = f.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(f))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            errors.append(
                Finding(
                    rule="E0",
                    path=relpath,
                    line=int(line),
                    col=0,
                    message=f"cannot parse: {exc.__class__.__name__}: {exc}",
                )
            )
            continue
        lines = source.splitlines()
        modules.append(
            LintModule(
                path=f,
                relpath=relpath,
                tree=tree,
                lines=lines,
                suppressions=parse_suppressions(lines),
            )
        )
    return modules, errors


def default_rules() -> list[Rule]:
    from .rules_aliasing import CacheAliasingRule
    from .rules_floateq import FloatEqualityRule
    from .rules_protocol import ProtocolExhaustivenessRule
    from .rules_simtime import SimTimePurityRule
    from .rules_version import VersionBumpRule

    return [
        VersionBumpRule(),
        ProtocolExhaustivenessRule(),
        SimTimePurityRule(),
        FloatEqualityRule(),
        CacheAliasingRule(),
    ]


def run_lint(
    paths: list[Path],
    root: Path | None = None,
    rules: list[Rule] | None = None,
    select: set[str] | None = None,
) -> list[Finding]:
    """Run the rules over ``paths``; returns indexed, sorted findings
    with per-line suppressions already applied (parse errors included)."""
    root = root or Path.cwd()
    rules = rules if rules is not None else default_rules()
    if select:
        wanted = {r.upper() for r in select}
        rules = [r for r in rules if r.id in wanted]
    modules, findings = load_modules(paths, root)
    for rule in rules:
        if rule.project:
            findings.extend(rule.check_project(modules))
        else:
            for module in modules:
                findings.extend(rule.check(module))
    by_path = {m.relpath: m for m in modules}
    kept = [
        f
        for f in findings
        if f.rule == "E0"
        or f.path not in by_path
        or not is_suppressed(by_path[f.path].suppressions, f.line, f.rule)
    ]
    return assign_indices(kept)


__all__ = ["LintModule", "Rule", "load_modules", "default_rules", "run_lint"]
