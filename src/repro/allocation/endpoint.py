"""The end-point (proportional) enforcement baseline of Figure 13.

"The basic scheme we used redistributes requests queued up at a proxy's
front-end to all other ISPs.  The number of requests redistributed is
proportional to the quantity of sharing agreements with other ISPs.
Therefore, when an ISP is busy, it tends to redirect more requests to
nearby ISPs than faraway ISPs."

This scheme sees only *direct* agreements and no global availability
information: the requester takes from its own resources first, then splits
the remainder over donors proportionally to the direct agreement quantity
``S[k, A] * V_k + A[k, A]``, capping each donor at that same quantity.  It
cannot exploit transitive chains, and it sends work to heavily loaded
donors just as readily as to idle ones — which is exactly the behaviour
Figure 13 penalises.
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..errors import InsufficientResourcesError
from .problem import Allocation, AllocationRequest

__all__ = ["allocate_endpoint"]

_TOL = 1e-12


def allocate_endpoint(
    system,
    principal: str,
    amount: float,
    *,
    partial: bool = True,
) -> Allocation:
    """Allocate using the proportional end-point scheme.

    Unlike :func:`~repro.allocation.lp_allocator.allocate_lp` this may
    satisfy only part of the request even when transitive capacity exists;
    with ``partial=False`` that shortfall raises
    :class:`~repro.errors.InsufficientResourcesError` instead.
    """
    request = AllocationRequest(principal, amount, level=1)
    a = system.index(principal)
    n = system.n
    V = system.V
    A = system.A if system.A is not None else np.zeros((n, n))

    # Direct agreement quantities only: no chains, no availability feedback.
    direct = np.minimum(system.S[:, a] * V + A[:, a], V)
    direct[a] = 0.0

    take = np.zeros(n)
    local = min(float(V[a]), float(amount))
    take[a] = local
    remaining = float(amount) - local

    total_weight = float(direct.sum())
    if remaining > _TOL and total_weight > _TOL:
        # Proportional split; donors that saturate their agreement bound
        # forfeit the excess (the endpoint scheme does not re-balance).
        desired = direct / total_weight * remaining
        granted = np.minimum(desired, direct)
        take += granted
        remaining -= float(granted.sum())

    satisfied = float(amount) - max(remaining, 0.0)
    if remaining > _TOL and not partial:
        raise InsufficientResourcesError(principal, amount, satisfied)

    new_V = np.maximum(V - take, 0.0)
    new_C = system.topology.capacities(new_V, 1)
    old_C = system.capacities(1)
    drops = np.delete(old_C - new_C, a)
    allocation = Allocation(
        request=request,
        take=take,
        theta=float(drops.max()) if drops.size else 0.0,
        satisfied=satisfied,
        new_V=new_V,
        new_C=new_C,
        scheme="endpoint",
        principals=list(system.principals),
    )
    if _sanitize.enabled():
        _sanitize.check_allocation(old_C, allocation)
    return allocation
