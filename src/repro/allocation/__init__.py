"""Enforcing sharing agreements: the allocation engine (Section 3).

Given an :class:`~repro.agreements.AgreementSystem`, a requesting principal
``A`` and an amount ``x``, the allocator decides how much of the request to
satisfy from each principal's raw resources, subject to the transitive
flow bounds, minimising the perturbation metric
``theta = max_i (C_i - C'_i)``.

- :mod:`~repro.allocation.lp_allocator` — the paper's LP in a *faithful*
  ``n^2 + n + 1``-variable formulation and an algebraically *reduced*
  ``n + 1``-variable formulation (identical optima, verified in tests);
- :mod:`~repro.allocation.endpoint` — the Figure-13 baseline that
  redistributes proportionally to direct agreement quantities without
  global availability information;
- :mod:`~repro.allocation.greedy` — a most-available-first waterfilling
  baseline;
- :mod:`~repro.allocation.multiresource` — vector requests (one LP per
  resource type) and coupled-resource binding;
- :mod:`~repro.allocation.hierarchical` — the Section-3.2 multigrid
  refinement for hierarchical structures.
"""

from .costaware import allocate_cost_aware
from .endpoint import allocate_endpoint
from .greedy import allocate_greedy
from .hierarchical import allocate_hierarchical
from .lp_allocator import allocate_lp
from .multiresource import MultiResourceRequest, allocate_multi
from .problem import Allocation, AllocationRequest

__all__ = [
    "Allocation",
    "AllocationRequest",
    "allocate_lp",
    "allocate_cost_aware",
    "allocate_endpoint",
    "allocate_greedy",
    "allocate_hierarchical",
    "allocate_multi",
    "MultiResourceRequest",
]
