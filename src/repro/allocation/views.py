"""Multiple views of the same resource (Section 2.2's future-work extension).

"This mechanism can be extended to handle multiple views of the same
resources by enabling resources backing multiple ticket types.  This is
useful in several situations.  For example, the disk bandwidth resource
can be viewed as two kinds of resources: read bandwidth and write
bandwidth."

A *view set* declares that several ticket types (views) draw on one
underlying physical resource: each view has its own agreement system
(its own ``S`` matrix — read and write bandwidth can be shared on
different terms), but the donors' *combined* take across views is bounded
by the underlying capacity.  Solving the views independently could
over-commit a donor, so :func:`allocate_views` builds one joint LP:

    minimise   theta
    subject to sum_k d[v, k]            = x_v        for each view v
               d[v, k]                 <= U_v[k, A]  (flow bound per view)
               sum_v d[v, k]           <= base_V[k]  (shared physical bound)
               drop_i = max over views of per-view capacity drop <= theta
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AllocationError, InsufficientResourcesError
from ..lp import LinearProgram
from .problem import Allocation, AllocationRequest

__all__ = ["ViewSet", "allocate_views"]


@dataclass(frozen=True)
class ViewSet:
    """Several agreement systems (views) over one physical resource.

    ``systems`` maps view name -> :class:`~repro.agreements.AgreementSystem`;
    all must share the same principal list.  ``base_capacity`` is the
    underlying physical capacity per principal that all views jointly
    consume; each view's own ``V`` bounds what that view may see, but the
    sum across views is bounded by the base.
    """

    name: str
    systems: dict
    base_capacity: np.ndarray

    def __post_init__(self) -> None:
        if not self.systems:
            raise AllocationError(f"view set {self.name!r} has no views")
        principal_lists = {tuple(s.principals) for s in self.systems.values()}
        if len(principal_lists) != 1:
            raise AllocationError(
                f"view set {self.name!r}: all views must share one principal list"
            )
        base = np.asarray(self.base_capacity, dtype=float)
        n = next(iter(self.systems.values())).n
        if base.shape != (n,):
            raise AllocationError(
                f"view set {self.name!r}: base capacity must have length {n}"
            )
        if np.any(base < 0):
            raise AllocationError("base capacity must be non-negative")
        object.__setattr__(self, "base_capacity", base)

    @property
    def principals(self) -> list[str]:
        return list(next(iter(self.systems.values())).principals)


def allocate_views(
    viewset: ViewSet,
    principal: str,
    amounts: dict[str, float],
    *,
    level: int | None = None,
    backend: str = "scipy",
) -> dict[str, Allocation]:
    """Jointly allocate requests over several views of one resource.

    ``amounts`` maps view name -> requested quantity.  Returns one
    :class:`~repro.allocation.problem.Allocation` per requested view whose
    takes respect both the per-view flow bounds and the shared physical
    capacity.

    Raises :class:`~repro.errors.InsufficientResourcesError` when the
    joint program is infeasible (per-view capacity fine but base capacity
    over-committed counts as insufficient).
    """
    unknown = set(amounts) - set(viewset.systems)
    if unknown:
        raise AllocationError(f"unknown views {sorted(unknown)}")
    views = [v for v, x in amounts.items() if x > 0]
    if not views:
        return {}
    some_system = viewset.systems[views[0]]
    n = some_system.n
    a = some_system.index(principal)

    # Quick per-view capacity screen for a friendly error message.
    for v in views:
        cap = viewset.systems[v].capacity_of(principal, level)
        if amounts[v] > cap + 1e-9:
            raise InsufficientResourcesError(principal, amounts[v], cap)

    lp = LinearProgram(f"views-{viewset.name}")
    d = {}
    for v in views:
        system = viewset.systems[v]
        U = system.u(level)
        for k in range(n):
            ub = system.V[a] if k == a else min(U[k, a], system.V[k])
            d[v, k] = lp.variable(f"d_{v}_{k}", lower=0.0, upper=float(ub))
    theta = lp.variable("theta", lower=0.0)

    # Per-view totals.
    for v in views:
        total = d[v, 0] * 1.0
        for k in range(1, n):
            total = total + d[v, k]
        lp.add_constraint(total == float(amounts[v]), name=f"total_{v}")

    # Shared physical capacity per donor.
    for k in range(n):
        joint = d[views[0], k] * 1.0
        for v in views[1:]:
            joint = joint + d[v, k]
        lp.add_constraint(joint <= float(viewset.base_capacity[k]), name=f"base_{k}")

    # Perturbation: per-view capacity drops of other principals.
    for v in views:
        T = viewset.systems[v].coefficients(level)
        for i in range(n):
            if i == a:
                continue
            drop = d[v, i] * 1.0
            for k in range(n):
                if k != i and T[k, i] != 0.0:
                    drop = drop + d[v, k] * float(T[k, i])
            lp.add_constraint(drop <= theta, name=f"drop_{v}_{i}")

    lp.minimize(theta)
    res = lp.solve(backend=backend)
    if not res.ok:
        # The joint base-capacity constraint is the only coupling, so an
        # infeasible joint program means the base resource is the binding
        # shortage.
        raise InsufficientResourcesError(
            principal,
            float(sum(amounts[v] for v in views)),
            float(viewset.base_capacity.sum()),
        )

    out: dict[str, Allocation] = {}
    for v in views:
        system = viewset.systems[v]
        take = np.array([max(res[f"d_{v}_{k}"], 0.0) for k in range(n)])
        new_V = np.maximum(system.V - take, 0.0)
        out[v] = Allocation(
            request=AllocationRequest(principal, float(amounts[v]), level),
            take=take,
            theta=float(res.objective),
            satisfied=float(take.sum()),
            new_V=new_V,
            new_C=system.topology.capacities(new_V, level),
            scheme=f"views:{v}",
            principals=list(system.principals),
        )
    return out
