"""Request and result types for the allocation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AllocationRequest", "Allocation"]


@dataclass(frozen=True)
class AllocationRequest:
    """A request by ``principal`` for ``amount`` of one resource.

    ``level`` limits the transitivity of agreements considered (``None`` =
    full closure ``n-1``; ``1`` = direct agreements only, matching the
    "level=1" series of Figures 8–11).
    """

    principal: str
    amount: float
    level: int | None = None

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError(f"request amount must be >= 0, got {self.amount}")


@dataclass
class Allocation:
    """Result of an allocation decision.

    Attributes
    ----------
    request:
        The request this answers.
    take:
        ``take[i]`` = quantity drawn from principal ``i``'s raw resources
        (``V_i - V'_i`` in the paper); sums to the satisfied amount.
    theta:
        Value of the perturbation metric at the optimum (``nan`` for
        allocators that do not optimise it).
    satisfied:
        Total amount granted (== request.amount unless partial).
    new_V:
        Raw capacities after the allocation (``V'``).
    new_C:
        Effective capacities after the allocation (``C'``), recomputed from
        ``V'`` at the request's transitivity level.
    scheme:
        Which allocator produced this (``"lp"``, ``"endpoint"``, ...).
    principals:
        Names matching the vector indices.
    """

    request: AllocationRequest
    take: np.ndarray
    theta: float
    satisfied: float
    new_V: np.ndarray
    new_C: np.ndarray
    scheme: str
    principals: list[str] = field(default_factory=list)

    @property
    def local_take(self) -> float:
        """Amount drawn from the requester's own resources."""
        return float(self.take[self.principals.index(self.request.principal)])

    @property
    def remote_take(self) -> float:
        """Amount drawn from other principals' resources (redirected work)."""
        return float(self.satisfied - self.local_take)

    def takes_by_name(self) -> dict[str, float]:
        """Non-zero takes keyed by principal name."""
        return {
            p: float(t)
            for p, t in zip(self.principals, self.take)
            if t > 1e-12
        }

    def __repr__(self) -> str:
        takes = ", ".join(f"{p}:{t:.3g}" for p, t in self.takes_by_name().items())
        return (
            f"Allocation({self.request.principal!r} x={self.request.amount:g} "
            f"via {self.scheme}: [{takes}] theta={self.theta:.3g})"
        )
