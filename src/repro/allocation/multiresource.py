"""Multi-resource requests (Section 3.2).

"A request for k types of resources is in the form of a vector
<r_1, r_2, ..., r_k> ...  To schedule this request, we need to solve k
linear systems, one for each resource requested, and allocate resources
according to the results."  Coupled resources (CPU+memory on one machine)
are bound into a new resource type via :class:`~repro.units.CoupledResource`
so they are always allocated together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError, InsufficientResourcesError
from ..units import CoupledResource, ResourceVector
from .lp_allocator import allocate_lp
from .problem import Allocation

__all__ = ["MultiResourceRequest", "allocate_multi"]


@dataclass(frozen=True)
class MultiResourceRequest:
    """A vector request, optionally over coupled (bundled) resource types.

    ``needs`` maps resource-type name to quantity; entries naming a
    :class:`~repro.units.CoupledResource` are in bundle units.
    """

    principal: str
    needs: ResourceVector
    level: int | None = None
    coupled: tuple[CoupledResource, ...] = field(default=())

    def coupled_names(self) -> frozenset[str]:
        return frozenset(c.name for c in self.coupled)


def allocate_multi(
    systems: dict[str, "object"],
    request: MultiResourceRequest,
    *,
    formulation: str = "reduced",
    objective: str = "others",
    backend: str = "scipy",
) -> dict[str, Allocation]:
    """Solve one allocation LP per requested resource type.

    Parameters
    ----------
    systems:
        Maps resource-type name to the system-like object governing that
        type — an :class:`~repro.agreements.AgreementSystem` or a
        :class:`~repro.agreements.topology.CapacityView` (built e.g. with
        ``bank.capacity_view(rtype)`` per type, which reuses the bank's
        version-keyed topology cache).  A coupled resource must have its
        *own* entry: the caller registers the bundle as a first-class
        resource type, which is precisely the paper's "bind these types
        into a new type" prescription.
    request:
        The vector request.

    Returns
    -------
    dict
        Resource type -> :class:`Allocation`.  All-or-nothing: a capacity
        shortfall on any type raises before any result is returned, so a
        caller never sees a half-planned vector request.

    Raises
    ------
    AllocationError
        If a requested type has no governing system.
    InsufficientResourcesError
        If any type cannot be satisfied.
    """
    plans: dict[str, Allocation] = {}
    # Pre-check every type before planning any, for all-or-nothing semantics.
    for rtype, quantity in request.needs.items():
        if quantity <= 0:
            continue
        system = systems.get(rtype)
        if system is None:
            raise AllocationError(
                f"no agreement system registered for resource type {rtype!r}"
            )
        available = system.capacity_of(request.principal, request.level)
        if quantity > available + 1e-9:
            raise InsufficientResourcesError(request.principal, quantity, available)
    for rtype, quantity in request.needs.items():
        if quantity <= 0:
            continue
        plans[rtype] = allocate_lp(
            systems[rtype],
            request.principal,
            quantity,
            level=request.level,
            formulation=formulation,
            objective=objective,
            backend=backend,
        )
    return plans


def expand_coupled_takes(
    request: MultiResourceRequest, plans: dict[str, Allocation]
) -> dict[str, dict[str, float]]:
    """Expand bundle-unit takes into constituent resource quantities.

    Returns ``{principal: {constituent_resource: quantity}}`` summed over
    all coupled types in the request — the physical footprint each donor
    machine must reserve.
    """
    by_name = {c.name: c for c in request.coupled}
    out: dict[str, dict[str, float]] = {}
    for rtype, plan in plans.items():
        bundle = by_name.get(rtype)
        if bundle is None:
            continue
        for principal, units in plan.takes_by_name().items():
            footprint = bundle.expand(units)
            slot = out.setdefault(principal, {})
            for res, qty in footprint.items():
                slot[res] = slot.get(res, 0.0) + qty
    return out
