"""The Section-3.1 linear-programming allocator.

Given effective capacities and flow bounds, choose how much to draw from
each principal's raw resources so the request is met while perturbing
global availability the least:

    minimise   theta
    subject to I'_ij = V'_i * T_ij                    (1)
               C'_i  = V'_i + sum_{k != i} I'_ki      (2)
               C'_A  = C_A - x                        (3)
               0 <= V_i - V'_i <= U_iA   (i != A)     (4)
               0 <= V_A - V'_A <= V_A
               sum_i (V_i - V'_i) = x                 (5)
               C_i - theta <= C'_i <= C_i             (6)

Two points the paper leaves implicit are resolved here and exercised in
the tests:

**The requester's row.**  Constraints (2), (3) and (6) cannot all hold for
``i = A`` whenever the request is partly served remotely: (2) gives
``C'_A = C_A - d_A - sum_k d_k T_kA`` which exceeds ``C_A - x`` when any
donor ``k`` has ``T_kA < 1``, contradicting (3); and applying (6) at
``i = A`` under (3) forces ``theta >= x``, which makes every feasible
point optimal (every other principal's drop is bounded by ``x``), i.e. a
degenerate objective.  We therefore support both consistent readings:

- ``objective="others"`` (default, keeps (3)): the requester's post-
  allocation capacity is *defined* as ``C_A - x`` and the metric is
  ``theta = max_{i != A} (C_i - C'_i)``;
- ``objective="all"`` (keeps (2) for every row, drops (3)): ``C'_A`` is
  computed like everyone else's and the metric ranges over all principals.

Both yield valid agreement-respecting allocations; they may differ in
which donor they prefer in ties.

**Formulations.**  ``formulation="faithful"`` materialises every variable
the paper counts (``n(n-1)`` flows ``I'``, ``n`` capacities ``C'``, ``n``
remainders ``V'``, plus ``theta`` — the ``n^2 + n + 1`` of Section 3.1).
``formulation="reduced"`` eliminates ``I'`` and ``C'`` algebraically
(substituting (1) into (2)) leaving only the takes ``d_i = V_i - V'_i``
and ``theta``.  The optima are identical (property-tested); reduced is the
default in the simulator for speed.
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..errors import (
    InfeasibleAllocationError,
    InsufficientResourcesError,
    LPError,
)
from ..lp import LinearProgram
from ..obs import get_observer
from ..obs.decision import current_decision
from .problem import Allocation, AllocationRequest

__all__ = ["allocate_lp"]

_TOL = 1e-7


def allocate_lp(
    system,
    principal: str,
    amount: float,
    *,
    level: int | None = None,
    formulation: str = "reduced",
    objective: str = "others",
    backend: str = "scipy",
    partial: bool = False,
) -> Allocation:
    """Allocate ``amount`` to ``principal``, minimally perturbing the system.

    Parameters
    ----------
    system:
        An :class:`~repro.agreements.AgreementSystem` or a
        :class:`~repro.agreements.topology.CapacityView` (the GRM's hot
        path passes views bound to its cached topology).
    principal, amount:
        The requester ``A`` and request size ``x``.
    level:
        Transitivity level ``m`` (``None`` = full closure).
    formulation:
        ``"reduced"`` (default) or ``"faithful"`` — see module docstring.
    objective:
        ``"others"`` (default) or ``"all"`` — see module docstring.
    backend:
        LP backend (``"scipy"`` or ``"simplex"``).
    partial:
        If the request exceeds ``C_A``, grant ``C_A`` instead of raising
        :class:`~repro.errors.InsufficientResourcesError`.

    Returns
    -------
    Allocation
        With ``take`` summing to the satisfied amount and the post-state
        ``V'`` / ``C'`` vectors.
    """
    request = AllocationRequest(principal, amount, level)
    a = system.index(principal)
    n = system.n
    obs = get_observer()
    with obs.span(
        "allocation.request", principal=principal, amount=float(amount), n=n
    ) as sp:
        V = system.V
        U = system.u(level)  # inflow bounds, absolute agreements included
        C = system.capacities(level)
        T = system.coefficients(level)

        x = float(amount)
        cap = float(C[a])
        if x > cap + _TOL:
            if not partial:
                obs.counter("allocation.denied")
                obs.event(
                    "allocation.insufficient", principal=principal,
                    requested=x, available=cap,
                )
                raise InsufficientResourcesError(principal, x, cap)
            x = cap
        if x <= _TOL:
            return _make_result(system, request, np.zeros(n), 0.0, 0.0, level)

        if objective not in ("others", "all"):
            raise LPError(f"unknown objective {objective!r}; use 'others' or 'all'")
        try:
            if formulation == "reduced" and backend == "scipy":
                # Hot path for the simulator: build the arrays directly
                # instead of going through the expression layer (identical
                # LP, ~2x faster).
                take, theta = _solve_reduced_arrays(n, a, x, V, U, T, objective)
            elif formulation == "reduced":
                take, theta = _solve_reduced(n, a, x, V, U, T, objective, backend)
            elif formulation == "faithful":
                take, theta = _solve_faithful(n, a, x, V, U, T, C, objective, backend)
            else:
                raise LPError(
                    f"unknown formulation {formulation!r}; use 'reduced' or 'faithful'"
                )
        except InfeasibleAllocationError:
            obs.counter("allocation.infeasible")
            obs.event(
                "allocation.infeasible", principal=principal, amount=x,
                formulation=formulation, backend=backend,
            )
            raise
        if obs.enabled:
            donors = int(np.count_nonzero(take > _TOL))
            obs.counter("allocation.requests", scheme="lp")
            obs.histogram("allocation.theta", theta)
            obs.histogram("allocation.donors", donors)
            sp.set(theta=theta, donors=donors, satisfied=x)
    return _make_result(system, request, take, theta, x, level)


def _donor_bounds(n: int, a: int, V: np.ndarray, U: np.ndarray) -> np.ndarray:
    """Upper bound on the take from each principal (constraint (4))."""
    ub = np.empty(n)
    for i in range(n):
        ub[i] = V[a] if i == a else min(U[i, a], V[i])
    return ub


def _solve_reduced_arrays(n, a, x, V, U, T, objective):
    """Reduced formulation assembled as raw scipy arrays (scipy backend only).

    Variables ``[d_0 .. d_{n-1}, theta]``; drop constraints
    ``d_i + sum_k d_k T_ki <= theta`` become rows of ``T.T + I`` with a
    ``-1`` theta column.  Mathematically identical to :func:`_solve_reduced`
    (cross-checked in the test suite).
    """
    from scipy.optimize import linprog

    ub = _donor_bounds(n, a, V, U)
    rows = np.arange(n) if objective == "all" else np.delete(np.arange(n), a)
    A_ub = np.zeros((len(rows), n + 1))
    A_ub[:, :n] = (T.T + np.eye(n))[rows]
    A_ub[:, n] = -1.0
    b_ub = np.zeros(len(rows))
    A_eq = np.ones((1, n + 1))
    A_eq[0, n] = 0.0
    c = np.zeros(n + 1)
    c[n] = 1.0
    bounds = [(0.0, float(u)) for u in ub] + [(0.0, None)]
    obs = get_observer()
    with obs.span("lp.solve", backend="scipy", model="allocate-reduced-arrays") as sp:
        res = linprog(
            c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=[x], bounds=bounds,
            method="highs",
        )
        if obs.enabled:
            iterations = int(getattr(res, "nit", 0) or 0)
            obs.counter("lp.solves", backend="scipy")
            obs.histogram("lp.iterations", iterations, backend="scipy")
            sp.set(status=int(res.status), iterations=iterations)
            dec = current_decision()
            if dec is not None:
                # Attach solver evidence to whichever allocation decision
                # (GRM grant, direct policy plan) is in flight.
                dec.set(
                    lp_backend="scipy",
                    lp_status=int(res.status),
                    lp_iterations=iterations,
                )
    if res.status != 0:
        raise InfeasibleAllocationError(
            f"allocation LP failed (scipy status {res.status}): {res.message}"
        )
    take = np.clip(res.x[:n], 0.0, None)
    return take, float(res.x[n])


def _solve_reduced(n, a, x, V, U, T, objective, backend):
    """Variables: takes d_i and theta; flows and capacities eliminated."""
    lp = LinearProgram("allocate-reduced")
    ub = _donor_bounds(n, a, V, U)
    d = [lp.variable(f"d{i}", lower=0.0, upper=ub[i]) for i in range(n)]
    theta = lp.variable("theta", lower=0.0)

    total = d[0]
    for i in range(1, n):
        total = total + d[i]
    lp.add_constraint(total == x, name="total")

    # Drop of principal i: C_i - C'_i = d_i + sum_{k != i} d_k T_ki  <= theta
    rows = range(n) if objective == "all" else (i for i in range(n) if i != a)
    for i in rows:
        drop = d[i] * 1.0
        for k in range(n):
            if k != i and T[k, i] != 0.0:
                drop = drop + d[k] * float(T[k, i])
        lp.add_constraint(drop <= theta, name=f"drop{i}")

    lp.minimize(theta)
    res = lp.solve(backend=backend)
    dec = current_decision()
    if dec is not None:
        dec.set(lp_backend=backend, lp_status=res.status.value)
    if not res.ok:
        raise InfeasibleAllocationError(
            f"allocation LP reported {res.status.value} "
            f"(x={x:g}, requester index {a})"
        )
    take = np.array([res[f"d{i}"] for i in range(n)])
    return np.clip(take, 0.0, None), float(res.objective)


def _solve_faithful(n, a, x, V, U, T, C, objective, backend):
    """The paper's full variable set: V'_i, C'_i, I'_ij and theta."""
    lp = LinearProgram("allocate-faithful")
    ub = _donor_bounds(n, a, V, U)
    vp = [lp.variable(f"Vp{i}", lower=float(max(V[i] - ub[i], 0.0)), upper=float(V[i])) for i in range(n)]
    cp = [lp.variable(f"Cp{i}", lower=0.0) for i in range(n)]
    ip = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                ip[i, j] = lp.variable(f"Ip{i}_{j}", lower=0.0)
    theta = lp.variable("theta", lower=0.0)

    # (1) I'_ij = V'_i T_ij
    for (i, j), var in ip.items():
        lp.add_constraint(var == vp[i] * float(T[i, j]), name=f"flow{i}_{j}")

    # (2) C'_i = V'_i + sum_{k != i} I'_ki   (all rows, or all but A)
    for i in range(n):
        if objective == "others" and i == a:
            continue
        expr = vp[i] * 1.0
        for k in range(n):
            if k != i:
                expr = expr + ip[k, i]
        lp.add_constraint(cp[i] == expr, name=f"cap{i}")

    # (3) C'_A = C_A - x  (only in the "others" reading)
    if objective == "others":
        lp.add_constraint(cp[a] == float(C[a] - x), name="requester")

    # (5) sum (V_i - V'_i) = x
    spent = (V[0] - vp[0]) * 1.0
    for i in range(1, n):
        spent = spent + (float(V[i]) - vp[i])
    lp.add_constraint(spent == x, name="total")

    # (6) C_i - theta <= C'_i <= C_i
    rows = range(n) if objective == "all" else (i for i in range(n) if i != a)
    for i in rows:
        lp.add_constraint(cp[i] >= float(C[i]) - theta, name=f"lo{i}")
        lp.add_constraint(cp[i] <= float(C[i]), name=f"hi{i}")

    lp.minimize(theta)
    res = lp.solve(backend=backend)
    dec = current_decision()
    if dec is not None:
        dec.set(lp_backend=backend, lp_status=res.status.value)
    if not res.ok:
        raise InfeasibleAllocationError(
            f"allocation LP reported {res.status.value} "
            f"(x={x:g}, requester index {a})"
        )
    take = np.array([float(V[i]) - res[f"Vp{i}"] for i in range(n)])
    return np.clip(take, 0.0, None), float(res.objective)


def _make_result(system, request, take, theta, satisfied, level) -> Allocation:
    new_V = np.maximum(system.V - take, 0.0)
    allocation = Allocation(
        request=request,
        take=take,
        theta=theta,
        satisfied=float(satisfied),
        new_V=new_V,
        new_C=system.topology.capacities(new_V, level),
        scheme="lp",
        principals=list(system.principals),
    )
    if _sanitize.enabled():
        _sanitize.check_allocation(system.capacities(level), allocation)
    return allocation
