"""Greedy waterfilling baseline: most-available donor first.

Not in the paper; provided as a second reference point between the
LP allocator (global optimum) and the endpoint scheme (availability-blind).
The greedy allocator *does* see global availability (like the LP) but
optimises nothing: it takes locally first, then drains donors in
descending order of what they can still provide.
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..errors import InsufficientResourcesError
from .problem import Allocation, AllocationRequest

__all__ = ["allocate_greedy"]

_TOL = 1e-12


def allocate_greedy(
    system,
    principal: str,
    amount: float,
    *,
    level: int | None = None,
    partial: bool = False,
) -> Allocation:
    """Allocate local-first, then donors by descending available flow."""
    request = AllocationRequest(principal, amount, level)
    a = system.index(principal)
    n = system.n
    V = system.V
    U = system.u(level)
    C = system.capacities(level)

    x = float(amount)
    if x > float(C[a]) + 1e-9:
        if not partial:
            raise InsufficientResourcesError(principal, x, float(C[a]))
        x = float(C[a])

    take = np.zeros(n)
    take[a] = min(float(V[a]), x)
    remaining = x - take[a]

    if remaining > _TOL:
        bounds = np.minimum(U[:, a], V)
        bounds[a] = 0.0
        for k in np.argsort(-bounds):
            if remaining <= _TOL:
                break
            grant = min(float(bounds[k]), remaining)
            if grant > _TOL:
                take[k] = grant
                remaining -= grant

    satisfied = x - max(remaining, 0.0)
    new_V = np.maximum(V - take, 0.0)
    new_C = system.topology.capacities(new_V, level)
    drops = np.delete(C - new_C, a)
    allocation = Allocation(
        request=request,
        take=take,
        theta=float(drops.max()) if drops.size else 0.0,
        satisfied=satisfied,
        new_V=new_V,
        new_C=new_C,
        scheme="greedy",
        principals=list(system.principals),
    )
    if _sanitize.enabled():
        _sanitize.check_allocation(C, allocation)
    return allocation
