"""Multigrid refinement for hierarchical agreement structures (Section 3.2).

"In the case of a hierarchical agreement structure, we can use techniques
motivated by multi-grid refinement: once a request comes to a group, and
that group cannot satisfy the request, we use LP to find the distribution
of resources among groups; based on the distribution result, we run LP
inside each group to further refine the resource allocation."

The coarse level treats each group as a super-principal: its raw capacity
is the sum of member capacities, and the coarse share from group ``g`` to
group ``h`` is the capacity-weighted aggregate of member-to-member shares
(an upper-level approximation — refinement inside each donor group then
respects the member-level bounds exactly).
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..agreements.matrix import AgreementSystem
from ..errors import AllocationError, InsufficientResourcesError
from ..obs import get_observer
from ..obs.decision import current_decision
from .lp_allocator import allocate_lp
from .problem import Allocation, AllocationRequest

__all__ = ["allocate_hierarchical", "coarsen"]

_TOL = 1e-9


def coarsen(system: AgreementSystem, groups: list[list[int]]) -> AgreementSystem:
    """Aggregate a member-level system into a group-level system.

    ``V_g = sum_{i in g} V_i`` and
    ``S_gh = sum_{i in g, j in h} S_ij V_i / V_g`` (capacity-weighted mean
    outgoing share; 0 for an empty group).  Intra-group agreements do not
    appear at the coarse level.
    """
    ng = len(groups)
    Vg = np.array([system.V[g].sum() for g in groups])
    Sg = np.zeros((ng, ng))
    for gi, g in enumerate(groups):
        if Vg[gi] <= _TOL:
            continue
        for hi, h in enumerate(groups):
            if gi == hi:
                continue
            Sg[gi, hi] = sum(
                system.S[i, j] * system.V[i] for i in g for j in h
            ) / Vg[gi]
    names = [f"group{gi}" for gi in range(ng)]
    return AgreementSystem(
        names, Vg, Sg, allow_overdraft=system.allow_overdraft,
        flow_method=system.flow_method,
    )


def _subsystem(system: AgreementSystem, members: list[int]) -> AgreementSystem:
    """Member-level system restricted to one group (intra-group edges only)."""
    idx = np.asarray(members)
    names = [system.principals[i] for i in members]
    return AgreementSystem(
        names,
        system.V[idx],
        system.S[np.ix_(idx, idx)],
        None if system.A is None else system.A[np.ix_(idx, idx)],
        allow_overdraft=system.allow_overdraft,
        flow_method=system.flow_method,
    )


def allocate_hierarchical(
    system: AgreementSystem,
    principal: str,
    amount: float,
    *,
    groups: list[list[int]] | None = None,
    level: int | None = None,
    backend: str = "scipy",
    partial: bool = False,
) -> Allocation:
    """Multigrid allocation on a hierarchical structure.

    1. Try to satisfy the request entirely inside the requester's group
       (one small LP).
    2. Otherwise allocate at the coarse (group) level, refine each donor
       group's contribution with an intra-group LP, and — because the
       coarse level may overestimate what a group can actually hand to the
       requesting member — *iterate* on any shortfall with updated member
       capacities, exactly the paper's "iterating this process as
       required".

    ``groups`` defaults to the ``system.groups`` attribute set by
    :func:`repro.agreements.structures.hierarchical_structure`.

    Raises :class:`~repro.errors.InsufficientResourcesError` (with the
    amount actually deliverable) if iteration stalls short of the request
    and ``partial`` is False.
    """
    if groups is None:
        groups = getattr(system, "groups", None)
    if groups is None:
        raise AllocationError(
            "hierarchical allocation needs a group partition; pass groups= "
            "or use a system built by hierarchical_structure()"
        )
    a = system.index(principal)
    home = next((gi for gi, g in enumerate(groups) if a in g), None)
    if home is None:
        raise AllocationError(f"principal {principal!r} is not in any group")

    n = system.n
    request = AllocationRequest(principal, amount, level)
    x = float(amount)
    take = np.zeros(n)
    obs = get_observer()
    span = obs.span(
        "allocation.hierarchical", principal=principal, amount=x,
        groups=len(groups),
    )

    # Fast path: the whole request fits inside the requester's group.
    with span:
        local_sys = _subsystem(system, groups[home])
        local_cap = local_sys.capacity_of(principal, level)
        if x <= local_cap + _TOL:
            span.set(path="local")
            plan = allocate_lp(local_sys, principal, x, level=level, backend=backend)
            for m, t in zip(groups[home], plan.take):
                take[m] = t
            return _finish(system, request, take, x, level)

        remaining = x
        current = system
        rounds = 0
        for _iteration in range(len(groups) + 2):
            if remaining <= _TOL:
                break
            rounds += 1
            coarse = coarsen(current, groups)
            # The home group's deliverable capacity is what the requester can
            # actually reach through intra-group agreements, not the raw member
            # sum — otherwise the coarse LP keeps "allocating" locally work that
            # refinement cannot extract.
            home_deliverable = _subsystem(current, groups[home]).capacity_of(
                principal, level
            )
            Vc = coarse.V.copy()
            Vc[home] = home_deliverable
            coarse = coarse.with_capacities(Vc)
            coarse_cap = coarse.capacity_of(f"group{home}", level)
            ask = min(remaining, coarse_cap)
            if ask <= _TOL:
                break
            coarse_plan = allocate_lp(
                coarse, f"group{home}", ask, level=level, backend=backend,
                partial=True,
            )
            round_take = np.zeros(n)
            for gi, contribution in enumerate(coarse_plan.take):
                if contribution <= _TOL:
                    continue
                members = groups[gi]
                sub = _subsystem(current, members)
                if gi == home:
                    plan = allocate_lp(
                        sub, principal, float(contribution), level=level,
                        backend=backend, partial=True,
                    )
                    member_take = plan.take
                else:
                    member_take = _spread_within(sub, float(contribution))
                for m, t in zip(members, member_take):
                    round_take[m] += t
            got = float(round_take.sum())
            if got <= _TOL:
                break  # stalled: nothing more is extractable
            take += round_take
            remaining -= got
            current = current.with_capacities(np.maximum(current.V - round_take, 0.0))

        satisfied = float(take.sum())
        if obs.enabled:
            donors = int(np.count_nonzero(take > _TOL))
            obs.counter("allocation.requests", scheme="hierarchical")
            obs.histogram("allocation.hierarchical.rounds", rounds)
            obs.histogram("allocation.donors", donors)
            span.set(path="multigrid", rounds=rounds, donors=donors,
                     satisfied=satisfied)
            dec = current_decision()
            if dec is not None:
                # The refinement round count is evidence the opener of
                # the decision (GRM or policy) cannot see from outside.
                dec.set(multigrid_rounds=rounds)
        if remaining > 1e-6 and not partial:
            # Undo nothing — this is a pure planning function; just report.
            obs.event(
                "allocation.insufficient", principal=principal,
                requested=x, available=satisfied, scheme="hierarchical",
            )
            raise InsufficientResourcesError(principal, x, satisfied)
    return _finish(system, request, take, satisfied, level)


def _spread_within(sub: AgreementSystem, contribution: float) -> np.ndarray:
    """Spread a donor group's contribution over members, minimising the
    maximum member drop (a small LP with an exogenous sink)."""
    from ..lp import LinearProgram

    k = sub.n
    contribution = min(contribution, float(sub.V.sum()))
    lp = LinearProgram("refine")
    d = [lp.variable(f"d{i}", lower=0.0, upper=float(sub.V[i])) for i in range(k)]
    theta = lp.variable("theta", lower=0.0)
    total = d[0]
    for i in range(1, k):
        total = total + d[i]
    lp.add_constraint(total == contribution, name="total")
    T = sub.coefficients()
    for i in range(k):
        drop = d[i] * 1.0
        for j in range(k):
            if j != i and T[j, i] != 0.0:
                drop = drop + d[j] * float(T[j, i])
        lp.add_constraint(drop <= theta, name=f"drop{i}")
    lp.minimize(theta)
    res = lp.solve()
    if not res.ok:  # pragma: no cover - bounded by construction
        raise AllocationError(f"group refinement LP {res.status.value}")
    return np.array([max(res[f"d{i}"], 0.0) for i in range(k)])


def _finish(system, request, take, satisfied, level) -> Allocation:
    new_V = np.maximum(system.V - take, 0.0)
    new_C = system.topology.capacities(new_V, level)
    a = system.index(request.principal)
    drops = np.delete(system.capacities(level) - new_C, a)
    allocation = Allocation(
        request=request,
        take=take,
        theta=float(drops.max()) if drops.size else 0.0,
        satisfied=satisfied,
        new_V=new_V,
        new_C=new_C,
        scheme="hierarchical",
        principals=list(system.principals),
    )
    if _sanitize.enabled():
        _sanitize.check_allocation(system.capacities(level), allocation)
    return allocation
