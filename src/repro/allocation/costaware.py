"""Cost-aware allocation (the paper's borrowing-cost remark).

Section 3.1: "In general this decision depends on several factors such as
the cost of borrowing resources from a different site and concerns of
fairness.  Here, we restrict our attention to optimizing a global
metric..."  This module implements the road not taken: the same feasible
region as :func:`~repro.allocation.lp_allocator.allocate_lp`, with a
per-donor borrowing-cost objective and an optional fairness cap on the
perturbation metric:

    minimise   sum_k cost_k * d_k
    subject to the flow bounds of the Section-3.1 LP
               sum_k d_k = x
               (optional) drop_i <= theta_cap  for every i != A

With ``theta_cap`` set to the optimum of the perturbation LP, this picks
the *cheapest among the least-perturbing* allocations — a lexicographic
combination of the two objectives.
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..errors import InfeasibleAllocationError, InsufficientResourcesError
from ..lp import LinearProgram
from .lp_allocator import allocate_lp
from .problem import Allocation, AllocationRequest

__all__ = ["allocate_cost_aware"]


def allocate_cost_aware(
    system,
    principal: str,
    amount: float,
    costs,
    *,
    level: int | None = None,
    theta_cap: float | None = None,
    lexicographic: bool = False,
    backend: str = "scipy",
    partial: bool = False,
) -> Allocation:
    """Allocate minimising total borrowing cost.

    Parameters
    ----------
    costs:
        Per-principal unit cost of drawing on that principal's resources
        (length n).  The requester's own cost is typically 0.
    theta_cap:
        Optional fairness bound: no other principal's capacity may drop
        by more than this.
    lexicographic:
        First minimise the perturbation theta (the paper's objective),
        then minimise cost among those optima.  Overrides ``theta_cap``.
    """
    request = AllocationRequest(principal, amount, level)
    a = system.index(principal)
    n = system.n
    V = system.V
    U = system.u(level)
    C = system.capacities(level)
    T = system.coefficients(level)
    costs = np.asarray(costs, dtype=float)
    if costs.shape != (n,):
        raise InfeasibleAllocationError(f"costs must have length {n}")

    x = float(amount)
    if x > float(C[a]) + 1e-9:
        if not partial:
            raise InsufficientResourcesError(principal, x, float(C[a]))
        x = float(C[a])
    if x <= 1e-12:
        return _result(system, request, np.zeros(n), 0.0, level)

    if lexicographic:
        base = allocate_lp(
            system, principal, x, level=level, backend=backend
        )
        theta_cap = base.theta + 1e-9

    lp = LinearProgram("allocate-cost")
    ub = [V[a] if i == a else min(U[i, a], V[i]) for i in range(n)]
    d = [lp.variable(f"d{i}", lower=0.0, upper=float(ub[i])) for i in range(n)]
    total = d[0]
    for i in range(1, n):
        total = total + d[i]
    lp.add_constraint(total == x, name="total")
    if theta_cap is not None:
        for i in range(n):
            if i == a:
                continue
            drop = d[i] * 1.0
            for k in range(n):
                if k != i and T[k, i] != 0.0:
                    drop = drop + d[k] * float(T[k, i])
            lp.add_constraint(drop <= float(theta_cap), name=f"fair{i}")
    obj = d[0] * float(costs[0])
    for i in range(1, n):
        obj = obj + d[i] * float(costs[i])
    lp.minimize(obj)
    res = lp.solve(backend=backend)
    if not res.ok:
        raise InfeasibleAllocationError(
            f"cost-aware allocation LP reported {res.status.value} "
            f"(theta_cap={theta_cap!r})"
        )
    take = np.array([max(res[f"d{i}"], 0.0) for i in range(n)])
    return _result(system, request, take, float(res.objective), level)


def _result(system, request, take, cost, level) -> Allocation:
    new_V = np.maximum(system.V - take, 0.0)
    new_C = system.topology.capacities(new_V, level)
    a = system.index(request.principal)
    drops = np.delete(system.capacities(level) - new_C, a)
    allocation = Allocation(
        request=request,
        take=take,
        theta=float(drops.max()) if drops.size else 0.0,
        satisfied=float(take.sum()),
        new_V=new_V,
        new_C=new_C,
        scheme="cost-aware",
        principals=list(system.principals),
    )
    allocation.cost = cost
    if _sanitize.enabled():
        _sanitize.check_allocation(system.capacities(level), allocation)
    return allocation
