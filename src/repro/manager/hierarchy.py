"""Multi-level GRM construction.

"The architecture also permits splitting of the GRMs into multiple
levels, each responsible for a subset of the LRMs" (Section 3.2).
:func:`build_hierarchical_grm` wires a root GRM plus one child GRM per
principal group over a shared transport and bank: requests from a
group's principals are served by its child GRM; the root handles
principals not assigned to any group and remains the registry owner.

All GRMs share one :class:`~repro.economy.Bank` (the agreement registry
is global — what is split is the *scheduling* responsibility), and each
child sees the availability reports of every principal because its
allocation decisions may draw on cross-group agreements.
"""

from __future__ import annotations

from ..economy.bank import Bank
from ..errors import ManagerError
from ..obs import get_observer
from .grm import GlobalResourceManager
from .transport import InProcessTransport

__all__ = ["build_hierarchical_grm", "HierarchicalGRM"]


class HierarchicalGRM:
    """A root GRM with per-group children on one transport."""

    def __init__(self, root: GlobalResourceManager, children: dict[str, GlobalResourceManager], transport: InProcessTransport):
        self.root = root
        self.children = children
        self.transport = transport

    def grm_for(self, principal: str) -> GlobalResourceManager:
        """The GRM responsible for a principal's requests."""
        child_name = self.root._delegates.get(principal)
        if child_name is None:
            return self.root
        for child in self.children.values():
            if child.name == child_name:
                return child
        raise ManagerError(f"delegate {child_name!r} not found")  # pragma: no cover

    def broadcast_availability(self, availability: dict[str, float], resource_type: str = "general") -> None:
        """Push availability to the root and every child (as LRM reports
        would fan out in a deployment)."""
        obs = get_observer()
        with obs.span(
            "hierarchy.broadcast",
            principals=len(availability),
            grms=1 + len(self.children),
        ):
            for grm in [self.root, *self.children.values()]:
                for principal, value in availability.items():
                    grm.set_availability(principal, value, resource_type)

    def requests_served(self) -> dict[str, int]:
        out = {self.root.name: self.root.requests_served}
        for name, child in self.children.items():
            out[child.name] = child.requests_served
        return out


def build_hierarchical_grm(
    bank: Bank,
    groups: dict[str, list[str]],
    transport: InProcessTransport | None = None,
    root_name: str = "grm-root",
) -> HierarchicalGRM:
    """Create a root GRM and one child per group, with delegation wired.

    ``groups`` maps group name -> principal names (must exist in the
    bank).  Principals absent from every group stay with the root.
    """
    transport = transport or InProcessTransport()
    known = set(bank.principals())
    root = GlobalResourceManager(root_name, bank)
    root.attach(transport)
    children: dict[str, GlobalResourceManager] = {}
    seen: set[str] = set()
    for group_name, members in groups.items():
        unknown = set(members) - known
        if unknown:
            raise ManagerError(
                f"group {group_name!r} names unknown principals {sorted(unknown)}"
            )
        overlap = set(members) & seen
        if overlap:
            raise ManagerError(
                f"principals {sorted(overlap)} appear in more than one group"
            )
        seen |= set(members)
        child = GlobalResourceManager(f"grm-{group_name}", bank)
        child.attach(transport)
        root.delegate(child.name, list(members))
        children[group_name] = child
    return HierarchicalGRM(root, children, transport)
