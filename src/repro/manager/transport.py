"""In-process message transport.

A deliberately simple substitute for the network layer of a deployed
GRM/LRM system: named endpoints, FIFO mailboxes, synchronous ``deliver``.
Keeping the transport explicit (instead of direct method calls) preserves
the protocol boundary — every GRM/LRM interaction goes through messages
that a real distributed deployment could serialise.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from ..errors import ManagerError
from .messages import Message

__all__ = ["InProcessTransport"]


class InProcessTransport:
    """Named mailboxes with synchronous delivery and optional handlers.

    Endpoints register either a handler (push: invoked on delivery, may
    return a reply message) or nothing (pull: messages queue in a mailbox
    until :meth:`receive`).
    """

    def __init__(self) -> None:
        self._handlers: dict[str, Callable[[Message], Message | None]] = {}
        self._mailboxes: dict[str, deque[Message]] = {}
        self.delivered = 0

    def register(
        self,
        name: str,
        handler: Callable[[Message], Message | None] | None = None,
    ) -> None:
        if name in self._mailboxes:
            raise ManagerError(f"endpoint {name!r} already registered")
        self._mailboxes[name] = deque()
        if handler is not None:
            self._handlers[name] = handler

    def endpoints(self) -> list[str]:
        return list(self._mailboxes)

    def send(self, to: str, message: Message) -> Message | None:
        """Deliver a message; returns the handler's reply, if any."""
        if to not in self._mailboxes:
            raise ManagerError(f"unknown endpoint {to!r}")
        self.delivered += 1
        handler = self._handlers.get(to)
        if handler is not None:
            return handler(message)
        self._mailboxes[to].append(message)
        return None

    def receive(self, name: str) -> Message | None:
        """Pop the oldest queued message for a pull endpoint."""
        if name not in self._mailboxes:
            raise ManagerError(f"unknown endpoint {name!r}")
        box = self._mailboxes[name]
        return box.popleft() if box else None

    def pending(self, name: str) -> int:
        if name not in self._mailboxes:
            raise ManagerError(f"unknown endpoint {name!r}")
        return len(self._mailboxes[name])
