"""In-process message transport.

A deliberately simple substitute for the network layer of a deployed
GRM/LRM system: named endpoints, FIFO mailboxes, synchronous ``deliver``.
Keeping the transport explicit (instead of direct method calls) preserves
the protocol boundary — every GRM/LRM interaction goes through messages
that a real distributed deployment could serialise.

Message accounting: ``delivered`` is the global count (kept for
backwards compatibility), ``sent_by_endpoint`` / ``received_by_endpoint``
break it down per endpoint, and when :mod:`repro.obs` is enabled the same
counts flow into the shared registry (``transport.sent{endpoint=...}``)
along with a per-endpoint handler-latency histogram.

Trace propagation: with observability enabled, each delivery runs inside
a ``transport.send`` span whose context is stamped onto the message
(``Message.ctx``) and re-activated around the handler, so the handler's
spans — and, for pull endpoints, whatever the eventual consumer records
under :func:`repro.obs.use_context` — join the sender's trace.  With
observability disabled the original zero-overhead path is untouched.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import replace

from ..errors import ManagerError
from ..obs import get_observer, use_context
from .messages import Message

__all__ = ["InProcessTransport"]


class InProcessTransport:
    """Named mailboxes with synchronous delivery and optional handlers.

    Endpoints register either a handler (push: invoked on delivery, may
    return a reply message) or nothing (pull: messages queue in a mailbox
    until :meth:`receive`).
    """

    def __init__(self) -> None:
        self._handlers: dict[str, Callable[[Message], Message | None]] = {}
        self._mailboxes: dict[str, deque[Message]] = {}
        self.delivered = 0
        self.sent_by_endpoint: dict[str, int] = {}
        self.received_by_endpoint: dict[str, int] = {}

    def register(
        self,
        name: str,
        handler: Callable[[Message], Message | None] | None = None,
    ) -> None:
        if name in self._mailboxes:
            raise ManagerError(f"endpoint {name!r} already registered")
        self._mailboxes[name] = deque()
        self.sent_by_endpoint[name] = 0
        self.received_by_endpoint[name] = 0
        if handler is not None:
            self._handlers[name] = handler

    def endpoints(self) -> list[str]:
        return list(self._mailboxes)

    def _unknown(self, name: str) -> ManagerError:
        known = ", ".join(sorted(self._mailboxes)) or "<none registered>"
        return ManagerError(f"unknown endpoint {name!r}; known endpoints: {known}")

    def send(self, to: str, message: Message) -> Message | None:
        """Deliver a message; returns the handler's reply, if any."""
        if to not in self._mailboxes:
            raise self._unknown(to)
        self.delivered += 1
        self.sent_by_endpoint[to] += 1
        obs = get_observer()
        handler = self._handlers.get(to)
        if obs.enabled:
            return self._send_observed(to, message, handler, obs)
        if handler is not None:
            return handler(message)
        self._mailboxes[to].append(message)
        return None

    def _send_observed(self, to, message, handler, obs) -> Message | None:
        """The instrumented delivery path: span + context stamping."""
        msg_type = type(message).__name__
        obs.counter("transport.sent", endpoint=to, type=msg_type)
        with obs.span("transport.send", endpoint=to, type=msg_type) as sp:
            if message.ctx is None and sp.context is not None:
                # Stamp the hop's own context so the receiver's spans
                # become children of this transport.send span.
                message = replace(message, ctx=sp.context)
            if handler is not None:
                start = time.perf_counter()
                try:
                    with use_context(message.ctx):
                        return handler(message)
                finally:
                    obs.histogram(
                        "transport.handle_seconds",
                        time.perf_counter() - start,
                        endpoint=to,
                    )
            self._mailboxes[to].append(message)
            return None

    def receive(self, name: str) -> Message | None:
        """Pop the oldest queued message for a pull endpoint.

        The returned message still carries its sender's trace context;
        consumers that do traced work on it should wrap that work in
        ``repro.obs.use_context(message.ctx)``.
        """
        if name not in self._mailboxes:
            raise self._unknown(name)
        box = self._mailboxes[name]
        if not box:
            return None
        self.received_by_endpoint[name] += 1
        get_observer().counter("transport.received", endpoint=name)
        return box.popleft()

    def pending(self, name: str) -> int:
        if name not in self._mailboxes:
            raise self._unknown(name)
        return len(self._mailboxes[name])
