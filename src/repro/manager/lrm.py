"""Local resource manager.

An LRM owns one principal's physical resources, reports availability to
the GRM, and fulfils the GRM's allocation decisions ("fulfilling resource
allocation according to the GRM's decisions").  Reservations are tracked
per grant so releases restore exactly what was taken.
"""

from __future__ import annotations

from ..errors import ManagerError
from ..obs import get_observer
from ..units import ResourceVector
from .messages import AvailabilityReport, Message

__all__ = ["LocalResourceManager"]


class LocalResourceManager:
    """Owns and meters one principal's resources.

    ::

        lrm = LocalResourceManager("isp0", ResourceVector(general=10.0))
        lrm.attach(transport)
        lrm.report("general")            # -> AvailabilityReport to the GRM
    """

    def __init__(self, principal: str, capacity: ResourceVector, grm: str = "grm"):
        self.principal = principal
        self.capacity = capacity
        self.grm = grm
        self._reserved: dict[int, ResourceVector] = {}
        self.transport = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, transport) -> None:
        """Register this LRM on a transport (endpoint named after it)."""
        self.transport = transport
        transport.register(self.principal, self.handle)

    # -- resource accounting -------------------------------------------------------

    @property
    def reserved(self) -> ResourceVector:
        total = ResourceVector()
        for r in self._reserved.values():
            total = total + r
        return total

    def available(self, resource_type: str = "general") -> float:
        return max(self.capacity[resource_type] - self.reserved[resource_type], 0.0)

    def reserve(self, grant_id: int, amount: ResourceVector) -> None:
        """Set aside resources for a grant the GRM issued."""
        for rtype, qty in amount.items():
            if qty > self.available(rtype) + 1e-9:
                raise ManagerError(
                    f"LRM {self.principal!r} asked to reserve {qty:g} {rtype} "
                    f"but only {self.available(rtype):g} is free"
                )
        if grant_id in self._reserved:
            self._reserved[grant_id] = self._reserved[grant_id] + amount
        else:
            self._reserved[grant_id] = amount

    def release(self, grant_id: int) -> ResourceVector:
        """Return the resources held for a grant."""
        try:
            return self._reserved.pop(grant_id)
        except KeyError:
            raise ManagerError(
                f"LRM {self.principal!r} holds no reservation for grant {grant_id}"
            ) from None

    # -- protocol ---------------------------------------------------------------------

    def report(self, resource_type: str = "general"):
        """Push an availability report to the GRM.

        Runs inside an ``lrm.report`` span, so when tracing is on the
        transport hop and the GRM's handling join the report's trace.
        """
        if self.transport is None:
            raise ManagerError(f"LRM {self.principal!r} is not attached")
        obs = get_observer()
        obs.counter("lrm.reports", principal=self.principal)
        with obs.span("lrm.report", principal=self.principal):
            return self.transport.send(
                self.grm,
                AvailabilityReport(
                    sender=self.principal,
                    resource_type=resource_type,
                    available=self.available(resource_type),
                ),
            )

    def handle(self, message: Message) -> Message | None:
        """LRMs only receive informational messages in this implementation;
        reservations are driven by the GRM through :meth:`reserve`."""
        return None
