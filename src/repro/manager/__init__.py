"""The GRM/LRM resource-manager architecture (Section 3.2).

"The resource management system has two components: a centralized global
resource manager (GRM) and multiple local resource managers (LRM).  The
GRM provides services to manage sharing agreements and to schedule
resources among local resource managers.  LRMs are responsible for
providing resource availability information to the GRM dynamically, and
fulfilling resource allocation according to the GRM's decisions.  The
architecture also permits splitting of the GRMs into multiple levels, each
responsible for a subset of the LRMs."

This package implements that architecture over an in-process
message-passing transport (:mod:`~repro.manager.transport`), so the
allocation engine is exercised through the same two-component protocol a
distributed deployment would use:

- :class:`~repro.manager.lrm.LocalResourceManager` — owns physical
  resources, reports availability, executes grants/releases;
- :class:`~repro.manager.grm.GlobalResourceManager` — owns the agreement
  registry (a ticket/currency :class:`~repro.economy.Bank`), tracks
  availability reports, and answers allocation requests with the LP
  allocator;
- multi-level GRMs: a GRM can delegate a subset of principals to a child
  GRM, mirroring the paper's hierarchical split.
"""

from .grm import GlobalResourceManager
from .hierarchy import HierarchicalGRM, build_hierarchical_grm
from .lrm import LocalResourceManager
from .messages import (
    AllocationGrant,
    AllocationRequestMsg,
    AvailabilityBatch,
    AvailabilityReport,
    Message,
    ReleaseMsg,
)
from .transport import InProcessTransport

__all__ = [
    "GlobalResourceManager",
    "HierarchicalGRM",
    "build_hierarchical_grm",
    "LocalResourceManager",
    "InProcessTransport",
    "Message",
    "AvailabilityReport",
    "AvailabilityBatch",
    "AllocationRequestMsg",
    "AllocationGrant",
    "ReleaseMsg",
]
