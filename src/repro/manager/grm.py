"""Global resource manager.

The GRM owns the agreement registry (a ticket/currency
:class:`~repro.economy.Bank`), keeps the latest availability report from
every LRM, and answers allocation requests by solving the Section-3 LP
over the agreement system evaluated at current availability.  It can
delegate a subset of principals to a child GRM ("the architecture also
permits splitting of the GRMs into multiple levels").
"""

from __future__ import annotations

import numpy as np

from ..agreements.matrix import AgreementSystem
from ..allocation.lp_allocator import allocate_lp
from ..economy.bank import Bank
from ..errors import (
    InsufficientResourcesError,
    ManagerError,
    UnknownPrincipalError,
)
from ..obs import get_observer
from ..units import ResourceVector
from .messages import (
    AllocationDenied,
    AllocationGrant,
    AllocationRequestMsg,
    AvailabilityReport,
    Message,
    ReleaseMsg,
)

__all__ = ["GlobalResourceManager"]


class GlobalResourceManager:
    """Agreement registry + availability tracker + LP scheduler.

    ::

        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        ... LRMs report availability ...
        reply = transport.send("grm", AllocationRequestMsg(
            sender="isp3", principal="isp3", amount=2.5))
    """

    def __init__(self, name: str, bank: Bank):
        self.name = name
        self.bank = bank
        self.transport = None
        # latest availability per (principal, resource_type)
        self._availability: dict[tuple[str, str], float] = {}
        # open grants: grant msg_id -> (resource_type, takes)
        self._grants: dict[int, tuple[str, tuple[tuple[str, float], ...]]] = {}
        # child GRMs: principal -> child endpoint name
        self._delegates: dict[str, str] = {}
        self.requests_served = 0
        self.requests_denied = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, transport) -> None:
        self.transport = transport
        transport.register(self.name, self.handle)

    def delegate(self, child_grm_name: str, principals: list[str]) -> None:
        """Route requests from these principals to a child GRM."""
        for p in principals:
            self._delegates[p] = child_grm_name

    # -- availability ---------------------------------------------------------------

    def availability(self, principal: str, resource_type: str = "general") -> float:
        return self._availability.get((principal, resource_type), 0.0)

    def availability_vector(self, resource_type: str = "general") -> np.ndarray:
        principals = self.bank.principals()
        return np.array(
            [self.availability(p, resource_type) for p in principals]
        )

    # -- protocol --------------------------------------------------------------------

    def handle(self, message: Message) -> Message | None:
        if isinstance(message, AvailabilityReport):
            self._availability[(message.sender, message.resource_type)] = (
                message.available
            )
            return None
        if isinstance(message, AllocationRequestMsg):
            return self._allocate(message)
        if isinstance(message, ReleaseMsg):
            self._release(message)
            return None
        raise ManagerError(f"GRM {self.name!r} cannot handle {type(message).__name__}")

    def _allocate(self, msg: AllocationRequestMsg) -> Message:
        principals = self.bank.principals()
        if msg.principal not in principals:
            raise UnknownPrincipalError(msg.principal)
        if msg.principal in self._delegates and self.transport is not None:
            get_observer().counter("grm.delegated", grm=self.name)
            return self.transport.send(self._delegates[msg.principal], msg)

        obs = get_observer()
        with obs.span("grm.allocate", grm=self.name, principal=msg.principal):
            system = AgreementSystem.from_bank(self.bank, msg.resource_type)
            live = system.with_capacities(
                self.availability_vector(msg.resource_type)
            )
            try:
                allocation = allocate_lp(
                    live, msg.principal, msg.amount, level=msg.level
                )
            except InsufficientResourcesError as exc:
                self.requests_denied += 1
                obs.counter("grm.requests_denied", grm=self.name)
                return AllocationDenied(
                    sender=self.name,
                    request_id=msg.msg_id,
                    reason=str(exc),
                    available=exc.available,
                )
            takes = tuple(
                (p, float(t))
                for p, t in zip(principals, allocation.take)
                if t > 1e-12
            )
            grant = AllocationGrant(
                sender=self.name,
                request_id=msg.msg_id,
                takes=takes,
                theta=allocation.theta,
            )
            # Update cached availability until fresh reports arrive, and
            # remember the grant so a release can restore it.
            for p, t in takes:
                key = (p, msg.resource_type)
                self._availability[key] = max(
                    self._availability.get(key, 0.0) - t, 0.0
                )
            self._grants[grant.msg_id] = (msg.resource_type, takes)
            self.requests_served += 1
            obs.counter("grm.requests_served", grm=self.name)
            return grant

    def _release(self, msg: ReleaseMsg) -> None:
        try:
            resource_type, takes = self._grants.pop(msg.grant_id)
        except KeyError:
            raise ManagerError(
                f"GRM {self.name!r} has no open grant {msg.grant_id}"
            ) from None
        for p, t in takes:
            key = (p, resource_type)
            self._availability[key] = self._availability.get(key, 0.0) + t

    # -- conveniences -----------------------------------------------------------------

    def register_principal(
        self, principal: str, capacity: ResourceVector | None = None
    ) -> None:
        """Create the principal's default currency (and deposit capacity)."""
        self.bank.create_currency(principal)
        if capacity is not None:
            for rtype, qty in capacity.items():
                self.bank.deposit_capacity(principal, qty, rtype)

    def open_grants(self) -> int:
        return len(self._grants)
