"""Global resource manager.

The GRM owns the agreement registry (a ticket/currency
:class:`~repro.economy.Bank`), keeps the latest availability report from
every LRM, and answers allocation requests by solving the Section-3 LP
over the agreement system evaluated at current availability.  It can
delegate a subset of principals to a child GRM ("the architecture also
permits splitting of the GRMs into multiple levels").

Hot path: allocation reuses the bank's version-keyed topology cache
(:meth:`repro.economy.Bank.topology`), so the O(2^n * n^2) coefficient
DP and the funding-graph flattening run once per *agreement change*
rather than once per request; each request only binds the current
availability vector to the cached topology as a
:class:`~repro.agreements.topology.CapacityView`.  Availability itself
is kept in per-resource-type vectors indexed through a prebuilt
name -> index map, so reports, grants and releases are O(1) updates and
:meth:`availability_vector` is a copy, not a rebuild.
"""

from __future__ import annotations

import numpy as np

from .. import sanitize as _sanitize
from ..allocation.lp_allocator import allocate_lp
from ..economy.bank import Bank
from ..errors import (
    InsufficientResourcesError,
    ManagerError,
    UnknownPrincipalError,
)
from ..obs import get_observer
from ..units import ResourceVector
from .messages import (
    AllocationDenied,
    AllocationGrant,
    AllocationRequestMsg,
    AvailabilityBatch,
    AvailabilityReport,
    Message,
    ReleaseMsg,
)

__all__ = ["GlobalResourceManager"]


class GlobalResourceManager:
    """Agreement registry + availability tracker + LP scheduler.

    ::

        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        ... LRMs report availability ...
        reply = transport.send("grm", AllocationRequestMsg(
            sender="isp3", principal="isp3", amount=2.5))
    """

    def __init__(self, name: str, bank: Bank):
        self.name = name
        self.bank = bank
        self.transport = None
        # availability vectors per resource type, indexed by principal
        self._avail: dict[str, np.ndarray] = {}
        self._principals: list[str] = []
        self._pindex: dict[str, int] = {}
        self._pindex_version = -1  # bank version the index was built at
        # open grants: grant msg_id -> (resource_type, takes)
        self._grants: dict[int, tuple[str, tuple[tuple[str, float], ...]]] = {}
        # child GRMs: principal -> child endpoint name
        self._delegates: dict[str, str] = {}
        self.requests_served = 0
        self.requests_denied = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, transport) -> None:
        self.transport = transport
        transport.register(self.name, self.handle)

    def delegate(self, child_grm_name: str, principals: list[str]) -> None:
        """Route requests from these principals to a child GRM."""
        for p in principals:
            self._delegates[p] = child_grm_name

    # -- availability ---------------------------------------------------------------

    def _sync_principals(self) -> None:
        """Refresh the name -> index map after a bank mutation.

        Availability values survive re-indexing by name, so registering a
        new principal (or any other agreement change) never drops the
        reports already received.
        """
        if self._pindex_version == self.bank.version:
            return
        principals = self.bank.principals()
        if principals != self._principals:
            old_index = self._pindex
            self._pindex = {p: i for i, p in enumerate(principals)}
            for rtype, old in self._avail.items():
                fresh = np.zeros(len(principals))
                for p, i in old_index.items():
                    j = self._pindex.get(p)
                    if j is not None:
                        fresh[j] = old[i]
                self._avail[rtype] = fresh
            self._principals = principals
        self._pindex_version = self.bank.version

    def _avail_vector(self, resource_type: str) -> np.ndarray:
        self._sync_principals()
        vec = self._avail.get(resource_type)
        if vec is None or vec.shape[0] != len(self._principals):
            vec = self._avail[resource_type] = np.zeros(len(self._principals))
        return vec

    def set_availability(
        self, principal: str, available: float, resource_type: str = "general"
    ) -> None:
        """Record the latest availability report for one principal."""
        vec = self._avail_vector(resource_type)
        try:
            vec[self._pindex[principal]] = available
        except KeyError:
            raise UnknownPrincipalError(principal) from None

    def availability(self, principal: str, resource_type: str = "general") -> float:
        vec = self._avail_vector(resource_type)
        idx = self._pindex.get(principal)
        return float(vec[idx]) if idx is not None else 0.0

    def availability_vector(self, resource_type: str = "general") -> np.ndarray:
        return self._avail_vector(resource_type).copy()

    # -- protocol --------------------------------------------------------------------

    def handle(self, message: Message) -> Message | None:
        if isinstance(message, AvailabilityReport):
            self.set_availability(
                message.sender, message.available, message.resource_type
            )
            return None
        if isinstance(message, AvailabilityBatch):
            vec = self._avail_vector(message.resource_type)
            for principal, available in message.reports:
                try:
                    vec[self._pindex[principal]] = available
                except KeyError:
                    raise UnknownPrincipalError(principal) from None
            return None
        if isinstance(message, AllocationRequestMsg):
            return self._allocate(message)
        if isinstance(message, ReleaseMsg):
            self._release(message)
            return None
        raise ManagerError(f"GRM {self.name!r} cannot handle {type(message).__name__}")

    def _allocate(self, msg: AllocationRequestMsg) -> Message:
        self._sync_principals()
        if msg.principal not in self._pindex:
            raise UnknownPrincipalError(msg.principal)
        if msg.principal in self._delegates and self.transport is not None:
            get_observer().counter("grm.delegated", grm=self.name)
            return self.transport.send(self._delegates[msg.principal], msg)

        obs = get_observer()
        with obs.span("grm.allocate", grm=self.name, principal=msg.principal):
            # The topology is cached on the bank version: unchanged
            # agreements mean no re-flattening and no coefficient DP, just
            # a view over the live availability vector.
            topology = self.bank.topology(msg.resource_type)
            live = topology.view(self.availability_vector(msg.resource_type))
            # The flight-recorder entry: deeper layers (the LP solver)
            # attach their statistics to it while the block is open.
            with obs.decision(
                request_id=msg.msg_id,
                requestor=msg.principal,
                resource_type=msg.resource_type,
                amount=float(msg.amount),
                grm=self.name,
                bank_version=self.bank.version,
            ) as dec:
                if obs.enabled:
                    dec.set(
                        availability_before=self._named(live.V),
                        capacities_before=self._named(
                            live.capacities(msg.level)
                        ),
                    )
                try:
                    allocation = allocate_lp(
                        live, msg.principal, msg.amount, level=msg.level
                    )
                except InsufficientResourcesError as exc:
                    self.requests_denied += 1
                    obs.counter("grm.requests_denied", grm=self.name)
                    dec.set(
                        outcome="denied",
                        reason=str(exc),
                        available=float(exc.available),
                    )
                    return AllocationDenied(
                        sender=self.name,
                        request_id=msg.msg_id,
                        reason=str(exc),
                        available=exc.available,
                    )
                takes = tuple(
                    (p, float(t))
                    for p, t in zip(self._principals, allocation.take)
                    if t > 1e-12
                )
                grant = AllocationGrant(
                    sender=self.name,
                    request_id=msg.msg_id,
                    takes=takes,
                    theta=allocation.theta,
                )
                dec.set(
                    outcome="granted",
                    granted=float(allocation.satisfied),
                    takes=takes,
                    theta=float(allocation.theta),
                )
                if obs.enabled:
                    dec.set(capacities_after=self._named(allocation.new_C))
                if _sanitize.enabled():
                    # Grant epilogue: the split on the wire conserves the
                    # granted amount, capacities only shrank, and the bank
                    # did not drift at a constant version.
                    _sanitize.check_grant(takes, allocation.satisfied)
                    _sanitize.check_allocation(
                        live.capacities(msg.level), allocation
                    )
                    _sanitize.check_bank(self.bank)
                # Update cached availability until fresh reports arrive, and
                # remember the grant so a release can restore it.
                vec = self._avail_vector(msg.resource_type)
                for p, t in takes:
                    i = self._pindex[p]
                    vec[i] = max(vec[i] - t, 0.0)
                self._grants[grant.msg_id] = (msg.resource_type, takes)
                self.requests_served += 1
                obs.counter("grm.requests_served", grm=self.name)
                return grant

    def _named(self, vector) -> dict[str, float]:
        """A per-principal dict view of a vector (for decision records)."""
        return {p: float(v) for p, v in zip(self._principals, vector)}

    def _release(self, msg: ReleaseMsg) -> None:
        try:
            resource_type, takes = self._grants.pop(msg.grant_id)
        except KeyError:
            raise ManagerError(
                f"GRM {self.name!r} has no open grant {msg.grant_id}"
            ) from None
        vec = self._avail_vector(resource_type)
        for p, t in takes:
            i = self._pindex.get(p)
            if i is not None:
                vec[i] += t

    # -- conveniences -----------------------------------------------------------------

    def register_principal(
        self, principal: str, capacity: ResourceVector | None = None
    ) -> None:
        """Create the principal's default currency (and deposit capacity)."""
        self.bank.create_currency(principal)
        if capacity is not None:
            for rtype, qty in capacity.items():
                self.bank.deposit_capacity(principal, qty, rtype)

    def open_grants(self) -> int:
        return len(self._grants)
