"""Message types exchanged between LRMs and the GRM.

Every message optionally carries a :class:`~repro.obs.context.TraceContext`
(``ctx``): the transport stamps outbound messages with the sending span's
context and re-activates it on the receiving side, so one allocation's
spans form a single causal tree across manager hops.  ``ctx`` is ``None``
whenever observability is disabled — messages then cost exactly what
they did before tracing existed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..obs.context import TraceContext

__all__ = [
    "Message",
    "AvailabilityReport",
    "AvailabilityBatch",
    "AllocationRequestMsg",
    "AllocationGrant",
    "AllocationDenied",
    "ReleaseMsg",
]

_msg_counter = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """Base class: every message carries sender, a unique id, and an
    optional trace context for cross-hop causality."""

    sender: str
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    ctx: TraceContext | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class AvailabilityReport(Message):
    """LRM -> GRM: current available quantity of one resource type.

    "LRMs are responsible for providing resource availability information
    to the GRM dynamically."
    """

    resource_type: str = "general"
    available: float = 0.0


@dataclass(frozen=True)
class AvailabilityBatch(Message):
    """Aggregator -> GRM: availability for many principals in one send.

    Semantically identical to one :class:`AvailabilityReport` per entry,
    but a consultation that refreshes every proxy's availability costs a
    single message instead of n.  ``reports`` holds ``(principal,
    available)`` pairs for one resource type.  The per-principal report
    path remains for individual LRMs.
    """

    resource_type: str = "general"
    reports: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class AllocationRequestMsg(Message):
    """LRM -> GRM: a principal requests ``amount`` of ``resource_type``."""

    principal: str = ""
    resource_type: str = "general"
    amount: float = 0.0
    level: int | None = None


@dataclass(frozen=True)
class AllocationGrant(Message):
    """GRM -> LRM: the per-donor take plan answering a request."""

    request_id: int = 0
    takes: tuple[tuple[str, float], ...] = ()
    theta: float = 0.0

    def take_for(self, principal: str) -> float:
        return sum(q for p, q in self.takes if p == principal)

    @property
    def total(self) -> float:
        return sum(q for _, q in self.takes)


@dataclass(frozen=True)
class AllocationDenied(Message):
    """GRM -> LRM: the request cannot be satisfied."""

    request_id: int = 0
    reason: str = ""
    available: float = 0.0


@dataclass(frozen=True)
class ReleaseMsg(Message):
    """LRM -> GRM: previously granted resources are returned."""

    grant_id: int = 0
