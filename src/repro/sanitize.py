"""Runtime invariant sanitizer for the agreement economy (``REPRO_SANITIZE=1``).

The static rules in :mod:`repro.lint` prove what they can about the
*source*; this module asserts the same contracts about *live values*, in
cheap epilogue hooks at the spots where a violated invariant would
otherwise propagate silently into later decisions:

- **Bank** (:meth:`repro.economy.Bank._bump_version`): the version
  counter is strictly monotonic, and — checked from the GRM epilogue —
  the currency valuation never changes while the version stands still
  (a tampered ticket or an un-bumped mutation would poison every
  version-keyed topology cache downstream).
- **Allocators** (``_make_result`` / ``_finish`` / ``_result``): takes
  are non-negative and conserve the satisfied amount, ``theta >= 0``,
  and post-allocation effective capacities never exceed pre-allocation
  ones (``C' <= C``).
- **GRM** (:meth:`~repro.manager.grm.GlobalResourceManager._allocate`):
  the donor split on the grant message sums to the granted amount.
- **Topology** (:meth:`~repro.agreements.topology.AgreementTopology.coefficients`):
  transitive coefficients are non-negative with a zero diagonal, and the
  Section-3.2 overdraft clamp keeps ``K`` within ``[0, 1]``.

Failures raise :class:`~repro.errors.InvariantViolation`; when an
allocation decision is in flight (:func:`repro.obs.decision.current_decision`)
a snapshot of the half-built :class:`~repro.obs.decision.DecisionRecord`
rides along on the exception, so the audit context survives the crash.

Everything is gated on :func:`enabled` — initialised from the
``REPRO_SANITIZE`` environment variable and togglable at runtime
(:func:`enable` / :func:`disable`) for tests.  Disabled, every hook is a
single predicate check.
"""

from __future__ import annotations

import os

import numpy as np

from .errors import InvariantViolation

__all__ = [
    "enabled",
    "enable",
    "disable",
    "violation",
    "bank_mutated",
    "check_bank",
    "check_grant",
    "check_allocation",
    "check_coefficients",
]

#: conservation tolerance — looser than the LP's own feasibility
#: tolerance so solver slack never trips a false positive
_TOL = 1e-6


def _env_truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() not in ("", "0", "false", "no", "off")


_enabled = _env_truthy(os.environ.get("REPRO_SANITIZE"))


def enabled() -> bool:
    """Whether the sanitizer hooks are active."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def violation(invariant: str, message: str, **details) -> None:
    """Raise :class:`InvariantViolation`, attaching the active decision.

    Imports :mod:`repro.obs.decision` lazily so the disabled path never
    touches the observability stack.
    """
    from .obs.decision import DecisionRecord, current_decision

    decision = None
    builder = current_decision()
    if builder is not None and getattr(builder, "fields", None):
        decision = DecisionRecord.from_fields(dict(builder.fields))
    raise InvariantViolation(
        message, invariant=invariant, details=details, decision=decision
    )


# -- bank ---------------------------------------------------------------------


def bank_mutated(bank, prev_version: int) -> None:
    """Epilogue of :meth:`Bank._bump_version`: the counter moved forward."""
    if bank.version <= prev_version:
        violation(
            "bank-version-monotonic",
            "bank version did not advance on mutation",
            prev_version=prev_version,
            version=bank.version,
        )


def check_bank(bank) -> None:
    """The bank's valuation is consistent with its version counter.

    Recomputes currency values and compares them against the snapshot
    taken at the same version.  A mismatch means bank state changed
    *without* a version bump — e.g. a ticket's ``face_value`` was
    assigned directly — which silently invalidates every version-keyed
    topology cache.  Skipped (and the snapshot cleared) when valuation
    itself fails, so a deliberately cyclic funding graph still raises
    its own :class:`~repro.errors.CurrencyCycleError` at the documented
    call sites.
    """
    from .errors import EconomyError

    try:
        current = bank.currency_values()
    except EconomyError:
        bank._sanitize_state = None
        return
    state = getattr(bank, "_sanitize_state", None)
    if state is not None and state[0] == bank.version:
        snapshot = state[1]
        names = set(snapshot) | set(current)
        for name in names:
            vec_then = snapshot.get(name)
            vec_now = current.get(name)
            if vec_then is None or vec_now is None or vec_then != vec_now:
                violation(
                    "bank-value-conservation",
                    "bank state changed without a version bump "
                    "(ticket/currency values drifted at a constant version)",
                    bank_version=bank.version,
                    currency=name,
                    value_then=None if vec_then is None else dict(vec_then),
                    value_now=None if vec_now is None else dict(vec_now),
                )
    bank._sanitize_state = (bank.version, current)


# -- allocation ---------------------------------------------------------------


def check_grant(takes, granted: float) -> None:
    """The donor split on a grant sums to the granted amount."""
    total = float(sum(t for _, t in takes))
    if abs(total - float(granted)) > _TOL:
        violation(
            "donor-split-conservation",
            "grant's donor split does not sum to the granted amount",
            granted=float(granted),
            split_total=total,
            takes=[(p, float(t)) for p, t in takes],
        )
    for p, t in takes:
        if t < -_TOL:
            violation(
                "donor-split-nonnegative",
                "grant contains a negative take",
                donor=p,
                take=float(t),
            )


def check_allocation(C_before, allocation) -> None:
    """Epilogue for every allocator result (LP, hierarchical, baselines).

    Asserts the Section-3.1 postconditions on the finished
    :class:`~repro.allocation.problem.Allocation`: non-negative takes
    that conserve ``satisfied``, a non-negative perturbation ``theta``,
    and effective capacities that only ever shrink (``C' <= C``).
    """
    take = np.asarray(allocation.take, dtype=float)
    if take.size and float(take.min()) < -_TOL:
        violation(
            "take-nonnegative",
            "allocation contains a negative take",
            scheme=allocation.scheme,
            min_take=float(take.min()),
        )
    total = float(take.sum())
    if abs(total - float(allocation.satisfied)) > _TOL:
        violation(
            "take-conservation",
            "sum of takes does not equal the satisfied amount",
            scheme=allocation.scheme,
            satisfied=float(allocation.satisfied),
            take_total=total,
        )
    if float(allocation.theta) < -_TOL:
        violation(
            "theta-nonnegative",
            "allocation perturbation theta is negative",
            scheme=allocation.scheme,
            theta=float(allocation.theta),
        )
    if C_before is not None and allocation.new_C is not None:
        before = np.asarray(C_before, dtype=float)
        after = np.asarray(allocation.new_C, dtype=float)
        if before.shape == after.shape and after.size:
            excess_idx = int(np.argmax(after - before))
            if float(after[excess_idx] - before[excess_idx]) > _TOL:
                violation(
                    "capacity-monotone",
                    "post-allocation effective capacity exceeds the "
                    "pre-allocation one (C' > C)",
                    scheme=allocation.scheme,
                    index=excess_idx,
                    before=float(before[excess_idx]),
                    after=float(after[excess_idx]),
                )


# -- topology -----------------------------------------------------------------


def check_coefficients(T, allow_overdraft: bool) -> None:
    """Transitive coefficients are well-formed; the overdraft clamp held.

    ``T^(m)`` entries are fractions of a donor's resources, so they are
    non-negative with a zero diagonal; under Section-3.2 overdraft
    semantics the clamp ``K = min(T, 1)`` additionally bounds them by 1.
    """
    T = np.asarray(T, dtype=float)
    if T.size == 0:
        return
    if float(T.min()) < -_TOL:
        violation(
            "coefficients-nonnegative",
            "transitive coefficient matrix has a negative entry",
            min_entry=float(T.min()),
        )
    diag_max = float(np.abs(np.diag(T)).max()) if T.shape[0] else 0.0
    if diag_max > _TOL:
        violation(
            "coefficients-zero-diagonal",
            "transitive coefficient matrix has a nonzero diagonal",
            diag_max=diag_max,
        )
    if allow_overdraft and float(T.max()) > 1.0 + _TOL:
        violation(
            "overdraft-clamp-bounds",
            "overdraft clamp K exceeded 1 (K must lie in [0, 1])",
            max_entry=float(T.max()),
        )
