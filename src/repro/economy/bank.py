"""The bank: registry and valuation engine for tickets and currencies.

The bank holds every currency and ticket, computes currency values, and
exports the ``(V, S, A)`` agreement matrices that the enforcement layer
(:mod:`repro.agreements`) consumes.

Valuation
---------
"The value of a currency is determined by the summation of all the backing
tickets (both absolute ones and relative ones)" and "a relative ticket's
real value is computed by multiplying the value of the currency from which
it is issued by its share of all the amount issued by that currency"
(Section 2.2; in Example 1 the share denominator is the issuing currency's
face value: R-Ticket4 with face 500 from currency A with face 1000 is worth
``value(A) * 500/1000``).

These equations are linear: with ``M[c, q]`` the summed fractions of
relative tickets issued by ``q`` backing ``c`` and ``b[c]`` the absolute
backing, values satisfy ``v = b + M v``.  The bank solves ``(I - M) v = b``
directly.  Cyclic funding graphs are fine as long as the cycle's product of
fractions is below 1 (the Neumann series converges); a non-contractive
cycle makes values undefined and raises
:class:`~repro.errors.CurrencyCycleError`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .. import sanitize as _sanitize
from ..agreements.topology import AgreementTopology, CapacityView
from ..errors import (
    CurrencyCycleError,
    DuplicateNameError,
    EconomyError,
    TicketRevokedError,
    UnknownCurrencyError,
    UnknownTicketError,
)
from ..obs import get_observer
from ..units import ResourceVector
from .currency import DEFAULT_FACE_VALUE, Currency
from .ticket import Ticket, TicketKind

__all__ = ["Bank"]

_SINGULAR_TOL = 1e-10


class Bank:
    """Registry of currencies and tickets with value computation.

    Typical construction of Figure 1's system::

        bank = Bank()
        for p in "ABCD":
            bank.create_currency(p)
        bank.deposit_capacity("A", 10.0, resource_type="disk")
        bank.deposit_capacity("B", 15.0, resource_type="disk")
        bank.issue_absolute_ticket("A", "C", 3.0, resource_type="disk")
        bank.issue_relative_ticket("A", "B", 500)
        bank.issue_relative_ticket("B", "D", 60)
    """

    def __init__(self) -> None:
        self._currencies: dict[str, Currency] = {}
        self._tickets: dict[int, Ticket] = {}
        self._version = 0
        # flattened topology per (resource_type, overdraft, flow_method),
        # valid for one bank version: key -> (version, topology, V)
        self._topology_cache: dict[tuple, tuple[int, AgreementTopology, np.ndarray]] = {}

    # -- versioning ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter, bumped by every currency/ticket mutation.

        Consumers key caches on it: equal versions guarantee an unchanged
        agreement structure, so flattened topologies (and their transitive
        coefficient caches) can be reused across scheduling epochs.
        """
        return self._version

    def _bump_version(self) -> None:
        prev = self._version
        self._version += 1
        if _sanitize.enabled():
            _sanitize.bank_mutated(self, prev)

    # -- registry ------------------------------------------------------------

    def create_currency(
        self,
        name: str,
        face_value: float = DEFAULT_FACE_VALUE,
        owner: str | None = None,
        virtual: bool = False,
    ) -> Currency:
        """Create a currency.  Default (non-virtual) currencies represent a
        principal and should be named after it; virtual currencies must name
        their creating principal as ``owner``."""
        if name in self._currencies:
            raise DuplicateNameError(f"currency {name!r} already exists")
        if virtual and owner is None:
            raise EconomyError(f"virtual currency {name!r} must declare an owner")
        cur = Currency(name=name, face_value=face_value, owner=owner, virtual=virtual)
        self._currencies[name] = cur
        self._bump_version()
        return cur

    def currency(self, name: str) -> Currency:
        try:
            return self._currencies[name]
        except KeyError:
            raise UnknownCurrencyError(name) from None

    def ticket(self, ticket_id: int) -> Ticket:
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise UnknownTicketError(ticket_id) from None

    @property
    def currencies(self) -> tuple[Currency, ...]:
        return tuple(self._currencies.values())

    @property
    def tickets(self) -> tuple[Ticket, ...]:
        return tuple(self._tickets.values())

    def principals(self) -> list[str]:
        """Owners of default (non-virtual) currencies, in creation order."""
        return [c.name for c in self._currencies.values() if not c.virtual]

    # -- ticket operations ----------------------------------------------------

    def _register(self, ticket: Ticket) -> Ticket:
        self._tickets[ticket.ticket_id] = ticket
        self.currency(ticket.backing).backing_tickets.append(ticket.ticket_id)
        if ticket.issuer is not None:
            self.currency(ticket.issuer).issued_tickets.append(ticket.ticket_id)
        self._bump_version()
        return ticket

    def deposit_capacity(
        self,
        currency: str,
        amount: float,
        resource_type: str = "general",
        name: str = "",
    ) -> Ticket:
        """Deposit raw owned capacity (a base absolute ticket, no issuer)."""
        self.currency(currency)  # validate
        return self._register(
            Ticket(
                kind=TicketKind.ABSOLUTE,
                face_value=float(amount),
                backing=currency,
                issuer=None,
                resource_type=resource_type,
                name=name,
            )
        )

    def issue_absolute_ticket(
        self,
        issuer: str,
        backing: str,
        value: float,
        resource_type: str = "general",
        name: str = "",
    ) -> Ticket:
        """Express an *absolute* agreement: ``issuer`` grants a constant
        quantity of one resource to ``backing`` (e.g. R-Ticket3: 3 TB)."""
        self.currency(issuer)
        self.currency(backing)
        if issuer == backing:
            raise EconomyError(f"currency {issuer!r} cannot back itself")
        return self._register(
            Ticket(
                kind=TicketKind.ABSOLUTE,
                face_value=float(value),
                backing=backing,
                issuer=issuer,
                resource_type=resource_type,
                name=name,
            )
        )

    def issue_relative_ticket(
        self,
        issuer: str,
        backing: str,
        face_value: float,
        name: str = "",
    ) -> Ticket:
        """Express a *relative* agreement: ``issuer`` shares
        ``face_value / issuer.face_value`` of its available resources."""
        self.currency(issuer)
        self.currency(backing)
        if issuer == backing:
            raise EconomyError(f"currency {issuer!r} cannot back itself")
        return self._register(
            Ticket(
                kind=TicketKind.RELATIVE,
                face_value=float(face_value),
                backing=backing,
                issuer=issuer,
                name=name,
            )
        )

    def revoke_ticket(self, ticket_id: int) -> None:
        """End the agreement the ticket expresses (its value drops to zero)."""
        t = self.ticket(ticket_id)
        if t.revoked:
            raise TicketRevokedError(f"ticket {ticket_id} is already revoked")
        t.revoked = True
        self._bump_version()

    def inflate_currency(self, name: str, factor: float) -> None:
        """Inflate/deflate a currency (Section 2.2's "printing paper money")."""
        self.currency(name).inflate(factor)
        self._bump_version()

    # -- valuation -------------------------------------------------------------

    def resource_types(self) -> list[str]:
        """All concrete resource types appearing on absolute tickets."""
        types = {t.resource_type for t in self._tickets.values() if not t.revoked}
        types.discard("*")
        return sorted(types)

    def _active_tickets(self) -> Iterable[Ticket]:
        return (t for t in self._tickets.values() if not t.revoked)

    def _value_system(self) -> tuple[list[str], np.ndarray, np.ndarray, list[str]]:
        """Build the linear valuation system.

        Returns ``(names, M, B, types)`` where values per resource type
        solve ``(I - M) V = B`` columnwise (column k is resource type
        ``types[k]``).
        """
        names = list(self._currencies)
        index = {n: i for i, n in enumerate(names)}
        types = self.resource_types()
        tindex = {t: k for k, t in enumerate(types)}
        n, k = len(names), len(types)
        M = np.zeros((n, n))
        B = np.zeros((n, k))
        for t in self._active_tickets():
            c = index[t.backing]
            if t.kind is TicketKind.ABSOLUTE:
                B[c, tindex[t.resource_type]] += t.face_value
            else:
                q = index[t.issuer]
                M[c, q] += t.face_value / self._currencies[t.issuer].face_value
        return names, M, B, types

    def currency_values(self) -> dict[str, ResourceVector]:
        """Value of every currency as a :class:`~repro.units.ResourceVector`."""
        names, M, B, types = self._value_system()
        if not names:
            return {}
        n = len(names)
        A = np.eye(n) - M
        # A singular or a non-contractive cycle leaves values undefined.
        if n and np.linalg.cond(A) > 1 / _SINGULAR_TOL:
            raise CurrencyCycleError(
                "currency funding graph has a non-contractive cycle; "
                "values are undefined (total shared fractions around a "
                "cycle must stay below 100%)"
            )
        V = np.linalg.solve(A, B) if B.size else np.zeros((n, 0))
        if np.any(V < -1e-9):
            raise CurrencyCycleError(
                "currency valuation produced negative values, indicating an "
                "expansive funding cycle"
            )
        out: dict[str, ResourceVector] = {}
        for i, name in enumerate(names):
            out[name] = ResourceVector(
                {t: max(float(V[i, j]), 0.0) for j, t in enumerate(types)}
            )
        return out

    def currency_value(self, name: str) -> ResourceVector:
        """Value of one currency (computes the full system)."""
        self.currency(name)
        return self.currency_values()[name]

    def ticket_real_value(self, ticket_id: int) -> ResourceVector:
        """Real value of a ticket.

        Absolute tickets are worth their face value; relative tickets are
        worth ``value(issuer) * face / issuer.face_value`` (Example 1:
        R-Ticket4 = 10 * 500/1000 = 5).
        """
        t = self.ticket(ticket_id)
        if t.revoked:
            return ResourceVector()
        if t.kind is TicketKind.ABSOLUTE:
            return ResourceVector({t.resource_type: t.face_value})
        issuer = self.currency(t.issuer)
        return self.currency_value(t.issuer) * (t.face_value / issuer.face_value)

    def overissued_currencies(self) -> list[str]:
        """Currencies whose issued relative faces exceed their face value.

        Such currencies promise more than 100% of their value — the
        "overdraft" situation of Section 3.2.  Legal, but the enforcement
        layer will clamp flows (see :mod:`repro.agreements.overdraft`).
        """
        issued: dict[str, float] = {}
        for t in self._active_tickets():
            if t.kind is TicketKind.RELATIVE:
                issued[t.issuer] = issued.get(t.issuer, 0.0) + t.face_value
        return sorted(
            name
            for name, total in issued.items()
            if total > self._currencies[name].face_value * (1 + 1e-12)
        )

    # -- export to the enforcement layer ------------------------------------------

    def to_agreement_system(
        self, resource_type: str = "general"
    ) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the funding graph into ``(principals, V, S, A)``.

        ``principals`` are the default currencies in creation order.  ``V``
        is raw owned capacity of the given resource type (base deposits into
        default currencies).  ``S[i, j]`` is the effective *fraction* of
        principal ``i``'s resources shared with principal ``j`` — direct
        relative tickets plus chains through virtual currencies (Example 2:
        A -> A2 -> B composes ``500/1000 * face8/face(A2)``).  ``A[i, j]``
        is the effective *absolute* quantity granted, including absolute
        tickets issued from virtual currencies (attributed to the virtual
        currency's owner) and the absolute component of relative tickets
        issued by virtual currencies funded with absolute tickets.

        The matrices feed :class:`repro.agreements.AgreementSystem`.
        """
        principals = self.principals()
        pindex = {p: i for i, p in enumerate(principals)}
        virtuals = [c.name for c in self._currencies.values() if c.virtual]
        vindex = {v: i for i, v in enumerate(virtuals)}
        n, nv = len(principals), len(virtuals)

        # contrib(c) for a currency c = (alpha over principals, beta) where
        # value-flow into c = sum_p alpha_p * flow(default_p) + beta.
        # Defaults contribute a unit of themselves; virtual currencies solve
        # a small linear system over virtual-to-virtual relative tickets.
        Mv = np.zeros((nv, nv))
        Bv = np.zeros((nv, n + 1))  # last column: absolute component
        for t in self._active_tickets():
            if t.backing not in vindex:
                continue
            r = vindex[t.backing]
            if t.kind is TicketKind.ABSOLUTE:
                if t.resource_type == resource_type:
                    Bv[r, n] += t.face_value
            else:
                frac = t.face_value / self._currencies[t.issuer].face_value
                if t.issuer in pindex:
                    Bv[r, pindex[t.issuer]] += frac
                else:
                    Mv[r, vindex[t.issuer]] += frac
        if nv:
            Av = np.eye(nv) - Mv
            if np.linalg.cond(Av) > 1 / _SINGULAR_TOL:
                raise CurrencyCycleError(
                    "virtual currencies form a non-contractive funding cycle"
                )
            contrib_v = np.linalg.solve(Av, Bv)
        else:
            contrib_v = np.zeros((0, n + 1))

        def contribution(currency: str) -> np.ndarray:
            out = np.zeros(n + 1)
            if currency in pindex:
                out[pindex[currency]] = 1.0
            else:
                out[:] = contrib_v[vindex[currency]]
            return out

        V = np.zeros(n)
        S = np.zeros((n, n))
        A = np.zeros((n, n))
        for t in self._active_tickets():
            if t.is_base_capacity:
                if t.backing in pindex and t.resource_type == resource_type:
                    V[pindex[t.backing]] += t.face_value
                continue
            if t.backing not in pindex:
                continue  # funds a virtual currency; handled via contrib
            j = pindex[t.backing]
            if t.kind is TicketKind.ABSOLUTE:
                if t.resource_type != resource_type:
                    continue
                owner = self._currencies[t.issuer].owner
                if owner in pindex and owner != t.backing:
                    A[pindex[owner], j] += t.face_value
            else:
                frac = t.face_value / self._currencies[t.issuer].face_value
                c = contribution(t.issuer) * frac
                for i in range(n):
                    if i != j and c[i] > 0:
                        S[i, j] += c[i]
                if c[n] > 0:
                    owner = self._currencies[t.issuer].owner
                    if owner in pindex and owner != t.backing:
                        A[pindex[owner], j] += c[n]
        return principals, V, S, A

    def _flattened(
        self, resource_type: str, allow_overdraft: bool, flow_method: str
    ) -> tuple[int, AgreementTopology, np.ndarray]:
        """The version-keyed cache entry behind :meth:`topology`.

        Rebuilds (re-flattening the funding graph and discarding the old
        coefficient cache) only when the bank has been mutated since the
        entry was made; every other call is a dictionary hit.  Counters:
        ``topology.cache_hit`` / ``topology.cache_miss`` / ``topology.rebuilds``.
        """
        key = (resource_type, bool(allow_overdraft), flow_method)
        obs = get_observer()
        entry = self._topology_cache.get(key)
        if entry is not None and entry[0] == self._version:
            if obs.enabled:
                obs.counter("topology.cache_hit", resource_type=resource_type)
            return entry
        obs.counter("topology.cache_miss", resource_type=resource_type)
        with obs.span(
            "topology.rebuild", resource_type=resource_type, version=self._version
        ):
            principals, V, S, A = self.to_agreement_system(resource_type)
            topology = AgreementTopology(
                principals,
                S,
                A if np.any(A) else None,
                allow_overdraft=allow_overdraft,
                flow_method=flow_method,
            )
        obs.counter("topology.rebuilds", resource_type=resource_type)
        V = np.asarray(V, dtype=float)
        V.flags.writeable = False
        entry = (self._version, topology, V)
        self._topology_cache[key] = entry
        return entry

    def topology(
        self,
        resource_type: str = "general",
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> AgreementTopology:
        """The flattened agreement topology, cached on ``(version, key)``.

        The returned :class:`~repro.agreements.topology.AgreementTopology`
        is shared between callers until the next bank mutation, so its
        per-level coefficient cache amortises across every allocation in
        an epoch — the hot-path win the GRM relies on.  Any mutation
        (create/issue/revoke/deposit/inflate) bumps :attr:`version` and
        forces a rebuild on next access, which is what makes a ticket
        revocation take effect on the very next scheduling decision.
        """
        return self._flattened(resource_type, allow_overdraft, flow_method)[1]

    def base_capacities(self, resource_type: str = "general") -> np.ndarray:
        """Raw owned capacities ``V`` (base deposits), cache-aligned with
        :meth:`topology` and in the same principal order."""
        return self._flattened(resource_type, False, "dp")[2]

    def capacity_view(
        self,
        resource_type: str = "general",
        *,
        allow_overdraft: bool = False,
        flow_method: str = "dp",
    ) -> CapacityView:
        """A :class:`~repro.agreements.topology.CapacityView` of the bank's
        deposited capacities over the cached topology."""
        _, topology, V = self._flattened(resource_type, allow_overdraft, flow_method)
        return topology.view(V)
