"""Constructors for the paper's worked examples (Figures 1 and 2).

These build the exact systems of Section 2.2's Example 1 and Example 2 and
are used both as documentation and as ground truth in the test suite:

Example 1 expected values
    value(R-Ticket4) = 10 * 500/1000 = 5 (disk),
    value(currency B) = 5 + 15 = 20,
    value(R-Ticket5) = 20 * 60/100 = 12.

Example 2 expected values
    value(A1) = value(R-Ticket3) = 3,
    value(A2) = value(R-Ticket4) = 5.
"""

from __future__ import annotations

from .bank import Bank
from .ticket import Ticket

__all__ = ["build_example_1", "build_example_2"]


def build_example_1() -> tuple[Bank, dict[str, Ticket]]:
    """Figure 1: four principals A..D, two disk resources, three agreements.

    - A owns 10 TB (A-Ticket1), B owns 15 TB (A-Ticket2);
    - A grants C 3 TB absolutely (R-Ticket3);
    - A shares 50% with B: relative R-Ticket4, face 500 of A's 1000;
    - B shares 60% with D: relative R-Ticket5, face 60 of B's 100.
    """
    bank = Bank()
    bank.create_currency("A", face_value=1000)
    bank.create_currency("B", face_value=100)
    bank.create_currency("C")
    bank.create_currency("D")
    tickets = {
        "A-Ticket1": bank.deposit_capacity("A", 10.0, "disk", name="A-Ticket1"),
        "A-Ticket2": bank.deposit_capacity("B", 15.0, "disk", name="A-Ticket2"),
        "R-Ticket3": bank.issue_absolute_ticket("A", "C", 3.0, "disk", name="R-Ticket3"),
        "R-Ticket4": bank.issue_relative_ticket("A", "B", 500, name="R-Ticket4"),
        "R-Ticket5": bank.issue_relative_ticket("B", "D", 60, name="R-Ticket5"),
    }
    return bank, tickets


def build_example_2() -> tuple[Bank, dict[str, Ticket]]:
    """Figure 2: Example 1's principals plus virtual currencies A1 and A2.

    A creates virtual currencies A1 (funded by R-Ticket3, worth 3) and A2
    (funded by R-Ticket4, worth 5).  A1 issues R-Ticket6 funding C; A2
    issues R-Ticket7 funding D and R-Ticket8 funding B.  Changing one
    virtual currency (inflating A1, or issuing more tickets from it) cannot
    affect agreements routed through the other.

    The figure does not give faces for tickets 6–8; we use A1/A2 face 100,
    R-Ticket6 the whole of A1 (face 100), and R-Ticket7/R-Ticket8 splitting
    A2 40/60.
    """
    bank = Bank()
    bank.create_currency("A", face_value=1000)
    bank.create_currency("B", face_value=100)
    bank.create_currency("C")
    bank.create_currency("D")
    bank.create_currency("A1", face_value=100, owner="A", virtual=True)
    bank.create_currency("A2", face_value=100, owner="A", virtual=True)
    tickets = {
        "A-Ticket1": bank.deposit_capacity("A", 10.0, "disk", name="A-Ticket1"),
        "A-Ticket2": bank.deposit_capacity("B", 15.0, "disk", name="A-Ticket2"),
        "R-Ticket3": bank.issue_relative_ticket("A", "A1", 300, name="R-Ticket3"),
        "R-Ticket4": bank.issue_relative_ticket("A", "A2", 500, name="R-Ticket4"),
        "R-Ticket6": bank.issue_relative_ticket("A1", "C", 100, name="R-Ticket6"),
        "R-Ticket7": bank.issue_relative_ticket("A2", "D", 40, name="R-Ticket7"),
        "R-Ticket8": bank.issue_relative_ticket("A2", "B", 60, name="R-Ticket8"),
    }
    return bank, tickets
