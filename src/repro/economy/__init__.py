"""Tickets and currencies for expressing resource sharing agreements.

This package implements Section 2 of the paper:

- :class:`~repro.economy.ticket.Ticket` — absolute or relative; encapsulates
  both *access* (possessing the right ticket type) and *capacity* (value);
- :class:`~repro.economy.currency.Currency` — denominates tickets; backed
  (funded) by tickets and issuing its own; may be a *virtual* currency that
  decouples subsets of agreements;
- :class:`~repro.economy.bank.Bank` — the registry holding all currencies
  and tickets; computes currency values (the fixed point of the funding
  graph, solved as a linear system), supports inflation/deflation,
  revocation, and exports the ``(V, S, A)`` agreement matrices consumed by
  the enforcement layer (:mod:`repro.agreements`).
- :mod:`~repro.economy.examples` — constructors replicating the paper's
  Example 1 (Figure 1) and Example 2 (Figure 2) systems.
"""

from .bank import Bank
from .currency import Currency
from .examples import build_example_1, build_example_2
from .ticket import Ticket, TicketKind

__all__ = [
    "Bank",
    "Currency",
    "Ticket",
    "TicketKind",
    "build_example_1",
    "build_example_2",
]
