"""Currency objects.

"Currencies denominate tickets.  Each currency is backed (or funded) by
tickets and in turn issues its own tickets" (Section 2.2).  A currency's
*face value* is the number of units outstanding — the denominator used when
valuing the relative tickets it issues.  Changing the face value inflates or
deflates the currency "similar to inflation caused by the government
printing more paper money".

A *virtual* currency (Example 2 / Figure 2) is an extra currency created by
a participant, funded from the participant's default currency, whose purpose
is to decouple one subset of agreements from fluctuations in another.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EconomyError

__all__ = ["Currency"]

DEFAULT_FACE_VALUE = 100.0


@dataclass
class Currency:
    """A currency in the funding graph.

    Attributes
    ----------
    name:
        Unique name within a :class:`~repro.economy.bank.Bank`.
    face_value:
        Units outstanding; the denominator for relative tickets issued by
        this currency.  Example 1 uses 1000 for currency A and 100 for B.
    owner:
        The principal the currency belongs to.  Default currencies are
        named after their principal; virtual currencies record their
        creator here.
    virtual:
        True for virtual currencies (Example 2).
    backing_tickets / issued_tickets:
        Ticket ids maintained by the bank.
    """

    name: str
    face_value: float = DEFAULT_FACE_VALUE
    owner: str | None = None
    virtual: bool = False
    backing_tickets: list[int] = field(default_factory=list)
    issued_tickets: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.face_value <= 0:
            raise EconomyError(
                f"currency {self.name!r} must have positive face value, "
                f"got {self.face_value!r}"
            )
        if self.owner is None:
            self.owner = self.name

    def inflate(self, factor: float) -> None:
        """Multiply the number of outstanding units by ``factor`` (> 0).

        Inflating (factor > 1) reduces the real value of every relative
        ticket already issued by this currency; deflating (< 1) raises it.
        """
        if factor <= 0:
            raise EconomyError(f"inflation factor must be positive, got {factor!r}")
        self.face_value *= factor

    def __repr__(self) -> str:
        tag = " virtual" if self.virtual else ""
        return f"Currency({self.name!r}, face={self.face_value:g}, owner={self.owner!r}{tag})"
