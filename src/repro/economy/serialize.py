"""JSON (de)serialisation for banks and agreement systems.

A deployed GRM must persist its agreement registry across restarts and
exchange agreement descriptions with administrators; this module gives
both objects a stable, human-editable JSON form.

- :func:`bank_to_dict` / :func:`bank_from_dict` round-trip a
  :class:`~repro.economy.bank.Bank` including virtual currencies,
  revoked tickets and ticket names;
- :func:`system_to_dict` / :func:`system_from_dict` round-trip an
  :class:`~repro.agreements.matrix.AgreementSystem`;
- :func:`save_bank` / :func:`load_bank` and
  :func:`save_system` / :func:`load_system` add file I/O.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..agreements.matrix import AgreementSystem
from ..errors import EconomyError
from .bank import Bank
from .ticket import TicketKind

__all__ = [
    "bank_to_dict",
    "bank_from_dict",
    "save_bank",
    "load_bank",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
]

_FORMAT = "repro.bank/1"
_SYSTEM_FORMAT = "repro.agreement-system/1"


def bank_to_dict(bank: Bank) -> dict:
    """A JSON-ready description of every currency and ticket."""
    return {
        "format": _FORMAT,
        "currencies": [
            {
                "name": c.name,
                "face_value": c.face_value,
                "owner": c.owner,
                "virtual": c.virtual,
            }
            for c in bank.currencies
        ],
        "tickets": [
            {
                "kind": t.kind.value,
                "face_value": t.face_value,
                "backing": t.backing,
                "issuer": t.issuer,
                "resource_type": t.resource_type,
                "name": t.name,
                "revoked": t.revoked,
            }
            for t in bank.tickets
        ],
    }


def bank_from_dict(data: dict) -> Bank:
    """Rebuild a bank; ticket ids are reassigned but names/state persist."""
    if data.get("format") != _FORMAT:
        raise EconomyError(
            f"not a serialised bank (format {data.get('format')!r})"
        )
    bank = Bank()
    for c in data["currencies"]:
        bank.create_currency(
            c["name"],
            face_value=c["face_value"],
            owner=c.get("owner"),
            virtual=c.get("virtual", False),
        )
    for t in data["tickets"]:
        kind = TicketKind(t["kind"])
        if t.get("issuer") is None:
            ticket = bank.deposit_capacity(
                t["backing"], t["face_value"], t["resource_type"],
                name=t.get("name", ""),
            )
        elif kind is TicketKind.ABSOLUTE:
            ticket = bank.issue_absolute_ticket(
                t["issuer"], t["backing"], t["face_value"],
                t["resource_type"], name=t.get("name", ""),
            )
        else:
            ticket = bank.issue_relative_ticket(
                t["issuer"], t["backing"], t["face_value"],
                name=t.get("name", ""),
            )
        if t.get("revoked"):
            bank.revoke_ticket(ticket.ticket_id)
    return bank


def system_to_dict(system: AgreementSystem) -> dict:
    return {
        "format": _SYSTEM_FORMAT,
        "principals": list(system.principals),
        "V": system.V.tolist(),
        "S": system.S.tolist(),
        "A": None if system.A is None else system.A.tolist(),
        "allow_overdraft": system.allow_overdraft,
        "groups": getattr(system, "groups", None),
    }


def system_from_dict(data: dict) -> AgreementSystem:
    if data.get("format") != _SYSTEM_FORMAT:
        raise EconomyError(
            f"not a serialised agreement system (format {data.get('format')!r})"
        )
    system = AgreementSystem(
        data["principals"],
        np.asarray(data["V"], dtype=float),
        np.asarray(data["S"], dtype=float),
        None if data.get("A") is None else np.asarray(data["A"], dtype=float),
        allow_overdraft=data.get("allow_overdraft", False),
    )
    if data.get("groups") is not None:
        system.groups = [list(g) for g in data["groups"]]
    return system


def save_bank(bank: Bank, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(bank_to_dict(bank), indent=2))
    return path


def load_bank(path: str | Path) -> Bank:
    return bank_from_dict(json.loads(Path(path).read_text()))


def save_system(system: AgreementSystem, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(system_to_dict(system), indent=2))
    return path


def load_system(path: str | Path) -> AgreementSystem:
    return system_from_dict(json.loads(Path(path).read_text()))
