"""Ticket objects.

Tickets are "abstract entities that differ in type and value ... possessing
the right ticket type permits access to the resource and the ticket value
determines the resource quantity that can be accessed" (Section 2.2).

A ticket is **absolute** (its value is its face value, e.g. "3 TB of disk")
or **relative** (its value is the issuing currency's value multiplied by the
ticket's share of the currency's face value).  A ticket may be *base
capacity* (no issuer — it represents a raw resource deposited into the
owner's currency, like A-Ticket1 in Figure 1) or *issued* by a currency to
back another currency, which is how agreements are expressed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import EconomyError

__all__ = ["TicketKind", "Ticket"]

_ticket_counter = itertools.count(1)


class TicketKind(enum.Enum):
    """Whether a ticket's value is a constant or tracks its issuing currency."""

    ABSOLUTE = "absolute"
    RELATIVE = "relative"


@dataclass
class Ticket:
    """A single ticket.

    Attributes
    ----------
    ticket_id:
        Unique id within a :class:`~repro.economy.bank.Bank`.
    kind:
        :attr:`TicketKind.ABSOLUTE` or :attr:`TicketKind.RELATIVE`.
    face_value:
        For absolute tickets, the resource quantity; for relative tickets,
        the number of currency units (the share denominator is the issuing
        currency's face value).
    resource_type:
        The resource this ticket grants access to (e.g. ``"disk"``).
        Relative tickets transfer a fraction of *all* of the issuing
        currency's resources, so their ``resource_type`` is ``"*"``.
    issuer:
        Name of the issuing currency, or ``None`` for base-capacity tickets.
    backing:
        Name of the currency this ticket funds.
    name:
        Optional human-readable label (e.g. ``"R-Ticket4"``).
    revoked:
        Revoked tickets contribute nothing and cannot be re-activated
        ("the grantor ... revokes the resource from the grantee (agreement
        ends)").
    """

    kind: TicketKind
    face_value: float
    backing: str
    issuer: str | None = None
    resource_type: str = "*"
    name: str = ""
    ticket_id: int = field(default_factory=lambda: next(_ticket_counter))
    revoked: bool = False

    def __post_init__(self) -> None:
        if self.face_value < 0:
            raise EconomyError(
                f"ticket {self.name or self.ticket_id} has negative face value "
                f"{self.face_value!r}"
            )
        if self.kind is TicketKind.RELATIVE and self.issuer is None:
            raise EconomyError("a relative ticket must be issued by a currency")
        if self.kind is TicketKind.ABSOLUTE and self.resource_type == "*":
            raise EconomyError(
                "an absolute ticket must name a concrete resource type "
                "(its value is a quantity of that resource)"
            )

    @property
    def is_base_capacity(self) -> bool:
        """True for tickets that represent raw owned resources (no issuer)."""
        return self.issuer is None

    @property
    def is_agreement(self) -> bool:
        """True for tickets expressing an agreement between two currencies."""
        return self.issuer is not None

    def __repr__(self) -> str:
        label = self.name or f"ticket#{self.ticket_id}"
        src = self.issuer if self.issuer is not None else "<capacity>"
        flags = " REVOKED" if self.revoked else ""
        return (
            f"Ticket({label}: {self.kind.value} {self.face_value:g} "
            f"[{self.resource_type}] {src} -> {self.backing}{flags})"
        )
