"""Resource quantities and resource vectors.

The paper represents both resource availability and resource requests as
*vectors*, "with entries quantifying the quantity or need for each different
kind of resource" (Section 2).  :class:`ResourceVector` is that type: an
immutable mapping from resource-type name to a non-negative quantity with
vector arithmetic, dominance comparison, and support for *coupled* resources
(Section 3.2's "bind these types of resources into a new type of resource so
that they are always allocated together").
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from .errors import ReproError

__all__ = ["ResourceVector", "CoupledResource", "ZERO", "approx_eq"]

_QUANTITY_TOL = 1e-12

#: default tolerances for :func:`approx_eq` — loose enough for LP solver
#: output, tight enough to distinguish any two meaningfully distinct
#: capacities in the paper's scenarios
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


def approx_eq(
    a: float, b: float, *, rel_tol: float = _REL_TOL, abs_tol: float = _ABS_TOL
) -> bool:
    """Tolerance-based equality for float capacity/theta quantities.

    The reprolint rule R4 forbids ``==``/``!=`` on LP-derived floats;
    this is the sanctioned comparison (a thin, domain-defaulted wrapper
    over :func:`math.isclose`).
    """
    return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)


def _check_quantity(name: str, value: float) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ReproError(f"resource {name!r} has non-finite quantity {value!r}")
    if value < -_QUANTITY_TOL:
        raise ReproError(f"resource {name!r} has negative quantity {value!r}")
    return max(value, 0.0)


class ResourceVector(Mapping[str, float]):
    """An immutable vector of named resource quantities.

    Missing entries are implicitly zero, so vectors over different resource
    sets compose naturally::

        >>> a = ResourceVector(cpu=2.0, disk=10.0)
        >>> b = ResourceVector(disk=5.0, net=1.0)
        >>> (a + b)["disk"]
        15.0
        >>> a.dominates(ResourceVector(cpu=1.0))
        True
    """

    __slots__ = ("_data",)

    def __init__(self, entries: Mapping[str, float] | None = None, **kwargs: float):
        data: dict[str, float] = {}
        if entries is not None:
            for name, value in entries.items():
                data[str(name)] = _check_quantity(name, value)
        for name, value in kwargs.items():
            data[name] = _check_quantity(name, value)
        # Drop exact zeros so equality is independent of zero padding.
        self._data = {k: v for k, v in data.items() if v > 0.0}

    # -- Mapping protocol --------------------------------------------------

    def __getitem__(self, name: str) -> float:
        return self._data.get(name, 0.0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, name: object) -> bool:
        return name in self._data

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        names = set(self._data) | set(other._data)
        return ResourceVector({n: self[n] + other[n] for n in names})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Subtract, clamping at zero (resources cannot go negative)."""
        if not isinstance(other, ResourceVector):
            return NotImplemented
        names = set(self._data) | set(other._data)
        return ResourceVector({n: max(self[n] - other[n], 0.0) for n in names})

    def __mul__(self, scalar: float) -> "ResourceVector":
        scalar = float(scalar)
        if scalar < 0:
            raise ReproError("cannot scale a ResourceVector by a negative factor")
        return ResourceVector({n: v * scalar for n, v in self._data.items()})

    __rmul__ = __mul__

    # -- comparisons ----------------------------------------------------------

    def dominates(self, other: "ResourceVector", tol: float = 1e-9) -> bool:
        """True if this vector is componentwise >= ``other`` (within ``tol``)."""
        return all(self[n] + tol >= q for n, q in other.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        names = set(self._data) | set(other._data)
        return all(abs(self[n] - other[n]) <= _QUANTITY_TOL for n in names)

    def __hash__(self) -> int:
        return hash(frozenset((k, round(v, 9)) for k, v in self._data.items()))

    # -- utilities -----------------------------------------------------------

    @property
    def total(self) -> float:
        """Sum of all quantities (meaningful when resources share a unit)."""
        return sum(self._data.values())

    def resource_types(self) -> frozenset[str]:
        return frozenset(self._data)

    def is_zero(self, tol: float = _QUANTITY_TOL) -> bool:
        return all(v <= tol for v in self._data.values())

    def scaled_to_fit(self, budget: "ResourceVector") -> float:
        """Largest ``f`` in [0, 1] such that ``f * self`` fits within ``budget``."""
        f = 1.0
        for name, need in self._data.items():
            if need > 0:
                f = min(f, budget[name] / need)
        return max(f, 0.0)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._data.items()))
        return f"ResourceVector({inner})"


ZERO = ResourceVector()
"""The empty (all-zero) resource vector."""


@dataclass(frozen=True)
class CoupledResource:
    """A named bundle of resource types that must be allocated together.

    Section 3.2: "CPU and memory resources need to be on the same machine and
    cannot be allocated separately. One way to solve [this] is to bind these
    types of resources into a new type of resource so that they are always
    allocated together."

    A coupled resource defines a fixed *ratio* between its constituents; one
    unit of the bundle consumes ``ratio[r]`` units of each constituent ``r``.
    """

    name: str
    ratio: ResourceVector = field(default_factory=ResourceVector)

    def __post_init__(self) -> None:
        if self.ratio.is_zero():
            raise ReproError(f"coupled resource {self.name!r} must bundle at least one resource")

    def units_from(self, available: ResourceVector) -> float:
        """How many units of the bundle fit inside ``available``."""
        units = math.inf
        for res, per_unit in self.ratio.items():
            units = min(units, available[res] / per_unit)
        return max(units, 0.0)

    def expand(self, units: float) -> ResourceVector:
        """The constituent resources consumed by ``units`` of the bundle."""
        return self.ratio * units
