"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch a single base class.  Sub-hierarchies mirror the
package layout: economy (tickets/currencies), agreements (matrices/flow),
LP substrate, allocation engine, manager, and simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "EconomyError",
    "UnknownCurrencyError",
    "UnknownTicketError",
    "DuplicateNameError",
    "CurrencyCycleError",
    "TicketRevokedError",
    "AgreementError",
    "InvalidAgreementMatrixError",
    "OversharingError",
    "AllocationError",
    "InsufficientResourcesError",
    "InfeasibleAllocationError",
    "LPError",
    "LPInfeasibleError",
    "LPUnboundedError",
    "LPSolverError",
    "ManagerError",
    "UnknownPrincipalError",
    "SimulationError",
    "WorkloadError",
    "InvariantViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Economy (tickets and currencies)
# --------------------------------------------------------------------------


class EconomyError(ReproError):
    """Base class for ticket/currency economy errors."""


class UnknownCurrencyError(EconomyError, KeyError):
    """A currency name was not found in the bank."""


class UnknownTicketError(EconomyError, KeyError):
    """A ticket id was not found in the bank."""


class DuplicateNameError(EconomyError, ValueError):
    """A currency or ticket with this name already exists."""


class CurrencyCycleError(EconomyError):
    """The currency funding graph contains a cycle, so values are undefined."""


class TicketRevokedError(EconomyError):
    """Operation attempted on a ticket that has been revoked."""


# --------------------------------------------------------------------------
# Agreements (matrices, structures, transitive flow)
# --------------------------------------------------------------------------


class AgreementError(ReproError):
    """Base class for agreement-matrix errors."""


class InvalidAgreementMatrixError(AgreementError, ValueError):
    """An agreement matrix violates a structural constraint.

    The paper's constraints on the relative matrix ``S`` are ``S_ii = 0``,
    ``S_ij >= 0`` and (unless overdraft is permitted) ``sum_k S_ik <= 1``.
    """


class OversharingError(InvalidAgreementMatrixError):
    """A row of the relative agreement matrix shares more than 100%.

    Raised only when overdraft semantics are disabled (Section 3.2 of the
    paper lifts this restriction by clamping ``T`` at 1).
    """


# --------------------------------------------------------------------------
# Allocation engine
# --------------------------------------------------------------------------


class AllocationError(ReproError):
    """Base class for allocation failures."""


class InsufficientResourcesError(AllocationError):
    """The requesting principal's capacity ``C_A`` is below the request."""

    def __init__(self, principal, requested: float, available: float):
        self.principal = principal
        self.requested = float(requested)
        self.available = float(available)
        super().__init__(
            f"principal {principal!r} requested {requested:g} but only "
            f"{available:g} is available (directly or transitively)"
        )


class InfeasibleAllocationError(AllocationError):
    """The allocation LP is infeasible even though capacity checks passed."""


# --------------------------------------------------------------------------
# LP substrate
# --------------------------------------------------------------------------


class LPError(ReproError):
    """Base class for linear-programming substrate errors."""


class LPInfeasibleError(LPError):
    """The linear program has no feasible point."""


class LPUnboundedError(LPError):
    """The linear program's objective is unbounded below."""


class LPSolverError(LPError):
    """The backend solver failed for a reason other than infeasible/unbounded."""


# --------------------------------------------------------------------------
# Manager (GRM / LRM)
# --------------------------------------------------------------------------


class ManagerError(ReproError):
    """Base class for resource-manager errors."""


class UnknownPrincipalError(ManagerError, KeyError):
    """A principal id was not registered with the manager."""


# --------------------------------------------------------------------------
# Simulation and workload
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-simulation errors."""


class WorkloadError(ReproError):
    """Base class for workload-generation and trace-parsing errors."""


# --------------------------------------------------------------------------
# Runtime invariant sanitizer (REPRO_SANITIZE=1)
# --------------------------------------------------------------------------


class InvariantViolation(ReproError):
    """A runtime invariant of the agreement economy does not hold.

    Raised by the :mod:`repro.sanitize` epilogue hooks (active under
    ``REPRO_SANITIZE=1``) when a check fails: ticket/currency value
    conservation, overdraft clamp bounds, donor-split conservation,
    ``C' <= C``, or bank-version monotonicity.  When an allocation
    decision is in flight, the active
    :class:`~repro.obs.decision.DecisionRecord` snapshot is attached as
    :attr:`decision`, so the full request context (requestor, amount,
    donor split, LP evidence) travels with the traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        details: dict | None = None,
        decision=None,
    ):
        self.invariant = invariant
        self.details = dict(details or {})
        self.decision = decision
        parts = [message]
        if self.details:
            rendered = ", ".join(f"{k}={v!r}" for k, v in self.details.items())
            parts.append(f"[{rendered}]")
        if decision is not None:
            rid = getattr(decision, "request_id", None)
            requestor = getattr(decision, "requestor", "")
            parts.append(f"(decision: request_id={rid}, requestor={requestor!r})")
        super().__init__(" ".join(parts))
