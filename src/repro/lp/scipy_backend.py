"""LP backend using :func:`scipy.optimize.linprog` (HiGHS)."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..errors import LPSolverError
from ..obs import get_observer
from .result import LPResult, LPStatus

__all__ = ["solve_scipy"]

_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,  # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve_scipy(model, method: str = "highs") -> LPResult:
    """Solve a :class:`~repro.lp.model.LinearProgram` with scipy's HiGHS.

    Raises :class:`~repro.errors.LPSolverError` on a numerical failure
    (status 4); infeasible/unbounded outcomes are reported in the result so
    callers can turn them into domain errors.
    """
    obs = get_observer()
    c, A_ub, b_ub, A_eq, b_eq, bounds, const = model.to_arrays()
    with obs.span("lp.solve", backend="scipy", model=model.name) as sp:
        res = linprog(
            c,
            A_ub=A_ub if A_ub.size else None,
            b_ub=b_ub if b_ub.size else None,
            A_eq=A_eq if A_eq.size else None,
            b_eq=b_eq if b_eq.size else None,
            bounds=bounds,
            method=method,
        )
        status = _STATUS_MAP.get(res.status, LPStatus.ERROR)
        iterations = int(getattr(res, "nit", 0) or 0)
        if obs.enabled:
            obs.counter("lp.solves", backend="scipy")
            obs.histogram("lp.iterations", iterations, backend="scipy")
            sp.set(status=status.value, iterations=iterations)
        if status is LPStatus.ERROR and res.status == 4:
            obs.event(
                "lp.solver_error", backend="scipy", model=model.name,
                message=str(res.message),
            )
            obs.counter("lp.solver_errors", backend="scipy")
            raise LPSolverError(f"scipy linprog failed on {model.name!r}: {res.message}")
    x = np.asarray(res.x) if res.x is not None else np.full(model.num_variables, np.nan)
    objective = float(res.fun) + const if status is LPStatus.OPTIMAL else float("nan")
    return LPResult(status=status, objective=objective, x=x, backend="scipy", iterations=iterations)
