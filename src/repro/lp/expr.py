"""Linear expressions over named LP variables.

A :class:`Variable` is a handle created by
:meth:`repro.lp.model.LinearProgram.variable`.  Arithmetic on variables
produces :class:`LinExpr` objects (sparse ``{variable_index: coefficient}``
maps plus a constant), and comparisons produce constraint specifications
consumed by :meth:`~repro.lp.model.LinearProgram.add_constraint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real

__all__ = ["Variable", "LinExpr", "Relation"]


@dataclass(frozen=True)
class Relation:
    """An (expression, sense, rhs-expression) triple produced by comparisons.

    ``sense`` is one of ``"<="``, ``">="``, ``"=="``.  Both sides are kept as
    expressions; normalisation to ``lhs - rhs <sense> 0`` happens in the
    model builder.
    """

    lhs: "LinExpr"
    sense: str
    rhs: "LinExpr"


class _ExprOps:
    """Shared operator overloads for Variable and LinExpr."""

    def _as_expr(self) -> "LinExpr":
        raise NotImplementedError

    @staticmethod
    def _coerce(other) -> "LinExpr | None":
        if isinstance(other, _ExprOps):
            return other._as_expr()
        if isinstance(other, Real):
            return LinExpr({}, float(other))
        return None

    def __add__(self, other):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self._as_expr()._add(rhs)

    __radd__ = __add__

    def __sub__(self, other):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self._as_expr()._add(rhs * -1.0)

    def __rsub__(self, other):
        lhs = self._coerce(other)
        if lhs is None:
            return NotImplemented
        return lhs._add(self._as_expr() * -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, Real):
            return NotImplemented
        expr = self._as_expr()
        s = float(scalar)
        return LinExpr({i: c * s for i, c in expr.coeffs.items()}, expr.const * s)

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if not isinstance(scalar, Real) or scalar == 0:
            return NotImplemented
        return self * (1.0 / float(scalar))

    def __neg__(self):
        return self * -1.0

    def __le__(self, other):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return Relation(self._as_expr(), "<=", rhs)

    def __ge__(self, other):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return Relation(self._as_expr(), ">=", rhs)

    # NOTE: __eq__ builds a Relation, which makes Variable/LinExpr unusable
    # as dict keys with equality semantics; Variable identity hashing is kept.
    def __eq__(self, other):  # type: ignore[override]
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return Relation(self._as_expr(), "==", rhs)

    def __hash__(self):  # pragma: no cover - identity hash
        return id(self)


class Variable(_ExprOps):
    """A handle to one LP variable (identified by model + index)."""

    __slots__ = ("index", "name", "lower", "upper")

    def __init__(self, index: int, name: str, lower: float, upper: float):
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr(_ExprOps):
    """A sparse linear expression ``sum_i coeffs[i] * x_i + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: dict[int, float] | None = None, const: float = 0.0):
        self.coeffs = dict(coeffs or {})
        self.const = float(const)

    def _as_expr(self) -> "LinExpr":
        return self

    def _add(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for i, c in other.coeffs.items():
            coeffs[i] = coeffs.get(i, 0.0) + c
        return LinExpr(coeffs, self.const + other.const)

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.const:g})"
