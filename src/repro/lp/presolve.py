"""LP presolve: cheap reductions applied before a solve.

Textbook presolve steps (Gass ch. 11 flavour) that shrink the allocation
LPs measurably when agreement graphs are sparse:

1. **Fixed variables** — ``lower == upper`` substitutes the constant into
   every constraint and the objective;
2. **Empty rows** — constraints with no variables are checked and
   dropped (infeasible constants are reported immediately);
3. **Singleton rows** — an equality with exactly one variable fixes it;
   an inequality tightens its bound;
4. **Redundant bounds rows** — a ``<=`` row whose left side at variable
   upper bounds cannot exceed the rhs is dropped.

:func:`presolve` returns a reduced :class:`~repro.lp.model.LinearProgram`
plus a :class:`Restore` that maps a reduced solution back to the original
variable vector; :func:`solve_with_presolve` chains the two around any
backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import LPInfeasibleError
from .model import LinearProgram
from .result import LPResult, LPStatus

__all__ = ["presolve", "Restore", "PresolveStats"]

_TOL = 1e-9


@dataclass
class PresolveStats:
    fixed_variables: int = 0
    dropped_rows: int = 0
    tightened_bounds: int = 0


@dataclass
class Restore:
    """Maps a reduced solution vector back to original variable order."""

    n_original: int
    kept: list  # original index per reduced variable
    fixed: dict  # original index -> value
    stats: PresolveStats = field(default_factory=PresolveStats)

    def expand(self, x_reduced: np.ndarray) -> np.ndarray:
        x = np.empty(self.n_original)
        for orig, value in self.fixed.items():
            x[orig] = value
        for new, orig in enumerate(self.kept):
            x[orig] = x_reduced[new] if new < len(x_reduced) else 0.0
        return x


def presolve(model: LinearProgram) -> tuple[LinearProgram, Restore]:
    """Return a reduced model and the mapping back to the original.

    Raises :class:`~repro.errors.LPInfeasibleError` if a reduction proves
    the model infeasible outright.
    """
    stats = PresolveStats()
    n = model.num_variables
    lower = np.array([v.lower for v in (model.get_variable(name) for name in _names(model))])
    upper = np.array([model.get_variable(name).upper for name in _names(model)])
    rows = [
        {"coeffs": dict(c.coeffs), "sense": c.sense, "bound": c.bound, "name": c.name}
        for c in model.constraints
    ]
    obj = dict(model._objective.coeffs)
    obj_const = model._objective.const
    fixed: dict[int, float] = {}

    changed = True
    while changed:
        changed = False

        # 1/3. singleton rows fix or tighten.
        for row in rows:
            live = {i: c for i, c in row["coeffs"].items() if i not in fixed and abs(c) > _TOL}
            if len(live) == 1:
                (i, coef), = live.items()
                rhs = row["bound"] - sum(
                    c * fixed[j] for j, c in row["coeffs"].items() if j in fixed
                )
                target = rhs / coef
                if row["sense"] == "==":
                    if target < lower[i] - 1e-7 or target > upper[i] + 1e-7:
                        raise LPInfeasibleError(
                            f"presolve: row {row['name']} forces x{i}={target:g} "
                            f"outside [{lower[i]:g}, {upper[i]:g}]"
                        )
                    lower[i] = upper[i] = target
                else:  # <=
                    if coef > 0 and target < upper[i] - _TOL:
                        upper[i] = target
                        stats.tightened_bounds += 1
                        changed = True
                    elif coef < 0 and target > lower[i] + _TOL:
                        lower[i] = target
                        stats.tightened_bounds += 1
                        changed = True
                    if lower[i] > upper[i] + 1e-7:
                        raise LPInfeasibleError(
                            f"presolve: bounds of x{i} crossed via {row['name']}"
                        )

        # 1. fix variables with collapsed bounds.
        for i in range(n):
            if i not in fixed and upper[i] - lower[i] <= _TOL and math.isfinite(lower[i]):
                fixed[i] = float(lower[i])
                stats.fixed_variables += 1
                changed = True

    # 2/4. drop empty and redundant rows after substitution.
    kept_rows = []
    for row in rows:
        live = {i: c for i, c in row["coeffs"].items() if i not in fixed and abs(c) > _TOL}
        const = sum(c * fixed[j] for j, c in row["coeffs"].items() if j in fixed)
        rhs = row["bound"] - const
        if not live:
            ok = rhs >= -1e-7 if row["sense"] == "<=" else abs(rhs) <= 1e-7
            if not ok:
                raise LPInfeasibleError(
                    f"presolve: row {row['name']} reduces to an impossible constant"
                )
            stats.dropped_rows += 1
            continue
        if row["sense"] == "<=":
            # Max of lhs over the box; if it cannot exceed rhs, drop.
            best = 0.0
            finite = True
            for i, c in live.items():
                hi = upper[i] if c > 0 else lower[i]
                if not math.isfinite(hi):
                    finite = False
                    break
                best += c * hi
            if finite and best <= rhs + _TOL:
                stats.dropped_rows += 1
                continue
        kept_rows.append((live, row["sense"], rhs, row["name"]))

    # Build the reduced model.
    kept_vars = [i for i in range(n) if i not in fixed]
    remap = {orig: new for new, orig in enumerate(kept_vars)}
    reduced = LinearProgram(model.name + "~presolved")
    names = _names(model)
    for orig in kept_vars:
        reduced.variable(names[orig], lower=float(lower[orig]), upper=float(upper[orig]))
    from .expr import LinExpr, Relation

    for live, sense, rhs, name in kept_rows:
        coeffs = {remap[i]: c for i, c in live.items()}
        reduced.add_constraint(
            Relation(LinExpr(coeffs, 0.0), sense, LinExpr({}, rhs)), name=name
        )
    red_obj = {remap[i]: c for i, c in obj.items() if i not in fixed}
    red_const = obj_const + sum(c * fixed[i] for i, c in obj.items() if i in fixed)
    reduced.minimize(LinExpr(red_obj, red_const))
    if model._obj_sense == "max":
        reduced._obj_sense = "max"

    restore = Restore(n_original=n, kept=kept_vars, fixed=fixed, stats=stats)
    return reduced, restore


def solve_with_presolve(model: LinearProgram, backend: str = "scipy") -> LPResult:
    """Presolve, solve the reduction, and expand the solution."""
    try:
        reduced, restore = presolve(model)
    except LPInfeasibleError:
        return LPResult(status=LPStatus.INFEASIBLE, backend=f"{backend}+presolve")
    if reduced.num_variables == 0:
        # Fully determined by presolve; remaining rows were verified.
        return LPResult(
            status=LPStatus.OPTIMAL,
            objective=float(reduced._objective.const),
            x=restore.expand(np.empty(0)),
            names=tuple(_names(model)),
            backend=f"{backend}+presolve",
        )
    result = reduced.solve(backend=backend)
    if not result.ok:
        result.backend = f"{backend}+presolve"
        return result
    x = restore.expand(result.x)
    return LPResult(
        status=result.status,
        objective=result.objective,
        x=x,
        names=tuple(_names(model)),
        backend=f"{backend}+presolve",
        iterations=result.iterations,
    )


def _names(model: LinearProgram) -> list[str]:
    return [v.name for v in model._vars]
