"""LP model builder.

:class:`LinearProgram` accumulates named variables and linear constraints,
normalises them into the dense/sparse array form
``min c.x  s.t.  A_ub x <= b_ub,  A_eq x == b_eq,  lb <= x <= ub``
and dispatches to a backend solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import LPError
from .expr import LinExpr, Relation, Variable
from .result import LPResult

__all__ = ["LinearProgram", "Constraint"]


@dataclass(frozen=True)
class Constraint:
    """A normalised constraint ``expr <sense> bound`` (expr has no constant)."""

    name: str
    coeffs: dict[int, float]
    sense: str  # "<=" or "=="
    bound: float


class LinearProgram:
    """A minimisation linear program with named variables.

    Variables carry bounds (default ``[0, +inf)``); constraints are built
    from overloaded arithmetic on :class:`~repro.lp.expr.Variable` handles.
    ``>=`` constraints are normalised to ``<=`` by negation; the objective
    defaults to 0 (pure feasibility problem).
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._vars: list[Variable] = []
        self._names: dict[str, int] = {}
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._obj_sense: str = "min"

    # -- construction --------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
    ) -> Variable:
        """Create a new variable; names must be unique within the model."""
        if name in self._names:
            raise LPError(f"duplicate variable name {name!r}")
        if lower > upper:
            raise LPError(f"variable {name!r} has empty bound interval [{lower}, {upper}]")
        var = Variable(len(self._vars), name, float(lower), float(upper))
        self._vars.append(var)
        self._names[name] = var.index
        return var

    def variables(self, prefix: str, count: int, **kwargs) -> list[Variable]:
        """Create ``count`` variables named ``{prefix}{i}``."""
        return [self.variable(f"{prefix}{i}", **kwargs) for i in range(count)]

    def get_variable(self, name: str) -> Variable:
        try:
            return self._vars[self._names[name]]
        except KeyError:
            raise LPError(f"no variable named {name!r}") from None

    def add_constraint(self, relation: Relation, name: str = "") -> Constraint:
        """Add a constraint built with ``<=``, ``>=`` or ``==`` on expressions."""
        if not isinstance(relation, Relation):
            raise LPError(
                "add_constraint expects a comparison of LP expressions "
                f"(got {type(relation).__name__}); note that `x == y` on "
                "non-expression operands short-circuits in Python"
            )
        diff = relation.lhs._add(relation.rhs * -1.0)
        coeffs = {i: c for i, c in diff.coeffs.items() if c != 0.0}
        bound = -diff.const
        sense = relation.sense
        if sense == ">=":
            coeffs = {i: -c for i, c in coeffs.items()}
            bound = -bound
            sense = "<="
        if not coeffs:
            # Constant constraint: verify satisfiability immediately.
            ok = bound >= -1e-9 if sense == "<=" else abs(bound) <= 1e-9
            if not ok:
                raise LPError(f"constraint {name or '<anon>'} is trivially infeasible")
        con = Constraint(name or f"c{len(self._constraints)}", coeffs, sense, bound)
        self._constraints.append(con)
        return con

    def minimize(self, expr) -> None:
        """Set the objective to minimise ``expr``."""
        self._objective = expr._as_expr() if not isinstance(expr, LinExpr) else expr
        self._obj_sense = "min"

    def maximize(self, expr) -> None:
        """Set the objective to maximise ``expr`` (stored negated)."""
        self.minimize(expr)
        self._obj_sense = "max"

    # -- normalisation ---------------------------------------------------------

    def to_arrays(self):
        """Return ``(c, A_ub, b_ub, A_eq, b_eq, bounds, const)`` arrays.

        ``const`` is the objective's constant term (added back to the
        reported objective).  For a ``max`` objective the returned ``c`` is
        negated and callers must negate the optimum (``solve`` handles this).
        """
        n = len(self._vars)
        c = np.zeros(n)
        for i, coef in self._objective.coeffs.items():
            c[i] = coef
        sign = -1.0 if self._obj_sense == "max" else 1.0
        c *= sign

        ub_rows = [con for con in self._constraints if con.sense == "<="]
        eq_rows = [con for con in self._constraints if con.sense == "=="]

        def build(rows):
            A = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for r, con in enumerate(rows):
                for i, coef in con.coeffs.items():
                    A[r, i] = coef
                b[r] = con.bound
            return A, b

        A_ub, b_ub = build(ub_rows)
        A_eq, b_eq = build(eq_rows)
        bounds = [(v.lower, v.upper) for v in self._vars]
        return c, A_ub, b_ub, A_eq, b_eq, bounds, sign * self._objective.const

    # -- solving -----------------------------------------------------------------

    def solve(self, backend: str = "scipy", **kwargs) -> LPResult:
        """Solve the model with the given backend (``"scipy"`` or ``"simplex"``).

        The returned objective is always in the user's sense (a ``max``
        model reports the maximum).
        """
        from .scipy_backend import solve_scipy
        from .simplex import solve_simplex

        solvers = {"scipy": solve_scipy, "simplex": solve_simplex}
        try:
            solver = solvers[backend]
        except KeyError:
            raise LPError(f"unknown LP backend {backend!r}; choose from {sorted(solvers)}") from None
        result = solver(self, **kwargs)
        result.names = tuple(v.name for v in self._vars)
        if self._obj_sense == "max" and result.ok:
            result.objective = -result.objective
        return result

    def __repr__(self) -> str:
        return (
            f"LinearProgram({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
