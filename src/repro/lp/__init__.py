"""A small linear-programming substrate.

The paper enforces sharing agreements by solving a linear program
(Section 3.1, citing Gass's textbook).  This subpackage provides:

- :class:`~repro.lp.model.LinearProgram` — a named-variable LP model builder
  with linear expressions and ``<=``/``==``/``>=`` constraints;
- :func:`~repro.lp.scipy_backend.solve_scipy` — a backend using
  :func:`scipy.optimize.linprog` (HiGHS);
- :func:`~repro.lp.simplex.solve_simplex` — a from-scratch dense two-phase
  primal simplex, so the library's correctness does not hinge on a single
  solver (the two are cross-checked in the test suite);
- :class:`~repro.lp.result.LPResult` — solver-independent result type.

Typical use::

    lp = LinearProgram("demo")
    x = lp.variable("x", lower=0.0)
    y = lp.variable("y", lower=0.0)
    lp.add_constraint(x + 2 * y <= 14, name="c1")
    lp.add_constraint(3 * x - y >= 0, name="c2")
    lp.minimize(-x - y)
    result = lp.solve()           # HiGHS by default
    result = lp.solve(backend="simplex")
"""

from .expr import LinExpr, Variable
from .presolve import presolve, solve_with_presolve
from .model import Constraint, LinearProgram
from .result import LPResult, LPStatus
from .scipy_backend import solve_scipy
from .simplex import solve_simplex

__all__ = [
    "LinearProgram",
    "Constraint",
    "Variable",
    "LinExpr",
    "LPResult",
    "presolve",
    "solve_with_presolve",
    "LPStatus",
    "solve_scipy",
    "solve_simplex",
]
