"""A from-scratch dense two-phase primal simplex solver.

The paper cites Gass's *Linear Programming* textbook for its solver; this
module is the textbook method: convert to standard form (equalities over
non-negative variables), run phase 1 with artificial variables to find a
basic feasible solution, then phase 2 on the real objective.  Bland's rule
guarantees termination.  It is deliberately simple and dense — the
allocation LPs in this library have at most a few hundred variables — and
exists so the library's results do not hinge on a single external solver.
The scipy/HiGHS backend is cross-checked against this one in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import LPSolverError
from ..obs import get_observer
from .result import LPResult, LPStatus

__all__ = ["solve_simplex"]

_TOL = 1e-9


@dataclass
class _StandardForm:
    """``min c.y  s.t.  A y = b, y >= 0`` plus the map back to model vars."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    # recover[i] = (kind, payload); kinds: "shifted" (col, lower),
    # "split" (col_plus, col_minus)
    recover: list[tuple]
    const: float


def _to_standard_form(model) -> _StandardForm:
    c0, A_ub, b_ub, A_eq, b_eq, bounds, const = model.to_arrays()
    n = len(c0)

    # 1. Substitute out bounds: x = l + y (y >= 0); free x = y+ - y-;
    #    finite upper bounds become extra <= rows on y.
    cols: list[np.ndarray] = []  # new columns expressed over original index
    recover: list[tuple] = []
    col_of: list[tuple] = []  # per-original-var mapping spec
    extra_ub_rows: list[tuple[int, float]] = []  # (new col, bound on y)
    shift = np.zeros(n)

    new_index = 0
    for j, (lo, hi) in enumerate(bounds):
        if lo is None:
            lo = -math.inf
        if hi is None:
            hi = math.inf
        if math.isfinite(lo):
            shift[j] = lo
            col_of.append(("shifted", new_index))
            recover.append(("shifted", new_index, lo))
            if math.isfinite(hi):
                extra_ub_rows.append((new_index, hi - lo))
            new_index += 1
        elif math.isfinite(hi):
            # x <= hi with no lower bound: x = hi - y, y >= 0.
            shift[j] = hi
            col_of.append(("reflected", new_index))
            recover.append(("reflected", new_index, hi))
            new_index += 1
        else:
            col_of.append(("split", new_index, new_index + 1))
            recover.append(("split", new_index, new_index + 1))
            new_index += 2

    n_new = new_index

    def transform_matrix(A: np.ndarray) -> np.ndarray:
        if A.size == 0:
            return np.zeros((A.shape[0], n_new))
        out = np.zeros((A.shape[0], n_new))
        for j in range(n):
            spec = col_of[j]
            if spec[0] == "shifted":
                out[:, spec[1]] += A[:, j]
            elif spec[0] == "reflected":
                out[:, spec[1]] -= A[:, j]
            else:
                out[:, spec[1]] += A[:, j]
                out[:, spec[2]] -= A[:, j]
        return out

    A_ub_t = transform_matrix(A_ub)
    b_ub_t = b_ub - (A_ub @ shift if A_ub.size else np.zeros(A_ub.shape[0]))
    A_eq_t = transform_matrix(A_eq)
    b_eq_t = b_eq - (A_eq @ shift if A_eq.size else np.zeros(A_eq.shape[0]))

    c_t = np.zeros(n_new)
    for j in range(n):
        spec = col_of[j]
        if spec[0] == "shifted":
            c_t[spec[1]] += c0[j]
        elif spec[0] == "reflected":
            c_t[spec[1]] -= c0[j]
        else:
            c_t[spec[1]] += c0[j]
            c_t[spec[2]] -= c0[j]
    const_t = const + float(c0 @ shift)

    # 2. Append upper-bound rows to the <= block.
    if extra_ub_rows:
        rows = np.zeros((len(extra_ub_rows), n_new))
        rhs = np.zeros(len(extra_ub_rows))
        for r, (col, ub) in enumerate(extra_ub_rows):
            rows[r, col] = 1.0
            rhs[r] = ub
        A_ub_t = np.vstack([A_ub_t, rows]) if A_ub_t.size else rows
        b_ub_t = np.concatenate([b_ub_t, rhs]) if b_ub_t.size else rhs

    # 3. Add slacks to turn <= into =.
    m_ub, m_eq = A_ub_t.shape[0], A_eq_t.shape[0]
    m = m_ub + m_eq
    A = np.zeros((m, n_new + m_ub))
    b = np.zeros(m)
    if m_ub:
        A[:m_ub, :n_new] = A_ub_t
        A[:m_ub, n_new : n_new + m_ub] = np.eye(m_ub)
        b[:m_ub] = b_ub_t
    if m_eq:
        A[m_ub:, :n_new] = A_eq_t
        b[m_ub:] = b_eq_t

    # 4. Make b >= 0.
    neg = b < 0
    A[neg] *= -1.0
    b[neg] *= -1.0

    c_full = np.concatenate([c_t, np.zeros(m_ub)])
    return _StandardForm(A=A, b=b, c=c_full, recover=recover, const=const_t)


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    T[row] /= T[row, col]
    for r in range(T.shape[0]):
        if r != row and abs(T[r, col]) > 0.0:
            T[r] -= T[r, col] * T[row]
    basis[row] = col


def _simplex_core(A, b, c, basis, max_iter) -> tuple[str, int]:
    """Run primal simplex on tableau rows [A | b] with objective c.

    ``basis`` must index an identity submatrix of A.  Returns
    (status, iterations) where status is "optimal" or "unbounded"; the
    tableau and basis are updated in place.
    """
    m, ncols = A.shape
    iterations = 0
    while True:
        # Reduced costs: z_j - c_j = c_B B^-1 A_j - c_j; with the tableau
        # kept in canonical form, reduced cost = c_j - c_B . A_j(column).
        cb = c[basis]
        reduced = c - cb @ A
        # Bland's rule: smallest index with negative reduced cost.
        entering = -1
        for j in range(ncols):
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return "optimal", iterations
        # Ratio test (Bland: smallest basis index on ties).
        best_ratio = math.inf
        leaving = -1
        for r in range(m):
            a = A[r, entering]
            if a > _TOL:
                ratio = b[r] / a
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return "unbounded", iterations
        # Pivot.
        piv = A[leaving, entering]
        A[leaving] /= piv
        b[leaving] /= piv
        for r in range(m):
            if r != leaving and abs(A[r, entering]) > _TOL:
                factor = A[r, entering]
                A[r] -= factor * A[leaving]
                b[r] -= factor * b[leaving]
        b[b < 0] = np.where(b[b < 0] > -_TOL, 0.0, b[b < 0])
        basis[leaving] = entering
        iterations += 1
        if iterations > max_iter:
            raise LPSolverError(f"simplex exceeded {max_iter} iterations")


def solve_simplex(model, max_iter: int = 50_000) -> LPResult:
    """Solve a :class:`~repro.lp.model.LinearProgram` with two-phase simplex."""
    obs = get_observer()
    with obs.span("lp.solve", backend="simplex", model=model.name) as sp:
        result = _solve_simplex_inner(model, max_iter)
        if obs.enabled:
            obs.counter("lp.solves", backend="simplex")
            obs.histogram("lp.iterations", result.iterations, backend="simplex")
            sp.set(status=result.status.value, iterations=result.iterations)
    return result


def _solve_simplex_inner(model, max_iter: int) -> LPResult:
    sf = _to_standard_form(model)
    A, b, c = sf.A.copy(), sf.b.copy(), sf.c.copy()
    m, n = A.shape

    if m == 0:
        # No constraints: optimum is 0 for all-nonneg costs, else unbounded.
        if np.any(c < -_TOL):
            return LPResult(status=LPStatus.UNBOUNDED, backend="simplex")
        x = _recover_x(np.zeros(n), sf, model.num_variables)
        return LPResult(
            status=LPStatus.OPTIMAL, objective=sf.const, x=x, backend="simplex"
        )

    # Phase 1: add artificials, minimise their sum.
    A1 = np.hstack([A, np.eye(m)])
    b1 = b.copy()
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = np.arange(n, n + m)
    status, it1 = _simplex_core(A1, b1, c1, basis, max_iter)
    if status == "unbounded":  # pragma: no cover - phase 1 is bounded below by 0
        raise LPSolverError("phase-1 unbounded (internal error)")
    phase1_obj = float(c1[basis] @ b1)
    if phase1_obj > 1e-7:
        return LPResult(status=LPStatus.INFEASIBLE, backend="simplex", iterations=it1)

    # Drive remaining artificials out of the basis where possible.
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(A1[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                piv = A1[r, pivot_col]
                A1[r] /= piv
                b1[r] /= piv
                for rr in range(m):
                    if rr != r and abs(A1[rr, pivot_col]) > _TOL:
                        factor = A1[rr, pivot_col]
                        A1[rr] -= factor * A1[r]
                        b1[rr] -= factor * b1[r]
                basis[r] = pivot_col
            # else: the row is redundant (all-zero over real vars); the
            # artificial stays basic at value ~0, which is harmless.

    # Phase 2 on real columns; keep artificial columns but price them +inf
    # is unnecessary — zero them out so they are never re-entered.
    A1[:, n:] = 0.0
    c2 = np.concatenate([c, np.full(m, 1e18)])
    status, it2 = _simplex_core(A1, b1, c2, basis, max_iter)
    if status == "unbounded":
        return LPResult(status=LPStatus.UNBOUNDED, backend="simplex", iterations=it1 + it2)

    y = np.zeros(n + m)
    for r, col in enumerate(basis):
        y[col] = b1[r]
    x = _recover_x(y[:n], sf, model.num_variables)
    objective = float(c @ y[:n]) + sf.const
    return LPResult(
        status=LPStatus.OPTIMAL,
        objective=objective,
        x=x,
        backend="simplex",
        iterations=it1 + it2,
    )


def _recover_x(y: np.ndarray, sf: _StandardForm, n_model: int) -> np.ndarray:
    """Map standard-form solution y back to original model variables."""
    x = np.zeros(n_model)
    for j, spec in enumerate(sf.recover[:n_model]):
        if spec[0] == "shifted":
            x[j] = y[spec[1]] + spec[2]
        elif spec[0] == "reflected":
            x[j] = spec[2] - y[spec[1]]
        else:
            x[j] = y[spec[1]] - y[spec[2]]
    return x
