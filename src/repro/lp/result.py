"""Solver-independent LP result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LPStatus", "LPResult"]


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPResult:
    """Result of solving a :class:`~repro.lp.model.LinearProgram`.

    Attributes
    ----------
    status:
        Solve outcome.
    objective:
        Optimal objective value (``nan`` unless :attr:`status` is OPTIMAL).
    x:
        Optimal variable values in model index order.
    names:
        Variable names matching :attr:`x`.
    backend:
        Which solver produced the result (``"scipy"`` or ``"simplex"``).
    iterations:
        Solver iteration count when available.
    """

    status: LPStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    names: tuple[str, ...] = ()
    backend: str = ""
    iterations: int = 0

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def __getitem__(self, name: str) -> float:
        """Value of the variable called ``name``."""
        try:
            return float(self.x[self.names.index(name)])
        except ValueError:
            raise KeyError(name) from None

    def as_dict(self) -> dict[str, float]:
        """All variable values keyed by name."""
        return {n: float(v) for n, v in zip(self.names, self.x)}
