"""Diurnal arrival-rate profile.

Figure 5 of the paper shows the Berkeley Home-IP request rate over 24
hours: "the proxy load is heaviest around midnight and lightest around the
early morning hours".  We model the rate as a truncated Fourier series over
the day::

    lambda(t) = base * (1 + a1*cos(w - phase1) + a2*cos(2*w - phase2)),
    w = 2*pi*(t - skew)/day

with defaults least-squares fitted to the shape of the paper's solid line:
peak ~22:30 ("heaviest around midnight"), trough ~06:00 ("lightest around
the early morning hours"), a moderate daytime plateau, and a peak-to-
trough ratio of ~4.3.  The profile is deterministic; randomness enters
only when sampling arrivals (:class:`~repro.workload.generator.RequestStream`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["DiurnalProfile", "DAY_SECONDS"]

DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class DiurnalProfile:
    """Arrival-rate profile over a wrapped 24-hour day.

    Parameters
    ----------
    requests_per_day:
        Expected number of requests per day (sets ``base``).
    a1, phase1, a2, phase2:
        Fourier coefficients; defaults are fitted to Figure 5's request
        curve (late-evening peak, early-morning trough, daytime plateau).
    skew:
        Time shift (seconds): a proxy in a time zone ``g`` seconds away
        sees the same profile shifted by ``g`` — the experiments' "gap".
    """

    requests_per_day: float = 86_400.0
    a1: float = 0.4467
    phase1: float = -0.8267
    a2: float = 0.3091
    phase2: float = -0.4588
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.requests_per_day <= 0:
            raise WorkloadError("requests_per_day must be positive")
        # The profile must stay positive: |a1| + |a2| < 1.
        if abs(self.a1) + abs(self.a2) >= 1.0:
            raise WorkloadError(
                f"|a1| + |a2| must be < 1 to keep the rate positive "
                f"(got {abs(self.a1) + abs(self.a2):g})"
            )

    @property
    def base_rate(self) -> float:
        """Mean arrival rate (requests/second)."""
        return self.requests_per_day / DAY_SECONDS

    def rate(self, t) -> np.ndarray | float:
        """Instantaneous arrival rate at time(s) ``t`` (wraps daily)."""
        tt = (np.asarray(t, dtype=float) - self.skew) % DAY_SECONDS
        w = 2.0 * math.pi * tt / DAY_SECONDS
        shape = (
            1.0
            + self.a1 * np.cos(w - self.phase1)
            + self.a2 * np.cos(2.0 * w - self.phase2)
        )
        out = self.base_rate * shape
        return float(out) if np.isscalar(t) else out

    @property
    def peak_rate(self) -> float:
        """Maximum of :meth:`rate` over the day (evaluated on a fine grid)."""
        t = np.linspace(0.0, DAY_SECONDS, 2881)
        return float(np.max(self.rate(t)))

    @property
    def trough_rate(self) -> float:
        t = np.linspace(0.0, DAY_SECONDS, 2881)
        return float(np.min(self.rate(t)))

    def with_skew(self, skew: float) -> "DiurnalProfile":
        """Same profile shifted by ``skew`` seconds (another time zone)."""
        return DiurnalProfile(
            requests_per_day=self.requests_per_day,
            a1=self.a1,
            phase1=self.phase1,
            a2=self.a2,
            phase2=self.phase2,
            skew=self.skew + skew,
        )

    def scaled(self, factor: float) -> "DiurnalProfile":
        """Same shape with ``factor``-times the volume."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return DiurnalProfile(
            requests_per_day=self.requests_per_day * factor,
            a1=self.a1,
            phase1=self.phase1,
            a2=self.a2,
            phase2=self.phase2,
            skew=self.skew,
        )

    def expected_count(self, t0: float, t1: float, steps: int = 256) -> float:
        """Integral of the rate over [t0, t1] (trapezoidal)."""
        if t1 < t0:
            raise WorkloadError(f"bad interval [{t0}, {t1}]")
        t = np.linspace(t0, t1, steps + 1)
        return float(np.trapezoid(self.rate(t), t))
