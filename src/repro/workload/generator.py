"""Per-proxy request streams.

A :class:`RequestStream` samples an inhomogeneous Poisson process from a
:class:`~repro.workload.diurnal.DiurnalProfile` (per-slot Poisson counts
with uniform placement inside each slot) and attaches response lengths.
:func:`generate_streams` builds the case study's configuration: ``n``
proxies seeing time-skewed copies of the same profile, the skew between
neighbours being the experiments' "gap" parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .diurnal import DAY_SECONDS, DiurnalProfile
from .sizes import LogNormalSizes, SizeDistribution

__all__ = ["Request", "RequestStream", "generate_streams"]


@dataclass(frozen=True, slots=True)
class Request:
    """One HTTP request: arrival time (s), response length (bytes), origin proxy."""

    arrival: float
    length: float
    origin: int = 0


class RequestStream:
    """Sampled arrivals for one proxy.

    ``sample()`` returns a time-sorted list of :class:`Request`.  The
    sampling slot width (default 60 s) bounds the rate-staircase error;
    the profile varies on the scale of hours, so a minute is plenty.
    """

    def __init__(
        self,
        profile: DiurnalProfile,
        sizes: SizeDistribution | None = None,
        horizon: float = DAY_SECONDS,
        slot_width: float = 60.0,
        origin: int = 0,
    ):
        if horizon <= 0 or slot_width <= 0:
            raise WorkloadError("horizon and slot_width must be positive")
        self.profile = profile
        self.sizes = sizes if sizes is not None else LogNormalSizes()
        self.horizon = float(horizon)
        self.slot_width = float(slot_width)
        self.origin = int(origin)

    def sample(self, rng: np.random.Generator) -> list[Request]:
        """Draw one realisation of the stream."""
        edges = np.arange(0.0, self.horizon + self.slot_width, self.slot_width)
        edges[-1] = min(edges[-1], self.horizon)
        mids = (edges[:-1] + edges[1:]) / 2.0
        widths = np.diff(edges)
        lam = self.profile.rate(mids) * widths
        counts = rng.poisson(lam)
        total = int(counts.sum())
        arrivals = np.empty(total)
        pos = 0
        for k, (lo, w) in enumerate(zip(edges[:-1], widths)):
            c = int(counts[k])
            if c:
                arrivals[pos : pos + c] = lo + rng.random(c) * w
                pos += c
        arrivals.sort()
        lengths = self.sizes.sample(rng, total)
        return [
            Request(float(t), float(x), self.origin)
            for t, x in zip(arrivals, lengths)
        ]

    def expected_requests(self) -> float:
        return self.profile.expected_count(0.0, self.horizon)


def generate_streams(
    n_proxies: int,
    profile: DiurnalProfile,
    gap: float,
    *,
    sizes: SizeDistribution | None = None,
    horizon: float = DAY_SECONDS,
    seed: int | None = 0,
) -> list[list[Request]]:
    """Build one sampled stream per proxy, neighbours skewed by ``gap``.

    Proxy ``i`` sees the base profile shifted by ``i * gap`` seconds —
    "different amounts of time skew between the client request streams"
    (Figure 6; gap = 3600 puts each proxy one time zone from the next).
    Streams use independent sub-seeds so they are independent realisations
    of the (shifted) profile, as distinct geographic client populations
    would be.
    """
    if n_proxies <= 0:
        raise WorkloadError("need at least one proxy")
    root = np.random.default_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n_proxies)
    streams: list[list[Request]] = []
    for i in range(n_proxies):
        stream = RequestStream(
            profile.with_skew(i * gap),
            sizes=sizes,
            horizon=horizon,
            origin=i,
        )
        streams.append(stream.sample(np.random.default_rng(seeds[i])))
    return streams
