"""Fitting a diurnal profile to an observed trace.

Given a request trace (e.g. parsed from proxy logs via
:mod:`repro.workload.trace`), recover the
:class:`~repro.workload.diurnal.DiurnalProfile` that best explains its
arrival times.  The fit is a linear least squares over the profile's
Fourier basis applied to per-bin arrival rates, so it is exact in the
noiseless limit and cheap always.  Use cases: estimating arrival
projections for the scheduler from historical logs, and checking how
Berkeley-like a substituted trace actually is
(:func:`profile_fit_error`).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import WorkloadError
from .diurnal import DAY_SECONDS, DiurnalProfile
from .generator import Request

__all__ = ["fit_profile", "profile_fit_error"]


def _binned_rates(requests, bins: int):
    counts = np.zeros(bins)
    total_days = 0.0
    max_t = 0.0
    for r in requests:
        counts[int((r.arrival % DAY_SECONDS) // (DAY_SECONDS / bins)) % bins] += 1
        max_t = max(max_t, r.arrival)
    total_days = max(math.ceil((max_t + 1e-9) / DAY_SECONDS), 1)
    width = DAY_SECONDS / bins
    rates = counts / (width * total_days)
    mids = (np.arange(bins) + 0.5) * width
    return mids, rates, total_days


def fit_profile(requests: list[Request], bins: int = 48) -> DiurnalProfile:
    """Least-squares fit of the two-harmonic diurnal model to a trace.

    The model is ``rate(t) = b0 + c1 cos w + s1 sin w + c2 cos 2w +
    s2 sin 2w`` with ``w = 2 pi t / day``; the coefficients convert back
    to the profile's ``(a1, phase1, a2, phase2)`` parameterisation.
    Traces shorter than one day are extrapolated pro rata; empty traces
    are rejected.
    """
    if not requests:
        raise WorkloadError("cannot fit a profile to an empty trace")
    mids, rates, _days = _binned_rates(requests, bins)
    w = 2.0 * math.pi * mids / DAY_SECONDS
    X = np.column_stack(
        [np.ones_like(w), np.cos(w), np.sin(w), np.cos(2 * w), np.sin(2 * w)]
    )
    beta, *_ = np.linalg.lstsq(X, rates, rcond=None)
    b0, c1, s1, c2, s2 = beta
    if b0 <= 0:
        raise WorkloadError("trace has non-positive mean rate; cannot fit")
    a1 = math.hypot(c1, s1) / b0
    phase1 = math.atan2(s1, c1)
    a2 = math.hypot(c2, s2) / b0
    phase2 = math.atan2(s2, c2)
    # Clamp into the profile's positivity domain.
    total = a1 + a2
    if total >= 1.0:
        shrink = 0.999 / total
        a1 *= shrink
        a2 *= shrink
    return DiurnalProfile(
        requests_per_day=b0 * DAY_SECONDS,
        a1=a1,
        phase1=phase1,
        a2=a2,
        phase2=phase2,
    )


def profile_fit_error(
    requests: list[Request], profile: DiurnalProfile, bins: int = 48
) -> float:
    """Normalised RMS error between a trace's binned rates and a profile.

    0 means the profile explains the trace perfectly; values near 1 mean
    the profile is no better than guessing the mean.  Useful when
    substituting a real trace to confirm it is diurnal-shaped before
    reusing the paper's experiment configurations.
    """
    if not requests:
        raise WorkloadError("empty trace")
    mids, rates, _days = _binned_rates(requests, bins)
    predicted = profile.rate(mids)
    rms = float(np.sqrt(np.mean((rates - predicted) ** 2)))
    scale = float(np.std(rates)) or 1.0
    return rms / scale
