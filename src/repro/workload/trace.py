"""Trace file I/O.

The simulator is trace-driven; where a real trace is available it can be
substituted for the synthetic generator.  The format is a minimal CSV —
``arrival_seconds,length_bytes[,origin]`` — with ``#`` comments.  A parser
for the Common Log Format (the format the Berkeley-era traces shipped in)
is included so raw proxy logs can be converted.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from pathlib import Path

from ..errors import WorkloadError
from .generator import Request

__all__ = ["read_trace", "write_trace", "parse_common_log_line"]

_CLF_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<ts>[^\]]+)\] "(?P<req>[^"]*)" '
    r"(?P<status>\d{3}) (?P<size>\d+|-)"
)
_MONTHS = {
    m: i + 1
    for i, m in enumerate(
        "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec".split()
    )
}


def write_trace(path: str | Path, requests: Iterable[Request]) -> int:
    """Write requests as CSV; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        fh.write("# arrival_seconds,length_bytes,origin\n")
        for r in requests:
            fh.write(f"{r.arrival:.6f},{r.length:.1f},{r.origin}\n")
            count += 1
    return count


def read_trace(path: str | Path) -> list[Request]:
    """Read a CSV trace written by :func:`write_trace` (or hand-made)."""
    path = Path(path)
    out: list[Request] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) not in (2, 3):
                raise WorkloadError(
                    f"{path}:{lineno}: expected 2 or 3 comma-separated fields, "
                    f"got {len(parts)}"
                )
            try:
                arrival = float(parts[0])
                length = float(parts[1])
                origin = int(parts[2]) if len(parts) == 3 else 0
            except ValueError as exc:
                raise WorkloadError(f"{path}:{lineno}: {exc}") from None
            if arrival < 0 or length < 0:
                raise WorkloadError(
                    f"{path}:{lineno}: negative arrival or length"
                )
            out.append(Request(arrival, length, origin))
    out.sort(key=lambda r: r.arrival)
    return out


def parse_common_log_line(line: str, day_origin: bool = True) -> Request | None:
    """Parse one Common Log Format line into a :class:`Request`.

    Returns ``None`` for unparseable lines or missing sizes (callers
    typically skip those).  With ``day_origin=True`` the timestamp is
    reduced to seconds since local midnight, matching the simulator's
    wrapped 24-hour clock.
    """
    m = _CLF_RE.match(line)
    if m is None:
        return None
    size_field = m.group("size")
    if size_field == "-":
        return None
    try:
        ts = m.group("ts")  # e.g. 01/Nov/1996:00:00:12 -0800
        datepart, timepart = ts.split(":", 1)
        day, mon, year = datepart.split("/")
        hh, mm, rest = timepart.split(":", 2)
        ss = rest.split()[0]
        seconds = int(hh) * 3600 + int(mm) * 60 + int(ss)
        if not day_origin:
            # Days since an arbitrary epoch within the month, for multi-day use.
            seconds += (int(day) - 1) * 86_400
        _ = _MONTHS[mon]  # validate month name
        _ = int(year)
    except (ValueError, KeyError):
        return None
    return Request(float(seconds), float(size_field))
