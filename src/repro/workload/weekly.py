"""Weekly profiles: day-of-week modulation over the diurnal shape.

The paper averages 18 days of trace into one 24-hour period, flattening
weekday/weekend differences.  For users running multi-day simulations
with their own traffic, :class:`WeeklyProfile` wraps a
:class:`~repro.workload.diurnal.DiurnalProfile` with one volume factor
per weekday (Monday = index 0) while keeping the same intra-day shape.
It duck-types the profile interface used by
:class:`~repro.workload.generator.RequestStream` and the simulator's
availability projection (``rate``, ``expected_count``, ``with_skew``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from .diurnal import DAY_SECONDS, DiurnalProfile

__all__ = ["WeeklyProfile", "WEEK_SECONDS"]

WEEK_SECONDS = 7 * DAY_SECONDS

#: A typical web-service pattern: slightly heavier mid-week, lighter weekend.
DEFAULT_DAY_FACTORS = (1.05, 1.1, 1.1, 1.05, 1.0, 0.85, 0.85)


@dataclass(frozen=True)
class WeeklyProfile:
    """A diurnal profile modulated by per-weekday volume factors.

    ``day_factors[d]`` scales the whole of weekday ``d`` (time
    ``[d*86400, (d+1)*86400)`` modulo one week).  The mean of the factors
    is normalised out so ``requests_per_day`` of the base profile remains
    the weekly average.
    """

    base: DiurnalProfile = field(default_factory=DiurnalProfile)
    day_factors: tuple = DEFAULT_DAY_FACTORS

    def __post_init__(self) -> None:
        if len(self.day_factors) != 7:
            raise WorkloadError("day_factors must have exactly 7 entries")
        if any(f <= 0 for f in self.day_factors):
            raise WorkloadError("day factors must be positive")

    @property
    def _normalised(self) -> np.ndarray:
        f = np.asarray(self.day_factors, dtype=float)
        return f / f.mean()

    @property
    def requests_per_day(self) -> float:
        return self.base.requests_per_day

    @property
    def skew(self) -> float:
        return self.base.skew

    def rate(self, t):
        tt = np.asarray(t, dtype=float)
        day = (((tt - self.base.skew) % WEEK_SECONDS) // DAY_SECONDS).astype(int)
        out = self.base.rate(tt) * self._normalised[day]
        return float(out) if np.isscalar(t) else out

    def with_skew(self, skew: float) -> "WeeklyProfile":
        return WeeklyProfile(self.base.with_skew(skew), self.day_factors)

    def scaled(self, factor: float) -> "WeeklyProfile":
        return WeeklyProfile(self.base.scaled(factor), self.day_factors)

    def expected_count(self, t0: float, t1: float, steps: int = 256) -> float:
        if t1 < t0:
            raise WorkloadError(f"bad interval [{t0}, {t1}]")
        t = np.linspace(t0, t1, steps + 1)
        return float(np.trapezoid(self.rate(t), t))
