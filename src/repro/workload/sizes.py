"""Response-length distributions.

The paper's per-request resource model is linear in the response length
(``a + b*x`` seconds, capped at ``c``), so the length distribution shapes
the service-time distribution.  Mid-90s web-object studies (including the
Berkeley Home-IP trace the paper uses) report a log-normal body with a
heavy (Pareto) tail and a mean of roughly 6–15 KB; both families are
provided, plus a hybrid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["SizeDistribution", "LogNormalSizes", "ParetoSizes", "HybridSizes"]


class SizeDistribution:
    """Base class: draw response lengths in bytes."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class LogNormalSizes(SizeDistribution):
    """Log-normal lengths: the body of observed web-object distributions.

    Defaults (``median=6000``, ``sigma=1.2``) give a mean of ~12.3 KB.
    """

    median: float = 6_000.0
    sigma: float = 1.2
    max_bytes: float = 100e6

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise WorkloadError("median and sigma must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        draws = rng.lognormal(mean=math.log(self.median), sigma=self.sigma, size=n)
        return np.minimum(draws, self.max_bytes)

    @property
    def mean(self) -> float:
        return float(self.median * math.exp(self.sigma**2 / 2.0))


@dataclass(frozen=True)
class ParetoSizes(SizeDistribution):
    """Pareto lengths: the heavy tail of web objects.

    ``alpha`` just above 1 yields the very long transfers that the
    paper's cap ``c`` exists to contain ("to avoid extremely long response
    lengths from causing spikes in the waiting time").
    """

    minimum: float = 1_000.0
    alpha: float = 1.3
    max_bytes: float = 100e6

    def __post_init__(self) -> None:
        if self.minimum <= 0:
            raise WorkloadError("minimum must be positive")
        if self.alpha <= 1.0:
            raise WorkloadError("alpha must exceed 1 for a finite mean")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        draws = self.minimum * (1.0 + rng.pareto(self.alpha, size=n))
        return np.minimum(draws, self.max_bytes)

    @property
    def mean(self) -> float:
        return float(self.minimum * self.alpha / (self.alpha - 1.0))


@dataclass(frozen=True)
class HybridSizes(SizeDistribution):
    """Log-normal body with a Pareto tail, mixed by ``tail_fraction``."""

    body: LogNormalSizes = LogNormalSizes()
    tail: ParetoSizes = ParetoSizes(minimum=30_000.0, alpha=1.2)
    tail_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.tail_fraction <= 1.0):
            raise WorkloadError("tail_fraction must be in [0, 1]")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = self.body.sample(rng, n)
        mask = rng.random(n) < self.tail_fraction
        k = int(mask.sum())
        if k:
            out[mask] = self.tail.sample(rng, k)
        return out

    @property
    def mean(self) -> float:
        return float(
            (1.0 - self.tail_fraction) * self.body.mean
            + self.tail_fraction * self.tail.mean
        )
