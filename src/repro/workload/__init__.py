"""Workload generation: a synthetic stand-in for the UC Berkeley Home-IP trace.

The paper drives its simulator with the 1996 UC Berkeley Home-IP HTTP
traces (18 days averaged to one 24-hour period; load heaviest around
midnight, lightest in the early morning).  That trace is not obtainable
offline, so this package synthesises a request stream with the same three
properties the experiments depend on (see DESIGN.md):

1. a diurnal arrival-rate profile with a midnight peak and early-morning
   trough (:mod:`~repro.workload.diurnal`);
2. heavy-tailed response lengths typical of mid-90s web objects
   (:mod:`~repro.workload.sizes`);
3. per-proxy streams that are time-skewed copies of the same profile —
   the "gap" between geographically distant ISPs
   (:mod:`~repro.workload.generator`).

:mod:`~repro.workload.trace` reads and writes trace files so a real trace
can be substituted where available.
"""

from .diurnal import DiurnalProfile
from .fit import fit_profile, profile_fit_error
from .generator import Request, RequestStream, generate_streams
from .sizes import LogNormalSizes, ParetoSizes, SizeDistribution
from .trace import read_trace, write_trace
from .weekly import WeeklyProfile

__all__ = [
    "DiurnalProfile",
    "fit_profile",
    "profile_fit_error",
    "Request",
    "RequestStream",
    "generate_streams",
    "SizeDistribution",
    "LogNormalSizes",
    "ParetoSizes",
    "read_trace",
    "write_trace",
    "WeeklyProfile",
]
