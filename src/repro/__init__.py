"""repro — reproduction of Zhao & Karamcheti, *Expressing and Enforcing
Distributed Resource Sharing Agreements* (SC 2000).

The library has three layers:

1. **Expression** (:mod:`repro.economy`, :mod:`repro.agreements`): tickets
   and currencies for representing resource capacity and sharing
   agreements; agreement matrices, structure generators, and the transitive
   flow computation (``I^(m)``, ``T^(m)``, capacities ``C_i``).
2. **Enforcement** (:mod:`repro.lp`, :mod:`repro.allocation`,
   :mod:`repro.manager`): the Section-3.1 linear program that allocates a
   request while minimally perturbing global availability, plus the
   GRM/LRM manager architecture.
3. **Case study** (:mod:`repro.des`, :mod:`repro.workload`,
   :mod:`repro.proxysim`, :mod:`repro.experiments`): the ISP web-proxy
   simulation reproducing the paper's Figures 5–13.

Quickstart::

    from repro.economy import Bank
    bank = Bank()
    a = bank.create_currency("A")
    b = bank.create_currency("B")
    bank.deposit_capacity("A", 10.0)            # A owns 10 units
    bank.issue_relative_ticket("A", "B", 500)   # A shares with B
    print(bank.currency_value("B"))
"""

from ._version import __version__

__all__ = ["__version__"]
