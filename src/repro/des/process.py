"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields the amounts of simulated
time it wants to wait::

    def customer(engine, queue):
        yield 3.0                  # think for 3 seconds
        queue.push(...)
        yield 0.5

    spawn(engine, customer(engine, queue))

Yielding a :class:`Waiter` suspends until another process signals it,
giving simple synchronisation without callbacks.  The proxy simulator
itself uses plain events for speed; processes are provided for
expressiveness in examples and tests of the DES substrate.
"""

from __future__ import annotations

from collections.abc import Generator

from ..errors import SimulationError
from .engine import Engine

__all__ = ["Process", "Waiter", "spawn"]


class Waiter:
    """A one-shot synchronisation point between processes.

    A process that yields a waiter suspends until :meth:`fire` is called
    (by another process or by plain event code); ``value`` passes data to
    the waiting process as the yield-expression result.
    """

    __slots__ = ("_engine", "_waiting", "fired", "value")

    def __init__(self, engine: Engine):
        self._engine = engine
        self._waiting: list[Process] = []
        self.fired = False
        self.value = None

    def fire(self, value=None) -> None:
        """Wake every process waiting on this waiter (idempotent)."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiting, self._waiting = self._waiting, []
        for proc in waiting:
            self._engine.schedule(0.0, lambda p=proc: p._step(self.value))

    def _register(self, process: "Process") -> None:
        if self.fired:
            self._engine.schedule(0.0, lambda: process._step(self.value))
        else:
            self._waiting.append(process)


class Process:
    """A running generator coupled to the engine's clock."""

    def __init__(self, engine: Engine, gen: Generator):
        self.engine = engine
        self.gen = gen
        self.finished = False
        self.result = None

    def _step(self, send_value=None) -> None:
        if self.finished:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        if isinstance(yielded, Waiter):
            yielded._register(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self.finished = True
                self.gen.throw(SimulationError(f"negative wait {yielded!r}"))
            self.engine.schedule(float(yielded), self._step)
        else:
            self.finished = True
            raise SimulationError(
                f"process yielded {type(yielded).__name__}; expected a "
                "delay (number) or a Waiter"
            )


def spawn(engine: Engine, gen: Generator, delay: float = 0.0) -> Process:
    """Start a generator as a process after ``delay`` seconds."""
    process = Process(engine, gen)
    engine.schedule(delay, process._step)
    return process
