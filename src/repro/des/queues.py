"""Single-server FIFO work queue — the proxy front-end.

Requests queue at a proxy's front-end and are served one at a time; the
*waiting time* reported by the paper's figures is the time from arrival at
the front-end until service starts (plus any redirection overhead added by
the caller).  The queue tracks the total outstanding work so the simulator
can compare it with the scheduler-consultation threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["QueuedItem", "WorkQueue"]


@dataclass
class QueuedItem:
    """One unit of queued work.

    ``arrival`` is when the request first entered *any* queue (so waiting
    time spans redirections); ``service`` is the work it requires in
    seconds; ``ready`` is the earliest time service may start (defaults to
    ``arrival``; redirection sets it to the transfer-completion time);
    ``payload`` is caller data (the request object).
    """

    arrival: float
    service: float
    ready: float | None = None
    payload: object = None
    hops: int = 0
    """How many times this item has been redirected between queues."""

    def __post_init__(self) -> None:
        if self.ready is None:
            self.ready = self.arrival


class WorkQueue:
    """FIFO queue in front of a unit-rate server.

    The server is simulated lazily: :meth:`advance` consumes queued work up
    to the current simulation time, recording each served item's waiting
    time with the supplied callback.  ``rate`` scales processing power
    (``rate=1.25`` models the "25% more resources" configurations of
    Figure 7).
    """

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ValueError(f"service rate must be positive, got {rate}")
        self.rate = float(rate)
        self._items: deque[QueuedItem] = deque()
        self._backlog = 0.0  # seconds of work queued (unscaled)
        self._server_free_at = 0.0  # when the in-service item completes
        self.served = 0

    @property
    def backlog(self) -> float:
        """Seconds of work currently queued (excluding the in-service item)."""
        return self._backlog

    def queue_length(self) -> int:
        return len(self._items)

    def push(self, item: QueuedItem) -> None:
        self._items.append(item)
        self._backlog += item.service

    def pop_tail(self, max_work: float, max_hops: int | None = None) -> list[QueuedItem]:
        """Remove up to ``max_work`` seconds of work from the *tail*.

        Redirection takes the most recently queued requests (they would
        wait longest locally); earlier arrivals keep their position.  With
        ``max_hops`` set, items already redirected that many times are
        skipped (left in place, order preserved).  Returns the removed
        items, oldest first.
        """
        removed: list[QueuedItem] = []
        kept: list[QueuedItem] = []
        work = 0.0
        while self._items:
            item = self._items[-1]
            eligible = max_hops is None or item.hops < max_hops
            if eligible and work + item.service > max_work + 1e-12:
                break
            self._items.pop()
            if eligible:
                work += item.service
                self._backlog -= item.service
                removed.append(item)
            else:
                kept.append(item)
        # Restore skipped items in their original order.
        while kept:
            self._items.append(kept.pop())
        removed.reverse()
        return removed

    def advance(self, now: float, on_served) -> None:
        """Serve queued items whose service can start by ``now``.

        ``on_served(item, start_time)`` is called for each item as it
        reaches the server; the waiting time is ``start_time -
        item.arrival``.  Items whose start would fall after ``now`` remain
        queued.
        """
        while self._items:
            start = max(self._server_free_at, self._items[0].ready)
            if start > now + 1e-12:
                break
            item = self._items.popleft()
            self._backlog -= item.service
            self._server_free_at = start + item.service / self.rate
            self.served += 1
            on_served(item, start)

    def drain(self, on_served) -> None:
        """Serve everything left (end-of-run flush)."""
        self.advance(float("inf"), on_served)

    def __repr__(self) -> str:
        return (
            f"WorkQueue(rate={self.rate:g}, queued={len(self._items)}, "
            f"backlog={self._backlog:.1f}s)"
        )
