"""A small discrete-event simulation kernel.

The paper's case study is a trace-driven simulation of cooperating web
proxies; this package is the substrate it runs on:

- :class:`~repro.des.engine.Engine` — event heap + clock with
  deterministic FIFO tie-breaking;
- :class:`~repro.des.queues.WorkQueue` — a single-server FIFO work queue
  with queueing-delay accounting (the proxy front-end);
- :mod:`~repro.des.stats` — time-sliced statistics accumulators used to
  produce the per-10-minute-slot series the paper's figures plot.
"""

from .engine import Engine, Event
from .process import Process, Waiter, spawn
from .queues import QueuedItem, WorkQueue
from .stats import SlotSeries, SummaryStats

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Waiter",
    "spawn",
    "WorkQueue",
    "QueuedItem",
    "SlotSeries",
    "SummaryStats",
]
