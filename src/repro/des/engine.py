"""Event heap and simulation clock.

A deliberately small kernel: events are ``(time, sequence, callback)``
triples on a binary heap; the sequence number makes simultaneous events
fire in scheduling order, so runs are deterministic.

Trace propagation: scheduling an event is an async boundary — the
callback fires later, from an empty call stack.  With observability
enabled, :meth:`Engine.schedule_at` captures the scheduler's trace
context onto the event and :meth:`Engine.run` re-activates it around the
callback, so spans opened inside DES callbacks stay causally attached to
whatever scheduled them.  With observability disabled the captured
context is ``None`` and firing takes the original fast path.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..obs import get_observer, use_context
from ..obs.context import TraceContext

__all__ = ["Engine", "Event"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is by (time, seq)."""

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: trace context captured at schedule time (None when obs is off)
    ctx: TraceContext | None = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays on the heap)."""
        self.cancelled = True


class Engine:
    """The simulation clock and event loop.

    ::

        eng = Engine()
        eng.schedule_at(5.0, lambda: print("hello at", eng.now))
        eng.run(until=10.0)
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        self.events_cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute time ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time:g}; clock is already at {self._now:g}"
            )
        obs = get_observer()
        ctx = obs.current_context() if obs.enabled else None
        ev = Event(max(time, self._now), next(self._seq), fn, ctx=ctx)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:g}")
        return self.schedule_at(self._now + delay, fn)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in time order.

        Stops when the heap is empty, the next event is after ``until``
        (the clock then advances to ``until``), or ``max_events`` have
        fired.  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        fired = 0
        skipped = 0
        sim_start = self._now
        wall_start = time.perf_counter()
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    break
                ev = heapq.heappop(self._heap)
                if ev.cancelled:
                    skipped += 1
                    continue
                self._now = ev.time
                if ev.ctx is not None:
                    with use_context(ev.ctx):
                        ev.fn()
                else:
                    ev.fn()
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self.events_processed += fired
            self.events_cancelled += skipped
            obs = get_observer()
            if obs.enabled:
                wall = time.perf_counter() - wall_start
                obs.counter("des.events_fired", fired)
                obs.counter("des.events_cancelled", skipped)
                obs.event(
                    "des.run",
                    fired=fired,
                    cancelled=skipped,
                    sim_time=self._now - sim_start,
                    wall_seconds=round(wall, 6),
                )
                if wall > 0:
                    obs.gauge("des.sim_wall_ratio", (self._now - sim_start) / wall)

    def __repr__(self) -> str:
        return f"Engine(now={self._now:g}, pending={self.pending})"
