"""Time-sliced statistics accumulators.

The paper reports per-10-minute-slot series over a 24-hour period
(requests per slot, average waiting time per slot) plus scalar summaries
(worst-case waiting time, fraction of requests redirected).
:class:`SlotSeries` accumulates values into fixed-width time slots;
:class:`SummaryStats` keeps streaming scalar aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SlotSeries", "SummaryStats"]


class SlotSeries:
    """Accumulates (time, value) observations into fixed-width slots.

    ::

        waits = SlotSeries(horizon=86_400.0, width=600.0)  # 144 slots
        waits.record(t, wait)
        waits.means()      # average waiting time per 10-minute slot
        waits.counts()     # requests per slot
    """

    def __init__(self, horizon: float = 86_400.0, width: float = 600.0):
        if width <= 0 or horizon <= 0:
            raise ValueError("horizon and width must be positive")
        self.horizon = float(horizon)
        self.width = float(width)
        self.slots = int(math.ceil(horizon / width))
        self._sum = np.zeros(self.slots)
        self._count = np.zeros(self.slots, dtype=np.int64)
        self._max = np.zeros(self.slots)

    def slot_of(self, t: float) -> int:
        """Slot index for time ``t``; times wrap modulo the horizon."""
        return int((t % self.horizon) // self.width) % self.slots

    def record(self, t: float, value: float) -> None:
        s = self.slot_of(t)
        self._sum[s] += value
        self._count[s] += 1
        if value > self._max[s]:
            self._max[s] = value

    def counts(self) -> np.ndarray:
        """Observations per slot."""
        return self._count.copy()

    def means(self) -> np.ndarray:
        """Per-slot mean (0 for empty slots)."""
        out = np.zeros(self.slots)
        mask = self._count > 0
        out[mask] = self._sum[mask] / self._count[mask]
        return out

    def maxima(self) -> np.ndarray:
        """Per-slot maximum (0 for empty slots)."""
        return self._max.copy()

    def slot_times(self) -> np.ndarray:
        """Slot start times (seconds), for plotting."""
        return np.arange(self.slots) * self.width

    def peak_mean(self) -> float:
        """The worst per-slot mean — the paper's 'worst-case waiting time'."""
        means = self.means()
        return float(means.max()) if means.size else 0.0

    def overall_mean(self) -> float:
        total = int(self._count.sum())
        return float(self._sum.sum() / total) if total else 0.0

    def merge(self, other: "SlotSeries") -> None:
        """Accumulate another series (same geometry) into this one."""
        if (self.slots, self.width) != (other.slots, other.width):
            raise ValueError("cannot merge SlotSeries with different geometry")
        self._sum += other._sum
        self._count += other._count
        np.maximum(self._max, other._max, out=self._max)


@dataclass
class SummaryStats:
    """Streaming scalar aggregates of a value stream."""

    count: int = 0
    total: float = 0.0
    maximum: float = 0.0
    _sq: float = field(default=0.0, repr=False)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sq += value * value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        m = self.mean
        return max(self._sq / self.count - m * m, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)
