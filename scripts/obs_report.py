#!/usr/bin/env python3
"""Replay a repro.obs JSONL trace into human-readable summary tables.

Usage::

    PYTHONPATH=src python scripts/obs_report.py run.jsonl
    PYTHONPATH=src python scripts/obs_report.py run.jsonl --json

``--json`` emits the aggregated summary as JSON instead of tables, for
piping into other tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.events import read_trace  # noqa: E402
from repro.obs.report import render_trace, summarize_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to a JSONL trace written by repro.obs")
    parser.add_argument(
        "--json", action="store_true", help="emit the aggregated summary as JSON"
    )
    args = parser.parse_args(argv)
    if not Path(args.trace).exists():
        parser.error(f"trace file not found: {args.trace}")
    try:
        if args.json:
            print(json.dumps(summarize_trace(read_trace(args.trace)), indent=2))
        else:
            print(render_trace(args.trace))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
