#!/usr/bin/env python3
"""Run the reprolint domain rules (see src/repro/lint/).

Usage: python scripts/reprolint.py [paths...] [--baseline FILE] [--select R1,R5]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
