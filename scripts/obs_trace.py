#!/usr/bin/env python3
"""Reconstruct request span trees from one or many repro.obs traces.

Every node in a GRM/LRM deployment writes its own JSONL trace; the trace
context on each span line (trace/span/parent ids) is what stitches one
allocation's journey back together.  This tool merges the files,
rebuilds the per-request trees, and attributes each request's latency to
queueing vs transport vs topology work vs the LP solve.

Usage::

    PYTHONPATH=src python scripts/obs_trace.py run.jsonl
    PYTHONPATH=src python scripts/obs_trace.py node-a.jsonl node-b.jsonl
    PYTHONPATH=src python scripts/obs_trace.py --trace-id 1a2b3c run.jsonl
    PYTHONPATH=src python scripts/obs_trace.py --json run.jsonl
    PYTHONPATH=src python scripts/obs_trace.py explain 17 run.jsonl

``explain REQUEST_ID`` prints the flight-recorder record(s) for one
allocation decision (requestor, donor split, theta, LP statistics,
capacities before/after) — the offline counterpart of
``repro.obs.explain``.  Exit status 1 if the request id appears in none
of the given traces.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.trace_tools import (  # noqa: E402
    build_trees,
    find_decisions,
    load_traces,
    render_trees,
    trees_summary,
)


def _check_traces(parser: argparse.ArgumentParser, traces: list[str]) -> None:
    for trace in traces:
        if not Path(trace).exists():
            parser.error(f"trace file not found: {trace}")


def _cmd_tree(args) -> int:
    records = load_traces(args.traces)
    trees = build_trees(records)
    if args.json:
        summary = trees_summary(trees)
        if args.trace_id is not None:
            summary = {k: v for k, v in summary.items() if k == args.trace_id}
        print(json.dumps(summary, indent=2))
    else:
        print(render_trees(trees, trace_id=args.trace_id))
    return 0


def _cmd_explain(args) -> int:
    records = load_traces(args.traces)
    decisions = find_decisions(records, request_id=args.request_id)
    if not decisions:
        print(
            f"no decision record for request {args.request_id} in "
            f"{len(args.traces)} trace file(s)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(decisions, indent=2))
        return 0
    for dec in decisions:
        print(f"request {dec.get('request_id')}: {dec.get('outcome', '?')}")
        for key in (
            "requestor", "resource_type", "amount", "granted", "theta",
            "reason", "grm", "bank_version", "lp_backend", "lp_status",
            "lp_iterations", "trace_id", "source",
        ):
            if key in dec:
                print(f"  {key}: {dec[key]}")
        if dec.get("takes"):
            print("  donor split:")
            for principal, quantity in dec["takes"]:
                print(f"    {principal}: {quantity:g}")
        for key in ("availability_before", "capacities_before", "capacities_after"):
            if key in dec:
                cells = ", ".join(f"{p}={v:g}" for p, v in dec[key].items())
                print(f"  {key}: {cells}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Default subcommand: a bare list of trace files means "tree".
    if argv and argv[0] not in ("tree", "explain", "-h", "--help"):
        argv.insert(0, "tree")

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_tree = sub.add_parser(
        "tree", help="merge traces and print per-request span trees"
    )
    p_tree.add_argument("traces", nargs="+", help="JSONL trace file(s) to merge")
    p_tree.add_argument("--trace-id", help="only show this trace")
    p_tree.add_argument("--json", action="store_true", help="machine-readable output")
    p_tree.set_defaults(fn=_cmd_tree)

    p_explain = sub.add_parser(
        "explain", help="print the decision record(s) for a request id"
    )
    p_explain.add_argument("request_id", type=int, help="request (message) id")
    p_explain.add_argument("traces", nargs="+", help="JSONL trace file(s) to search")
    p_explain.add_argument("--json", action="store_true", help="machine-readable output")
    p_explain.set_defaults(fn=_cmd_explain)

    args = parser.parse_args(argv)
    _check_traces(parser, args.traces)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
