"""Observability overhead on the GRM message path (allocations/sec).

Runs the same ManagerPolicy workload as ``test_perf_manager_path.py``
under three observer configurations and records the throughput ratios to
``benchmarks/BENCH_obs_overhead.json``:

- ``off`` — the default :class:`~repro.obs.null.NullObserver`; this is
  the hot-path cost everyone pays, so it must stay within noise of the
  uninstrumented baseline;
- ``metrics`` — ``obs.enable()`` with no trace file (in-memory records,
  counters/histograms live);
- ``sampled`` — ``obs.enable(trace_path=..., sample=0.01)`` — full
  tracing plus the flight recorder with 1% head-based sampling, the
  recommended production configuration.

Environment knobs:

- ``REPRO_BENCH_SMOKE=1`` — tiny iteration count, no JSON append, no
  ratio assertions.  CI uses this to guard import/runtime breakage of
  all three observer modes without depending on runner timing.
"""

import json
import os
import tempfile
import time

import numpy as np

import repro.obs as obs
from repro.agreements import complete_structure
from repro.proxysim.manager_bridge import ManagerPolicy

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_obs_overhead.json")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_WARMUP = 1 if SMOKE else 20
N_PLANS = 5 if SMOKE else 200
#: sampled tracing may cost at most this factor vs. the observer being off
MAX_SAMPLED_SLOWDOWN = 1.5
#: metrics without a trace file may cost at most this factor vs. off
MAX_METRICS_SLOWDOWN = 2.5


def _drive(policy, n, seed):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        avail = rng.uniform(0.0, 100.0, size=len(policy.principals))
        req = int(rng.integers(0, len(policy.principals)))
        avail[req] = 0.0
        policy.plan(req, float(rng.uniform(1.0, 20.0)), avail)


def _measure() -> float:
    """Allocations/sec of a fresh ManagerPolicy under the current observer."""
    system = complete_structure(10, share=0.1)
    policy = ManagerPolicy(system)
    _drive(policy, N_WARMUP, seed=42)
    start = time.perf_counter()
    _drive(policy, N_PLANS, seed=7)
    return N_PLANS / (time.perf_counter() - start)


def test_obs_overhead():
    obs.disable()
    try:
        ops_off = _measure()

        obs.enable()
        ops_metrics = _measure()
        obs.disable()

        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, "bench-trace.jsonl")
            obs.enable(trace_path=trace_path, sample=0.01)
            ops_sampled = _measure()
            obs.disable()
            trace_bytes = os.path.getsize(trace_path)
    finally:
        obs.disable()

    if SMOKE:
        # Smoke mode guards that all three modes still run end to end;
        # the iteration count is too small for the ratios to mean much.
        assert ops_off > 0 and ops_metrics > 0 and ops_sampled > 0
        return

    metrics_ratio = ops_off / ops_metrics
    sampled_ratio = ops_off / ops_sampled

    with open(BENCH_PATH) as fh:
        record = json.load(fh)
    record["entries"].append(
        {
            "label": "run",
            "plans": N_PLANS,
            "off_allocations_per_sec": round(ops_off, 1),
            "metrics_allocations_per_sec": round(ops_metrics, 1),
            "sampled_allocations_per_sec": round(ops_sampled, 1),
            "metrics_slowdown": round(metrics_ratio, 3),
            "sampled_slowdown": round(sampled_ratio, 3),
            "sampled_trace_bytes": trace_bytes,
        }
    )
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    assert sampled_ratio <= MAX_SAMPLED_SLOWDOWN, (
        f"1% sampled tracing costs {sampled_ratio:.2f}x vs. observer off "
        f"(limit {MAX_SAMPLED_SLOWDOWN}x)"
    )
    assert metrics_ratio <= MAX_METRICS_SLOWDOWN, (
        f"metrics-only observer costs {metrics_ratio:.2f}x vs. off "
        f"(limit {MAX_METRICS_SLOWDOWN}x)"
    )
