"""Invariant-sanitizer overhead on the GRM message path (allocations/sec).

Runs the same ManagerPolicy workload as ``test_perf_obs_overhead.py``
with the :mod:`repro.sanitize` hooks off and on, and records throughput
to ``benchmarks/BENCH_sanitize_overhead.json``:

- ``off`` — the default: every hook is a single predicate check, so the
  hot path must stay within noise of itself (that is the asserted
  contract — disabled sanitizing is free);
- ``on`` — ``REPRO_SANITIZE=1`` semantics: allocation epilogues verify
  take conservation, ``C' <= C`` and ``theta >= 0``; the GRM epilogue
  additionally re-derives the bank's currency valuation to catch state
  drift at a constant version.  This is a debug/CI configuration, so its
  slowdown is *recorded* but only loosely bounded.

Environment knobs:

- ``REPRO_BENCH_SMOKE=1`` — tiny iteration count, no JSON append, no
  ratio assertions.  CI uses this to guard that both modes run end to
  end without depending on runner timing.
"""

import json
import os
import time

import numpy as np

from repro import sanitize
from repro.agreements import complete_structure
from repro.proxysim.manager_bridge import ManagerPolicy

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_sanitize_overhead.json")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_WARMUP = 1 if SMOKE else 20
N_PLANS = 5 if SMOKE else 200
#: disabled hooks must not cost anything measurable: two off runs
#: bracketing the on run may differ only by timing noise
MAX_OFF_DRIFT = 1.35
#: the armed sanitizer re-solves the currency valuation per allocation;
#: generous bound, this is a debug configuration
MAX_ON_SLOWDOWN = 30.0


def _drive(policy, n, seed):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        avail = rng.uniform(0.0, 100.0, size=len(policy.principals))
        req = int(rng.integers(0, len(policy.principals)))
        avail[req] = 0.0
        policy.plan(req, float(rng.uniform(1.0, 20.0)), avail)


def _measure() -> float:
    """Allocations/sec of a fresh ManagerPolicy under the current gate."""
    system = complete_structure(10, share=0.1)
    policy = ManagerPolicy(system)
    _drive(policy, N_WARMUP, seed=42)
    start = time.perf_counter()
    _drive(policy, N_PLANS, seed=7)
    return N_PLANS / (time.perf_counter() - start)


def test_sanitize_overhead():
    prev = sanitize.enabled()
    try:
        sanitize.disable()
        _measure()  # discard: pays one-time import/cache costs
        ops_off_before = _measure()

        sanitize.enable()
        ops_on = _measure()

        sanitize.disable()
        ops_off_after = _measure()
    finally:
        if prev:
            sanitize.enable()
        else:
            sanitize.disable()

    if SMOKE:
        # Smoke mode guards that both modes run end to end; the
        # iteration count is too small for the ratios to mean much.
        assert ops_off_before > 0 and ops_on > 0 and ops_off_after > 0
        return

    ops_off = max(ops_off_before, ops_off_after)
    off_drift = max(ops_off_before, ops_off_after) / min(
        ops_off_before, ops_off_after
    )
    on_slowdown = ops_off / ops_on

    with open(BENCH_PATH) as fh:
        record = json.load(fh)
    record["entries"].append(
        {
            "label": "run",
            "plans": N_PLANS,
            "off_allocations_per_sec": round(ops_off, 1),
            "on_allocations_per_sec": round(ops_on, 1),
            "off_drift": round(off_drift, 3),
            "on_slowdown": round(on_slowdown, 3),
        }
    )
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    assert off_drift <= MAX_OFF_DRIFT, (
        f"sanitizer-off runs drifted {off_drift:.2f}x apart "
        f"(limit {MAX_OFF_DRIFT}x): disabled hooks must be free"
    )
    assert on_slowdown <= MAX_ON_SLOWDOWN, (
        f"armed sanitizer costs {on_slowdown:.2f}x vs. off "
        f"(limit {MAX_ON_SLOWDOWN}x)"
    )
