"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's figures (or an ablation)
with ``pytest-benchmark`` timing a single full run (rounds=1 — these are
minutes-scale simulations, not microbenchmarks), then asserts the
figure's *shape*: who wins, by roughly what factor, where crossovers
fall.  Absolute waiting times differ from the paper (synthetic trace,
scaled workload — see EXPERIMENTS.md).

Environment knobs:

- ``REPRO_BENCH_SCALE`` (default 25): workload scale passed to the
  experiment harnesses; smaller = closer to paper volume but slower.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "25"))


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full execution of ``fn`` and return its result.

    Results carrying a ``render()`` (the experiment harnesses) are also
    appended to ``benchmarks/results.txt`` so the regenerated figure
    tables survive pytest's output capture.
    """
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    if hasattr(result, "render"):
        with open(RESULTS_PATH, "a") as fh:
            fh.write(result.render() + "\n\n")
    return result
