"""Figure 5: diurnal load and waiting time without sharing.

Paper: load peaks around midnight, troughs in the early morning; the
average waiting time peaks with the load at ~250 s.  Shape asserted: the
wait curve is strongly diurnal (peak orders of magnitude above trough)
and its peak falls within a few hours of the load peak.
"""

import numpy as np

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig05


def test_fig05_no_sharing_baseline(benchmark):
    result = run_once(benchmark, fig05.run, scale=BENCH_SCALE)
    print("\n" + result.render())

    waits = result.series["mean_wait"]
    counts = result.series["requests_per_slot"]
    hours = result.series["slot_hours"]

    # Load shape: heaviest near midnight (22h-01h), lightest early morning.
    load_peak_hour = hours[int(counts.argmax())]
    load_trough_hour = hours[int(np.argmin(np.where(counts > 0, counts, np.inf)))]
    assert load_peak_hour > 20.5 or load_peak_hour < 1.5
    assert 3.0 <= load_trough_hour <= 9.0

    # Waits peak with the load, much higher than the quiet hours.
    peak_wait = waits.max()
    trough_wait = np.percentile(waits[counts > 0], 10)
    assert peak_wait > 50.0, "no-sharing peak must be deep in overload"
    assert peak_wait > 20.0 * max(trough_wait, 1e-9)

    # The wait peak lags the load peak by at most a few hours.
    wait_peak_hour = hours[int(waits.argmax())]
    lag = (wait_peak_hour - load_peak_hour) % 24.0
    assert lag <= 6.0
