"""Figure 10: loop structure, donor three time zones away (skip=3).

Paper: level-1 worst-case wait drops from 35 s (skip=1) to 7 s here —
the donor is already well past its own rush hour — and level >= 3
converges to ~2 s.  Shape asserted: skip-3 level-1 beats skip-1 level-1,
and transitive levels are at least as good as direct-only.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig09_11


def test_fig10_loop_skip3(benchmark):
    result = run_once(
        benchmark, fig09_11.run, scale=BENCH_SCALE, skips=(1, 3),
        levels=(1, 3), seeds=(0, 1),
    )
    print("\n" + result.render())

    def worst(skip, level):
        return result.row_by(skip=skip, level=level)["worst_slot_wait_s"]

    # The paper's headline for this figure: a donor 3 zones away is far
    # more useful than a neighbouring one when only direct agreements count.
    assert worst(3, 1) < worst(1, 1) * 0.8

    # Transitivity cannot make skip-3 worse by much, and the converged
    # (level-3) waits of both loops should be in the same ballpark.
    assert worst(3, 3) < worst(3, 1) * 1.5 + 5.0
    assert worst(3, 3) < worst(1, 1)
    assert abs(worst(3, 3) - worst(1, 3)) < max(worst(1, 3), worst(3, 3))
