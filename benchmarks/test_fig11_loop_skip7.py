"""Figure 11: loop structure, donor seven time zones away (skip=7).

Paper: level-1 worst-case wait is already ~3 s — the sole donor sits deep
in its quiet hours during the requester's peak — and level >= 3 stays
~2 s.  Shape asserted: skip-7 level-1 beats skip-1 level-1 decisively and
is within a modest factor of its own fully transitive configuration
(i.e. direct agreements already capture most of the benefit here).
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig09_11


def test_fig11_loop_skip7(benchmark):
    result = run_once(
        benchmark, fig09_11.run, scale=BENCH_SCALE, skips=(1, 7),
        levels=(1, 3), seeds=(0, 1),
    )
    print("\n" + result.render())

    def worst(skip, level):
        return result.row_by(skip=skip, level=level)["worst_slot_wait_s"]

    # A far-away donor makes direct-only enforcement good already.
    assert worst(7, 1) < worst(1, 1) * 0.8

    # Transitivity brings skip-7 little extra (it was never starved).
    assert worst(7, 3) < worst(7, 1) * 1.5 + 5.0

    # Converged configurations agree across loop skips (paper: ~2 s all).
    assert abs(worst(7, 3) - worst(1, 3)) < max(worst(1, 3), worst(7, 3))
