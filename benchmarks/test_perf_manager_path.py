"""Throughput of the GRM message path (allocations/sec).

Drives :class:`~repro.proxysim.manager_bridge.ManagerPolicy` — the full
message pipeline (AvailabilityBatch + AllocationRequestMsg over the
in-process transport, bank-backed topology, LP solve) — on the 10-proxy
complete structure and records allocations/sec to
``benchmarks/BENCH_manager_path.json``.

The JSON file is a trajectory: each full run appends an entry, so the
topology-cache win (and any future regression) stays visible next to the
pre-refactor baseline entry.  The run must clear ``MIN_SPEEDUP``x the
baseline's allocations/sec.

Environment knobs:

- ``REPRO_BENCH_SMOKE=1`` — tiny iteration count, no JSON append, no
  throughput assertion.  CI uses this to guard import/runtime breakage
  of the benchmark path without depending on runner timing.
"""

import json
import os
import time

import numpy as np

from repro.agreements import complete_structure
from repro.proxysim.manager_bridge import ManagerPolicy

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_manager_path.json")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_WARMUP = 1 if SMOKE else 20
N_PLANS = 5 if SMOKE else 300
MIN_SPEEDUP = 2.0


def _drive(policy, n, seed):
    """Run ``n`` consultations with pseudo-random availability/amounts."""
    rng = np.random.default_rng(seed)
    for _ in range(n):
        avail = rng.uniform(0.0, 100.0, size=len(policy.principals))
        req = int(rng.integers(0, len(policy.principals)))
        avail[req] = 0.0
        policy.plan(req, float(rng.uniform(1.0, 20.0)), avail)


def test_manager_path_throughput():
    system = complete_structure(10, share=0.1)
    policy = ManagerPolicy(system)
    _drive(policy, N_WARMUP, seed=42)

    start = time.perf_counter()
    _drive(policy, N_PLANS, seed=7)
    seconds = time.perf_counter() - start
    ops = N_PLANS / seconds

    if SMOKE:
        # Smoke mode guards that the whole message path still runs; the
        # iteration count is too small for the timing to mean anything.
        assert ops > 0
        return

    with open(BENCH_PATH) as fh:
        record = json.load(fh)
    baseline = next(e for e in record["entries"] if e.get("baseline"))

    record["entries"].append(
        {
            "label": "run",
            "detail": "bank.topology() version-keyed cache + AvailabilityBatch",
            "allocations_per_sec": round(ops, 1),
            "seconds": round(seconds, 3),
            "plans": N_PLANS,
        }
    )
    with open(BENCH_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    floor = MIN_SPEEDUP * baseline["allocations_per_sec"]
    assert ops >= floor, (
        f"manager-path throughput regressed: {ops:.1f} allocations/sec "
        f"< {MIN_SPEEDUP}x baseline ({baseline['allocations_per_sec']})"
    )
