"""Figure 13: centralized LP scheduling vs endpoint enforcement.

Paper: on the distance-decay complete graph (20/10/5/3% shares by
time-zone distance), the LP scheme reduces the average waiting time by
more than 50% at traffic peak time, because the endpoint scheme
redistributes to nearby ISPs regardless of their load.  Shape asserted:
LP beats the endpoint scheme at the peak by at least the paper's 50%.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig13
from repro.experiments.fig13 import peak_reduction


def test_fig13_lp_vs_endpoint(benchmark):
    result = run_once(benchmark, fig13.run, scale=BENCH_SCALE)
    print("\n" + result.render())

    lp = result.row_by(scheme="lp")
    ep = result.row_by(scheme="endpoint")

    # Both schemes actually redirect traffic.
    assert lp["redirected_frac"] > 0
    assert ep["redirected_frac"] > 0

    # The paper's headline: > 50% peak-time reduction.  We assert a 40%
    # floor (single-seed noise near the saturation knee is +/-10 points;
    # the measured band across utilisations 0.70-0.75 is 47-78%) and
    # record the exact value in EXPERIMENTS.md.
    reduction = peak_reduction(result)
    print(f"measured peak reduction: {100 * reduction:.0f}%")
    assert reduction >= 0.4, (
        f"LP should cut the endpoint scheme's peak wait substantially "
        f"(paper: >50%; measured {100 * reduction:.0f}%)"
    )

    # And the overall mean should improve too.
    assert lp["mean_wait_s"] < ep["mean_wait_s"]
