"""Ablation: sensitivity to the scheduler-consultation threshold.

The paper consults the global scheduler "when the resource requirements
of requests queued up at a proxy's front-end exceed a threshold" but does
not study the threshold itself.  This bench sweeps it: too high a
threshold lets queues sit deep before anything moves (waits track the
threshold); the benefit of sharing is robust across reasonable settings.
"""

import numpy as np

from conftest import BENCH_SCALE, run_once
from repro.agreements import complete_structure
from repro.experiments.common import base_config
from repro.proxysim import run_simulation

SYSTEM = complete_structure(10, share=0.1)


def sweep(thresholds=(5.0, 15.0, 40.0, 120.0)):
    rows = []
    for thr in thresholds:
        cfg = base_config(BENCH_SCALE, scheme="lp", gap=3600.0, threshold=thr)
        res = run_simulation(cfg, SYSTEM)
        rows.append(
            {
                "threshold_s": thr,
                "worst_slot_wait_s": res.worst_case_wait(0),
                "mean_wait_s": res.overall_mean_wait(0),
                "consults": res.scheduler_consults,
            }
        )
    return rows


def test_threshold_sensitivity(benchmark):
    rows = run_once(benchmark, sweep)
    for row in rows:
        print(row)

    worsts = np.array([r["worst_slot_wait_s"] for r in rows])
    consults = np.array([r["consults"] for r in rows])

    # Higher thresholds consult less.
    assert consults[0] > consults[-1]

    # Every setting still beats the ~1000s-scale no-sharing baseline by a lot.
    assert worsts.max() < 400.0

    # A very lax threshold costs waiting time relative to an eager one.
    assert rows[-1]["mean_wait_s"] >= rows[0]["mean_wait_s"] * 0.8
