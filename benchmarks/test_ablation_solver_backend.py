"""Ablation: scipy/HiGHS vs the from-scratch simplex on allocation LPs.

Verifies the library's results do not hinge on one solver and measures
the (expected, substantial) speed gap.
"""

import pytest

from repro.agreements import complete_structure, distance_decay_structure
from repro.allocation import allocate_lp

SYSTEMS = {
    "complete10": complete_structure(10, share=0.1, capacity=1.0),
    "decay10": distance_decay_structure(10),
}


@pytest.mark.parametrize("backend", ["scipy", "simplex"])
@pytest.mark.parametrize("system_name", list(SYSTEMS))
def test_solver_backend_speed(benchmark, backend, system_name):
    system = SYSTEMS[system_name]
    result = benchmark(
        allocate_lp, system, "isp0", 1.5,
        formulation="reduced", backend=backend,
    )
    assert result.satisfied == pytest.approx(1.5)


def test_backends_equal_optimum():
    for system in SYSTEMS.values():
        a = allocate_lp(system, "isp3", 1.2, backend="scipy")
        b = allocate_lp(system, "isp3", 1.2, formulation="reduced",
                        backend="simplex")
        assert a.theta == pytest.approx(b.theta, abs=1e-6)
