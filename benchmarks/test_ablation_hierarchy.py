"""Ablation: flat LP vs multigrid refinement on hierarchical structures.

Section 3.2 proposes multigrid refinement to reduce LP complexity on
hierarchical agreement graphs.  This bench compares the flat
(all-principals) LP against the two-level multigrid allocator on a
6-groups-of-8 structure: the multigrid answer must satisfy the same
requests with comparable perturbation while solving much smaller LPs.
"""

import numpy as np
import pytest

from repro.agreements import hierarchical_structure
from repro.allocation import allocate_hierarchical, allocate_lp

SYSTEM = hierarchical_structure(
    6, 8, intra_share_total=0.5, inter_share=0.08, capacity=1.0
)
REQUESTER = "node0"


def test_flat_lp_speed(benchmark):
    amount = 0.9 * SYSTEM.capacity_of(REQUESTER)
    result = benchmark(allocate_lp, SYSTEM, REQUESTER, amount)
    assert result.satisfied == pytest.approx(amount)


def test_multigrid_speed(benchmark):
    amount = 0.9 * SYSTEM.capacity_of(REQUESTER)
    result = benchmark(
        allocate_hierarchical, SYSTEM, REQUESTER, amount, partial=True
    )
    assert result.satisfied > 0


def test_multigrid_matches_flat_quality():
    rng = np.random.default_rng(11)
    for _ in range(5):
        V = 0.5 + rng.random(SYSTEM.n)
        live = SYSTEM.with_capacities(V)
        live.groups = SYSTEM.groups
        amount = 0.6 * live.capacity_of(REQUESTER)
        flat = allocate_lp(live, REQUESTER, amount)
        multi = allocate_hierarchical(live, REQUESTER, amount, partial=True)
        # Multigrid satisfies (nearly) the full request...
        assert multi.satisfied >= amount * 0.95
        # ...with perturbation within a small factor of the optimum.
        assert multi.theta <= flat.theta * 5.0 + 0.2
