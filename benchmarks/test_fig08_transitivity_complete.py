"""Figure 8: transitivity levels on the complete agreement graph.

Paper: "resource sharing helps but the incremental improvement by
considering indirect transitive agreements is small" — every server is
already directly reachable.  Shape asserted: every level beats
no-sharing by a large factor, and deeper levels change the result only
modestly relative to that gain.
"""

import numpy as np

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig08


def test_fig08_levels_complete_graph(benchmark):
    result = run_once(
        benchmark, fig08.run, scale=BENCH_SCALE, levels=(1, 2, 3, 9),
    )
    print("\n" + result.render())

    base = result.row_by(level="none")["worst_slot_wait_s"]
    waits = {
        row["level"]: row["worst_slot_wait_s"]
        for row in result.rows
        if row["level"] != "none"
    }

    # Sharing helps dramatically at every level.
    for level, worst in waits.items():
        assert worst < base / 5.0, f"level {level} must beat no-sharing"

    # Incremental transitive benefit is small: the spread across levels is
    # tiny compared to the no-sharing gap.
    values = np.array(list(waits.values()))
    spread = values.max() - values.min()
    gain = base - values.max()
    assert spread < 0.35 * gain, (
        f"levels should be nearly equivalent on a complete graph "
        f"(spread {spread:.1f}s vs gain {gain:.1f}s)"
    )
