"""Ablation: donor-availability reporting — backlog-only vs projected load.

The paper says LRMs "provide resource availability information to the GRM
dynamically" without defining availability.  Two natural readings:

- backlog-only (``project_arrivals = 0``): spare capacity right now;
  opportunistic, lets a nominally busy donor absorb work during lulls —
  but also lets mid-load proxies front-run a donor's upcoming rush hour;
- full projection (``project_arrivals = 1``): reserve the donor's entire
  expected near-future load; safe but starves sharing exactly when the
  only donor rides the same rush hour (the skip-1 loop).

This bench measures both extremes (plus the 0.5 compromise) on the two
structures that stress them in opposite directions.
"""

from conftest import BENCH_SCALE, run_once
from repro.agreements import complete_structure, loop_structure
from repro.experiments.common import base_config
from repro.proxysim import run_simulation

COMPLETE = complete_structure(10, share=0.1)
LOOP1 = loop_structure(10, share=0.8, skip=1)


def sweep(weights=(0.0, 0.5, 1.0)):
    rows = []
    for w in weights:
        cfg = base_config(BENCH_SCALE, scheme="lp", gap=3600.0, project_arrivals=w)
        complete = run_simulation(cfg, COMPLETE)
        loop = run_simulation(cfg.with_(level=1), LOOP1)
        rows.append(
            {
                "projection_weight": w,
                "complete_worst_s": complete.worst_case_wait(0),
                "loop1_worst_s": loop.worst_case_wait_over(range(1, 10)),
            }
        )
    return rows


def test_projection_weight(benchmark):
    rows = run_once(benchmark, sweep)
    for row in rows:
        print(row)
    by_w = {r["projection_weight"]: r for r in rows}

    # Full projection must visibly hurt the skip-1 loop (its only donor is
    # always "projected busy"), relative to backlog-only reporting.
    assert by_w[1.0]["loop1_worst_s"] > 1.5 * by_w[0.0]["loop1_worst_s"]

    # On the complete graph all settings stay in the same ballpark — there
    # is always some donor with genuine spare capacity.
    worst = max(r["complete_worst_s"] for r in rows)
    best = min(r["complete_worst_s"] for r in rows)
    assert worst < 4.0 * best
