"""Figure 9: loop structure, donor one time zone away (skip=1, 80% share).

Paper: worst-case waiting time is 35 s with direct agreements only
(level=1) — the donor is busy whenever the requester is — and drops to
~2 s once three or more levels of transitive agreements are enforced.
Shape asserted: level >= 3 clearly beats level 1, and everything beats
no-sharing.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig08, fig09_11


def test_fig09_loop_skip1(benchmark):
    result = run_once(
        benchmark, fig09_11.run, scale=BENCH_SCALE, skips=(1,),
        levels=(1, 2, 3, 9), seeds=(0, 1),
    )
    print("\n" + result.render())

    waits = {
        row["level"]: row["worst_slot_wait_s"] for row in result.rows
    }
    # Transitivity pays when the only direct donor shares your rush hour.
    assert waits[3] < waits[1] * 0.8, (
        f"level 3 ({waits[3]:.1f}s) should clearly beat level 1 "
        f"({waits[1]:.1f}s) on the skip-1 loop"
    )
    assert waits[9] < waits[1]
    # Deeper transitivity adds little beyond level 3 (paper: converged).
    assert abs(waits[9] - waits[3]) < 0.5 * waits[3] + 5.0
