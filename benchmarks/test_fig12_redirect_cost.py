"""Figure 12: redirection cost has negligible impact.

Paper: fixed per-redirect overheads equal to 1x / 2x the average
processing time leave the average waiting time essentially unchanged,
because < 1.5% of requests are redirected overall (< 6% at peak).  Shape
asserted: the three cost curves stay within a modest factor of each
other, and redirection remains a minority of traffic.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig12


def test_fig12_redirect_cost(benchmark):
    result = run_once(benchmark, fig12.run, scale=BENCH_SCALE)
    print("\n" + result.render())

    by_cost = {r["cost_multiplier"]: r for r in result.rows}

    free = by_cost[0.0]["mean_wait_s"]
    single = by_cost[1.0]["mean_wait_s"]
    double = by_cost[2.0]["mean_wait_s"]

    # "Negligible impact": costs comparable to a service time change the
    # mean wait by far less than the sharing benefit itself.
    assert single < free * 2.0 + 2.0
    assert double < free * 2.5 + 2.0

    # Redirection is a minority of traffic (the reason the cost is cheap).
    for row in result.rows:
        assert row["redirected_frac"] < 0.5
        assert row["peak_redirected_frac"] <= 1.0
