"""Ablation: faithful (n^2+n+1 variables) vs reduced (n+1) LP formulation.

DESIGN.md calls out that the paper's LP can be algebraically reduced by
substituting constraint (1) into (2).  This bench verifies the two
formulations find the same optimum and measures the speedup — the reason
the simulator defaults to the reduced form.
"""

import numpy as np
import pytest

from repro.agreements import complete_structure
from repro.allocation import allocate_lp

SYSTEM = complete_structure(10, share=0.1, capacity=1.0)
REQUEST = ("isp0", 1.5)


@pytest.mark.parametrize("formulation", ["reduced", "faithful"])
def test_lp_formulation_speed(benchmark, formulation):
    principal, amount = REQUEST
    result = benchmark(
        allocate_lp, SYSTEM, principal, amount, formulation=formulation
    )
    assert result.satisfied == pytest.approx(amount)


def test_formulations_equal_optimum():
    principal, amount = REQUEST
    rng = np.random.default_rng(7)
    for _ in range(20):
        V = rng.random(10) * 2
        live = SYSTEM.with_capacities(V)
        x = 0.9 * live.capacity_of(principal)
        r = allocate_lp(live, principal, x, formulation="reduced")
        f = allocate_lp(live, principal, x, formulation="faithful")
        assert r.theta == pytest.approx(f.theta, abs=1e-6)
