"""Figure 6: waiting time vs time skew (gap) under a complete 10% graph.

Paper: with gap=3600 s the average waiting time drops from ~250 s to
below 2 s.  Shape asserted: sharing always beats no-sharing; the gap=3600
configuration improves on no-sharing by at least an order of magnitude
(the paper shows two); larger gaps never hurt much.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig06


def test_fig06_gap_sweep(benchmark):
    result = run_once(benchmark, fig06.run, scale=BENCH_SCALE)
    print("\n" + result.render())

    base = result.row_by(gap_s="none (no sharing)")["worst_slot_wait_s"]
    by_gap = {
        row["gap_s"]: row["worst_slot_wait_s"]
        for row in result.rows
        if isinstance(row["gap_s"], float)
    }

    # Sharing helps at every gap.
    for gap, worst in by_gap.items():
        assert worst < base, f"gap={gap} should beat no-sharing"

    # The headline: gap=3600 collapses the peak by >= 10x (paper: ~125x).
    assert by_gap[3600.0] <= base / 10.0

    # Skew matters: the fully aligned case (gap=0) benefits least.
    assert by_gap[3600.0] <= by_gap[0.0]

    # Redirection stays a modest fraction of traffic.
    for row in result.rows:
        assert row["redirected"] <= 0.5
