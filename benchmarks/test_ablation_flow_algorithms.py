"""Ablation: exact subset-DP vs DFS oracle vs walk approximation for T^(m).

The transitive coefficients are recomputed whenever the agreement
structure changes; this bench quantifies the cost of exactness at the
paper's scale (n = 10) and beyond, and verifies the approximation's
upper-bound property.
"""

import numpy as np
import pytest

from repro.agreements.flow import transitive_coefficients


def random_S(n, seed=0, scale=None):
    rng = np.random.default_rng(seed)
    S = rng.random((n, n)) * (scale if scale is not None else 0.9 / n)
    np.fill_diagonal(S, 0.0)
    return S


@pytest.mark.parametrize("method", ["dp", "dfs", "walk"])
def test_flow_method_speed_n10(benchmark, method):
    S = random_S(10)
    T = benchmark(transitive_coefficients, S, None, method)
    assert T.shape == (10, 10)


@pytest.mark.parametrize("method", ["dp", "walk"])
def test_flow_method_speed_n14(benchmark, method):
    S = random_S(14)
    T = benchmark(transitive_coefficients, S, None, method)
    assert T.shape == (14, 14)


def test_walk_bounds_exact_everywhere():
    for n in (6, 10):
        S = random_S(n, seed=3)
        exact = transitive_coefficients(S, None, "dp")
        walk = transitive_coefficients(S, n - 1, "walk")
        assert np.all(walk >= exact - 1e-12)
        # On these weakly coupled graphs the bound is tight-ish.
        assert np.all(walk <= exact * 1.5 + 1e-9)
