"""Figure 7: sharing vs increased standalone capacity.

Paper: 25-35% more resources are required to match the performance
obtained by resource sharing.  Matching is judged on peak-slot waiting
time (see `repro.experiments.fig07`).  Shape asserted: capacity 1.0
without sharing is far worse than sharing; 10% extra capacity is not
enough; the crossover needs a >= 20% capacity investment.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig07


def test_fig07_capacity_sweep(benchmark):
    result = run_once(
        benchmark, fig07.run, scale=BENCH_SCALE,
        factors=(1.0, 1.1, 1.2, 1.3, 1.4, 1.5),
    )
    print("\n" + result.render())

    share = result.row_by(config="sharing @ capacity 1.0")["worst_slot_wait_s"]
    none_rows = [r for r in result.rows if r["config"] == "no sharing"]
    by_cap = {r["capacity"]: r["worst_slot_wait_s"] for r in none_rows}

    # Sharing at 1.0 crushes no-sharing at 1.0 at the peak.
    assert share < by_cap[1.0] / 5.0

    # More standalone capacity helps a lot by the top of the sweep.
    assert by_cap[1.5] < by_cap[1.0] / 10.0

    # The crossover needs a real capacity investment (paper: 25-35%).
    assert by_cap[1.1] > share, "10% extra capacity must NOT match sharing"
    crossover = next(
        (c for c in sorted(by_cap) if by_cap[c] <= share), None
    )
    assert crossover is None or crossover >= 1.2
