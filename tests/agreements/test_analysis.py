"""Tests for the agreement-graph analysis utilities."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem, complete_structure, loop_structure
from repro.agreements.analysis import (
    chain_contributions,
    dependency,
    donor_set,
    exposure,
    reachable_set,
    summarize,
)
from repro.economy import build_example_1


@pytest.fixture
def example1():
    bank, _ = build_example_1()
    return AgreementSystem.from_bank(bank, "disk")


class TestReachability:
    def test_example1_reachable_sets(self, example1):
        # D reaches B's resources directly and A's transitively.
        reach = reachable_set(example1, "D")
        assert reach["B"] == pytest.approx(9.0)  # 0.6 * 15
        assert reach["A"] == pytest.approx(3.0)  # 0.5 * 0.6 * 10
        assert "C" not in reach

    def test_level_one_cuts_chains(self, example1):
        reach = reachable_set(example1, "D", level=1)
        assert "A" not in reach
        assert reach["B"] == pytest.approx(9.0)

    def test_donor_set(self, example1):
        out = donor_set(example1, "A")
        assert set(out) == {"B", "C", "D"}
        assert out["B"] == pytest.approx(5.0)
        assert out["C"] == pytest.approx(3.0)  # absolute grant
        assert out["D"] == pytest.approx(3.0)  # chained A->B->D

    def test_loop_reach_grows_with_level(self):
        sys_ = loop_structure(6, 0.8, skip=1)
        assert len(reachable_set(sys_, "isp0", level=1)) == 1
        assert len(reachable_set(sys_, "isp0", level=3)) == 3


class TestExposureAndDependency:
    def test_exposure_of_owner(self, example1):
        # A has promised at most 50% (relative) + 3 absolute, clamped at V.
        assert 0.5 <= exposure(example1, "A") <= 1.0

    def test_exposure_zero_capacity(self, example1):
        assert exposure(example1, "D") == 0.0

    def test_dependency_extremes(self, example1):
        assert dependency(example1, "A") == pytest.approx(0.0)
        assert dependency(example1, "D") == pytest.approx(1.0)  # owns nothing
        assert 0.0 < dependency(example1, "B") < 1.0

    def test_dependency_complete(self):
        sys_ = complete_structure(5, 0.1)
        d = dependency(sys_, "isp0")
        C = sys_.capacity_of("isp0")
        assert d == pytest.approx(1.0 - 1.0 / C)


class TestChainContributions:
    def test_direct_vs_transitive_split(self, example1):
        chain = chain_contributions(example1, "A", "D")
        levels = dict(chain)
        assert 1 not in levels  # no direct A->D agreement
        assert levels[2] == pytest.approx(0.3)  # A->B->D = 0.5*0.6

    def test_exponential_decay_in_loops(self):
        sys_ = loop_structure(8, 0.5, skip=1)
        chain = chain_contributions(sys_, "isp0", "isp4")
        assert chain == [(4, pytest.approx(0.5**4))]

    def test_marginals_sum_to_closure(self):
        sys_ = complete_structure(6, 0.15)
        total = sum(m for _, m in chain_contributions(sys_, "isp0", "isp3"))
        assert total == pytest.approx(float(sys_.coefficients()[0, 3]))


class TestSummary:
    def test_complete_structure_summary(self):
        sys_ = complete_structure(10, 0.1)
        s = summarize(sys_)
        assert s.n == 10
        assert s.edges == 90
        assert s.density == pytest.approx(1.0)
        assert s.mean_share_out == pytest.approx(0.9)
        assert s.mean_capacity_gain > 1.5
        assert s.disconnected_principals == ()

    def test_disconnected_detection(self):
        S = np.zeros((3, 3))
        S[0, 1] = 0.5
        sys_ = AgreementSystem(["a", "b", "c"], np.ones(3), S)
        s = summarize(sys_)
        assert s.disconnected_principals == ("c",)
        assert s.edges == 1
