"""Tests for the AgreementTopology / CapacityView split.

Covers the contracts the refactor introduced — immutability, structural
hashing, shared coefficient caches, per-view memoisation — plus a
property test that the :class:`AgreementSystem` facade produces exactly
the pre-refactor results (the direct ``repro.agreements.flow``
computations) on random agreement structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import AgreementSystem, AgreementTopology, CapacityView
from repro.agreements import flow
from repro.errors import InvalidAgreementMatrixError, OversharingError

S3 = np.array([[0.0, 0.3, 0.2], [0.1, 0.0, 0.0], [0.0, 0.4, 0.0]])
A3 = np.array([[0.0, 0.0, 2.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
V3 = np.array([10.0, 20.0, 30.0])
P3 = ["a", "b", "c"]


def topo(**kw):
    return AgreementTopology(P3, S3, kw.pop("A", None), **kw)


class TestImmutability:
    def test_matrices_frozen(self):
        t = topo(A=A3)
        for arr in (t.S, t.A):
            with pytest.raises(ValueError):
                arr[0, 1] = 99.0

    def test_coefficients_frozen(self):
        t = topo()
        with pytest.raises(ValueError):
            t.coefficients()[0, 1] = 99.0

    def test_view_capacities_frozen(self):
        v = topo().view(V3)
        with pytest.raises(ValueError):
            v.V[0] = 99.0

    def test_source_arrays_not_aliased(self):
        S = S3.copy()
        t = AgreementTopology(P3, S)
        S[0, 1] = 0.9  # caller mutates their own copy
        assert t.S[0, 1] == pytest.approx(0.3)


class TestIdentity:
    def test_equal_structures_hash_equal(self):
        t1, t2 = topo(A=A3), topo(A=A3)
        assert t1 is not t2
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert len({t1, t2}) == 1

    def test_different_S_not_equal(self):
        other = S3.copy()
        other[0, 1] = 0.5
        assert topo() != AgreementTopology(P3, other)

    def test_flags_part_of_identity(self):
        assert topo() != topo(flow_method="dfs")

    def test_usable_as_dict_key(self):
        cache = {topo(): "cached"}
        assert cache[topo()] == "cached"


class TestValidation:
    def test_oversharing_rejected(self):
        S = np.array([[0.0, 0.7, 0.7], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        with pytest.raises(OversharingError):
            AgreementTopology(P3, S)
        AgreementTopology(P3, S, allow_overdraft=True)  # lifted restriction

    def test_bad_capacity_vector(self):
        t = topo()
        with pytest.raises(InvalidAgreementMatrixError, match="shape"):
            t.view(np.ones(4))
        with pytest.raises(InvalidAgreementMatrixError, match="non-negative"):
            t.view(np.array([1.0, -1.0, 1.0]))


class TestCaching:
    def test_coefficient_cache_shared_across_views(self):
        t = topo()
        v1, v2 = t.view(V3), t.view(V3 * 2)
        assert v1.coefficients(2) is v2.coefficients(2)

    def test_with_capacities_shares_topology(self):
        v1 = topo().view(V3)
        v2 = v1.with_capacities(V3 * 2)
        assert v2.topology is v1.topology

    def test_view_memoises_uc_per_level(self):
        v = topo(A=A3).view(V3)
        assert v.u(2) is v.u(2)
        assert v.capacities(2) is v.capacities(2)
        assert v.capacities(1) is not v.capacities(2)

    def test_facade_with_capacities_shares_topology(self):
        sys_ = AgreementSystem(P3, V3, S3)
        rescaled = sys_.with_capacities(V3 * 0.5)
        assert rescaled.topology is sys_.topology


class TestFacade:
    def test_facade_is_view_over_topology(self):
        sys_ = AgreementSystem(P3, V3, S3, A3)
        assert isinstance(sys_.topology, AgreementTopology)
        assert isinstance(sys_.view, CapacityView)
        np.testing.assert_allclose(sys_.capacities(), sys_.view.capacities())

    def test_from_topology_round_trip(self):
        t = topo(A=A3)
        sys_ = AgreementSystem.from_topology(t, V3)
        assert sys_.topology is t
        np.testing.assert_allclose(sys_.capacities(), t.capacities(V3))


# -- property test: facade == pre-refactor flow pipeline ---------------------


@st.composite
def random_structures(draw):
    n = draw(st.integers(2, 5))
    fl = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
    S = np.array([[draw(fl) for _ in range(n)] for _ in range(n)], dtype=float)
    np.fill_diagonal(S, 0.0)
    # normalise rows so the no-overdraft constraint holds
    sums = S.sum(axis=1, keepdims=True)
    S = np.where(sums > 1.0, S / np.maximum(sums, 1e-12), S)
    V = np.array([draw(st.floats(0.0, 100.0, allow_nan=False)) for _ in range(n)])
    if draw(st.booleans()):
        grant = st.floats(0.0, 10.0, allow_nan=False)
        A = np.array([[draw(grant) for _ in range(n)] for _ in range(n)])
        np.fill_diagonal(A, 0.0)
    else:
        A = None
    level = draw(st.one_of(st.none(), st.integers(0, n - 1)))
    return n, S, V, A, level


@settings(max_examples=60, deadline=None)
@given(random_structures())
def test_facade_matches_direct_flow_computation(structure):
    n, S, V, A, level = structure
    principals = [f"p{i}" for i in range(n)]
    sys_ = AgreementSystem(principals, V, S, A)

    # the pre-refactor semantics: the flow pipeline applied directly
    m = n - 1 if level is None else min(level, n - 1)
    T = flow.transitive_coefficients(S, m, "dp")
    I = flow.flow_matrix(V, T)
    U = flow.u_matrix(I, A, V)
    C = flow.capacities(V, U)

    np.testing.assert_allclose(sys_.coefficients(level), T, atol=1e-12)
    np.testing.assert_allclose(sys_.flows(level), I, atol=1e-12)
    np.testing.assert_allclose(sys_.u(level), U, atol=1e-12)
    np.testing.assert_allclose(sys_.capacities(level), C, atol=1e-12)

    # and the topology/view path agrees with the facade
    view = sys_.topology.view(V)
    np.testing.assert_allclose(view.capacities(level), C, atol=1e-12)
    np.testing.assert_allclose(sys_.topology.capacities(V, level), C, atol=1e-12)
