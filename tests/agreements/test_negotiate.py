"""Tests for the share-negotiation design tool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements.negotiate import suggest_shares
from repro.errors import AgreementError, InfeasibleAllocationError


class TestBasics:
    def test_no_targets_no_agreements(self):
        system = suggest_shares(["a", "b"], [5.0, 5.0], [5.0, 5.0])
        assert not np.any(system.S)

    def test_single_needy_principal(self):
        system = suggest_shares(["rich", "poor"], [10.0, 0.0], [10.0, 4.0])
        assert system.S[0, 1] == pytest.approx(0.4)
        assert system.capacity_of("poor", level=1) == pytest.approx(4.0)

    def test_targets_met_at_level_one(self):
        V = np.array([10.0, 6.0, 2.0, 0.0])
        targets = np.array([10.0, 6.0, 5.0, 3.0])
        system = suggest_shares(list("abcd"), V, targets)
        C1 = system.capacities(1)
        assert np.all(C1 >= targets - 1e-6)

    def test_minimality(self):
        """Committed capacity equals exactly the total shortfall when one
        donor can cover everything."""
        system = suggest_shares(["big", "x", "y"], [100.0, 0.0, 0.0],
                                [100.0, 7.0, 3.0])
        committed = float((system.S * system.V[:, None]).sum())
        assert committed == pytest.approx(10.0)

    def test_allowed_mask_respected(self):
        allowed = np.array([
            [False, True, False],
            [False, False, False],
            [False, False, False],
        ])
        system = suggest_shares(
            ["a", "b", "c"], [10.0, 10.0, 0.0], [10.0, 12.0, 0.0],
            allowed=allowed,
        )
        assert system.S[0, 1] > 0
        assert system.S[1, 0] == 0.0

    def test_row_sum_cap(self):
        system = suggest_shares(
            ["donor", "x", "y"], [10.0, 0.0, 0.0], [10.0, 4.0, 4.0],
            max_share_out=0.8,
        )
        assert system.S.sum(axis=1)[0] <= 0.8 + 1e-9


class TestInfeasibility:
    def test_impossible_totals(self):
        with pytest.raises(InfeasibleAllocationError):
            suggest_shares(["a", "b"], [1.0, 1.0], [5.0, 5.0])

    def test_needy_with_no_inbound_edges(self):
        allowed = np.zeros((2, 2), dtype=bool)
        with pytest.raises(InfeasibleAllocationError, match="no inbound"):
            suggest_shares(["a", "b"], [10.0, 0.0], [10.0, 1.0], allowed=allowed)

    def test_shape_validation(self):
        with pytest.raises(AgreementError):
            suggest_shares(["a", "b"], [1.0], [1.0, 1.0])
        with pytest.raises(AgreementError):
            suggest_shares(["a", "b"], [1.0, 1.0], [1.0, 1.0],
                           allowed=np.ones((3, 3), dtype=bool))


class TestProperty:
    @given(st.integers(0, 3_000))
    @settings(max_examples=30, deadline=None)
    def test_feasible_instances_meet_targets(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        V = rng.uniform(0.0, 10.0, size=n)
        # targets: own capacity plus a slice of what others could donate
        spare = V.sum()
        bump = rng.uniform(0.0, 0.3, size=n) * spare / n
        targets = V + bump
        # ensure global feasibility: don't ask for more than exists
        if targets.sum() > V.sum():
            targets *= 0.95 * V.sum() / targets.sum()
            targets = np.maximum(targets, 0.0)
        try:
            system = suggest_shares([f"p{i}" for i in range(n)], V, targets)
        except InfeasibleAllocationError:
            # can legitimately happen when one principal's bump exceeds
            # every possible inflow under the row-sum cap
            return
        assert np.all(system.capacities(1) >= targets - 1e-6)
        assert np.all(system.S.sum(axis=1) <= 1.0 + 1e-9)
