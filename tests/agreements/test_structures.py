"""Tests for the structure generators (complete/loop/sparse/hierarchical/decay)."""

import numpy as np
import pytest

from repro.agreements import (
    complete_structure,
    distance_decay_structure,
    hierarchical_structure,
    loop_structure,
    sparse_structure,
)
from repro.errors import InvalidAgreementMatrixError


class TestComplete:
    def test_paper_configuration(self):
        """10 servers, each sharing 10% with every other (Figures 6-8, 12)."""
        sys_ = complete_structure(10, share=0.1)
        assert sys_.n == 10
        off_diag = sys_.S[~np.eye(10, dtype=bool)]
        np.testing.assert_allclose(off_diag, 0.1)
        np.testing.assert_allclose(sys_.S.sum(axis=1), 0.9)

    def test_oversharing_complete_rejected(self):
        with pytest.raises(InvalidAgreementMatrixError):
            complete_structure(10, share=0.2)  # 9 * 0.2 = 1.8 > 1

    def test_custom_capacity_vector(self):
        sys_ = complete_structure(3, 0.1, capacity=[1.0, 2.0, 3.0])
        assert sys_.V.tolist() == [1.0, 2.0, 3.0]

    def test_symmetric_capacities(self):
        sys_ = complete_structure(5, 0.1)
        C = sys_.capacities()
        np.testing.assert_allclose(C, C[0])


class TestLoop:
    @pytest.mark.parametrize("skip", [1, 3, 7])
    def test_paper_loops(self, skip):
        """Figures 9-11: each ISP shares 80% with the skip-th next one."""
        sys_ = loop_structure(10, share=0.8, skip=skip)
        for i in range(10):
            row = sys_.S[i]
            assert row[(i + skip) % 10] == pytest.approx(0.8)
            assert np.count_nonzero(row) == 1

    def test_level1_sees_one_donor(self):
        sys_ = loop_structure(10, 0.8, skip=1, capacity=1.0)
        C1 = sys_.capacities(1)
        np.testing.assert_allclose(C1, 1.8)

    def test_deeper_levels_reach_further(self):
        sys_ = loop_structure(10, 0.8, skip=1, capacity=1.0)
        C = [sys_.capacities(m)[0] for m in range(1, 10)]
        assert all(b > a for a, b in zip(C, C[1:]))
        # geometric accumulation: 1 + .8 + .64 + ...
        expected = 1 + sum(0.8 ** k for k in range(1, 10))
        assert C[-1] == pytest.approx(expected)

    def test_invalid_skip(self):
        with pytest.raises(InvalidAgreementMatrixError):
            loop_structure(10, 0.8, skip=0)
        with pytest.raises(InvalidAgreementMatrixError):
            loop_structure(10, 0.8, skip=10)


class TestSparse:
    def test_degree_respected(self):
        sys_ = sparse_structure(20, degree=3, share_total=0.3, seed=5)
        assert np.all((sys_.S > 0).sum(axis=1) == 3)
        np.testing.assert_allclose(sys_.S.sum(axis=1), 0.3)

    def test_deterministic_with_seed(self):
        a = sparse_structure(10, degree=2, seed=7)
        b = sparse_structure(10, degree=2, seed=7)
        np.testing.assert_array_equal(a.S, b.S)

    def test_zero_degree(self):
        sys_ = sparse_structure(5, degree=0)
        assert not np.any(sys_.S)

    def test_invalid_degree(self):
        with pytest.raises(InvalidAgreementMatrixError):
            sparse_structure(5, degree=5)


class TestHierarchical:
    def test_groups_attribute(self):
        sys_ = hierarchical_structure(3, 4)
        assert sys_.groups == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]

    def test_intra_group_complete(self):
        sys_ = hierarchical_structure(2, 3, intra_share_total=0.6)
        # within group 0, each member shares 0.6/2 = 0.3 with each peer
        assert sys_.S[0, 1] == pytest.approx(0.3)
        assert sys_.S[1, 2] == pytest.approx(0.3)
        # no cross-group edges except leaders
        assert sys_.S[1, 4] == 0.0

    def test_leaders_link_groups(self):
        sys_ = hierarchical_structure(3, 2, inter_share=0.05)
        assert sys_.S[0, 2] == pytest.approx(0.05)
        assert sys_.S[2, 4] == pytest.approx(0.05)
        assert sys_.S[4, 0] == pytest.approx(0.05)

    def test_row_sums_valid(self):
        sys_ = hierarchical_structure(4, 5, intra_share_total=0.5, inter_share=0.1)
        assert np.all(sys_.S.sum(axis=1) <= 1.0 + 1e-12)

    def test_single_member_groups(self):
        sys_ = hierarchical_structure(3, 1, inter_share=0.2)
        assert sys_.n == 3
        assert sys_.S[0, 1] == pytest.approx(0.2)


class TestDistanceDecay:
    def test_paper_shares(self):
        """Figure 13: 20%/10%/5%/3% at circular distances 1/2/3/4+."""
        sys_ = distance_decay_structure(10)
        assert sys_.S[0, 1] == pytest.approx(0.20)
        assert sys_.S[0, 9] == pytest.approx(0.20)  # circular distance 1
        assert sys_.S[0, 2] == pytest.approx(0.10)
        assert sys_.S[0, 3] == pytest.approx(0.05)
        assert sys_.S[0, 4] == pytest.approx(0.03)
        assert sys_.S[0, 5] == pytest.approx(0.03)

    def test_row_sum_is_79_percent(self):
        sys_ = distance_decay_structure(10)
        np.testing.assert_allclose(sys_.S.sum(axis=1), 0.79)

    def test_symmetric(self):
        sys_ = distance_decay_structure(10)
        np.testing.assert_allclose(sys_.S, sys_.S.T)
