"""Tests for NetworkX import/export of agreement systems."""

import networkx as nx
import numpy as np
import pytest

from repro.agreements import AgreementSystem, complete_structure, loop_structure
from repro.agreements.graph_export import from_networkx, to_networkx
from repro.errors import AgreementError


class TestExport:
    def test_nodes_carry_capacity(self):
        system = complete_structure(4, 0.1, capacity=[1.0, 2.0, 3.0, 4.0])
        g = to_networkx(system)
        assert g.nodes["isp2"]["capacity"] == 3.0
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 12

    def test_edges_carry_share_and_grant(self):
        S = np.array([[0.0, 0.3], [0.0, 0.0]])
        A = np.array([[0.0, 2.0], [0.0, 0.0]])
        system = AgreementSystem(["a", "b"], np.array([5.0, 0.0]), S, A)
        g = to_networkx(system)
        assert g["a"]["b"]["share"] == pytest.approx(0.3)
        assert g["a"]["b"]["grant"] == pytest.approx(2.0)
        assert not g.has_edge("b", "a")

    def test_loop_topology(self):
        # skip must be coprime with n for a single cycle (7 and 2 are).
        g = to_networkx(loop_structure(7, 0.8, skip=2))
        assert nx.is_strongly_connected(g)
        assert all(g.out_degree(n) == 1 for n in g.nodes)

    def test_non_coprime_skip_gives_disjoint_cycles(self):
        g = to_networkx(loop_structure(6, 0.8, skip=2))
        assert not nx.is_strongly_connected(g)
        components = list(nx.strongly_connected_components(g))
        assert len(components) == 2


class TestRoundTrip:
    def test_matrices_survive(self):
        system = complete_structure(5, 0.12, capacity=2.0)
        back = from_networkx(to_networkx(system))
        assert back.principals == system.principals
        np.testing.assert_allclose(back.S, system.S)
        np.testing.assert_allclose(back.V, system.V)
        np.testing.assert_allclose(back.capacities(), system.capacities())

    def test_absolute_matrix_survives(self):
        A = np.array([[0.0, 2.0], [0.0, 0.0]])
        system = AgreementSystem(
            ["a", "b"], np.array([5.0, 0.0]), np.zeros((2, 2)), A
        )
        back = from_networkx(to_networkx(system))
        np.testing.assert_allclose(back.A, A)

    def test_overdraft_flag_survives(self):
        S = np.array([[0.0, 0.7, 0.7], [0, 0, 0], [0, 0, 0]])
        system = AgreementSystem(
            ["a", "b", "c"], np.ones(3), S, allow_overdraft=True
        )
        back = from_networkx(to_networkx(system))
        assert back.allow_overdraft

    def test_hand_built_graph(self):
        g = nx.DiGraph()
        g.add_node("x", capacity=10.0)
        g.add_node("y")  # capacity defaults to 0
        g.add_edge("x", "y", share=0.4)
        system = from_networkx(g)
        assert system.capacity_of("y") == pytest.approx(4.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(AgreementError):
            from_networkx(nx.DiGraph())


class TestGraphAnalysisInterop:
    def test_centrality_identifies_hub(self):
        """A star structure's hub dominates betweenness — graph tooling
        works directly on exported systems."""
        n = 6
        S = np.zeros((n, n))
        for i in range(1, n):
            S[0, i] = 0.15   # hub shares with everyone
            S[i, 0] = 0.5    # all share back with the hub
        system = AgreementSystem(
            [f"p{i}" for i in range(n)], np.ones(n), S
        )
        g = to_networkx(system)
        centrality = nx.betweenness_centrality(g)
        assert max(centrality, key=centrality.get) == "p0"
