"""Tests for the transitive flow computation (T, I, K, U, C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements.flow import (
    capacities,
    flow_matrix,
    overdraft_clamp,
    transitive_coefficients,
    u_matrix,
)
from repro.errors import AgreementError


def random_S(seed: int, n: int, density: float = 1.0, scale: float = 0.3):
    rng = np.random.default_rng(seed)
    S = rng.random((n, n)) * scale
    S *= rng.random((n, n)) < density
    np.fill_diagonal(S, 0.0)
    return S


class TestCoefficientsBasics:
    def test_level_zero_is_zero(self):
        S = random_S(0, 5)
        assert not np.any(transitive_coefficients(S, 0))

    def test_level_one_is_S(self):
        S = random_S(1, 6)
        np.testing.assert_allclose(transitive_coefficients(S, 1), S)

    def test_two_node_chain(self):
        # 0 -> 1 -> 2: T_02 at level 2 = S01*S12.
        S = np.zeros((3, 3))
        S[0, 1], S[1, 2] = 0.5, 0.4
        T1 = transitive_coefficients(S, 1)
        assert T1[0, 2] == 0.0
        T2 = transitive_coefficients(S, 2)
        assert T2[0, 2] == pytest.approx(0.2)
        assert T2[0, 1] == pytest.approx(0.5)

    def test_direct_plus_indirect_accumulate(self):
        # 0->2 direct and 0->1->2: both paths sum.
        S = np.zeros((3, 3))
        S[0, 2], S[0, 1], S[1, 2] = 0.1, 0.5, 0.4
        T = transitive_coefficients(S)
        assert T[0, 2] == pytest.approx(0.1 + 0.2)

    def test_cycle_does_not_blow_up(self):
        # 0->1->0 cycle: simple paths cannot revisit, so T stays finite
        # and equals the single-edge shares.
        S = np.zeros((2, 2))
        S[0, 1] = S[1, 0] = 0.9
        T = transitive_coefficients(S)
        np.testing.assert_allclose(T, S)

    def test_diagonal_always_zero(self):
        S = random_S(3, 7)
        for m in (1, 3, 6):
            assert not np.any(np.diag(transitive_coefficients(S, m)))

    def test_monotone_in_level(self):
        S = random_S(4, 7)
        prev = np.zeros((7, 7))
        for m in range(1, 7):
            T = transitive_coefficients(S, m)
            assert np.all(T >= prev - 1e-12)
            prev = T

    def test_levels_beyond_closure_add_nothing(self):
        S = random_S(5, 6)
        T_full = transitive_coefficients(S, 5)
        T_more = transitive_coefficients(S, 50)
        np.testing.assert_allclose(T_full, T_more)

    def test_none_means_full_closure(self):
        S = random_S(6, 6)
        np.testing.assert_allclose(
            transitive_coefficients(S), transitive_coefficients(S, 5)
        )

    def test_invalid_inputs(self):
        with pytest.raises(AgreementError):
            transitive_coefficients(np.zeros((2, 3)))
        with pytest.raises(AgreementError):
            transitive_coefficients(np.zeros((3, 3)), -1)
        with pytest.raises(AgreementError):
            transitive_coefficients(np.zeros((3, 3)), 2, method="magic")


class TestMethodAgreement:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    @pytest.mark.parametrize("level", [1, 2, None])
    def test_dp_matches_dfs_oracle(self, n, level):
        S = random_S(42 + n, n)
        T_dp = transitive_coefficients(S, level, "dp")
        T_dfs = transitive_coefficients(S, level, "dfs")
        np.testing.assert_allclose(T_dp, T_dfs, atol=1e-12)

    @given(st.integers(0, 10_000), st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_dp_matches_dfs_property(self, seed, n):
        S = random_S(seed, n, density=0.7)
        for m in (1, 2, n - 1):
            np.testing.assert_allclose(
                transitive_coefficients(S, m, "dp"),
                transitive_coefficients(S, m, "dfs"),
                atol=1e-12,
            )

    @given(st.integers(0, 10_000), st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_walk_upper_bounds_exact(self, seed, n):
        S = random_S(seed, n)
        T = transitive_coefficients(S, None, "dp")
        W = transitive_coefficients(S, n - 1, "walk")
        assert np.all(W >= T - 1e-12)

    def test_walk_equals_exact_on_dags(self):
        # Without cycles, walks are simple paths, so the methods coincide.
        n = 6
        S = np.triu(random_S(7, n), k=1)
        np.testing.assert_allclose(
            transitive_coefficients(S, None, "walk")[np.triu_indices(n, 1)],
            transitive_coefficients(S, None, "dp")[np.triu_indices(n, 1)],
            atol=1e-12,
        )


class TestFlowAndCapacities:
    def test_flow_scales_by_capacity(self):
        S = random_S(8, 4)
        T = transitive_coefficients(S)
        V = np.array([1.0, 2.0, 0.0, 5.0])
        I = flow_matrix(V, T)
        np.testing.assert_allclose(I, V[:, None] * T)

    def test_flow_shape_mismatch(self):
        with pytest.raises(AgreementError):
            flow_matrix(np.ones(3), np.zeros((4, 4)))

    def test_capacity_includes_own_resources(self):
        n = 4
        V = np.array([1.0, 2.0, 3.0, 4.0])
        U = np.zeros((n, n))
        np.testing.assert_allclose(capacities(V, U), V)

    def test_paper_overdraft_example(self):
        """Section 3.2: A=10, shares 60% with B and 60% with C; B shares
        100% with C.  Without the clamp C could reach 12; with K it is 10."""
        S = np.array([[0.0, 0.6, 0.6], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        V = np.array([10.0, 0.0, 0.0])
        T = transitive_coefficients(S)
        assert T[0, 2] == pytest.approx(0.6 + 0.6)  # unclamped: 1.2
        K = overdraft_clamp(T)
        assert K[0, 2] == pytest.approx(1.0)
        U = u_matrix(flow_matrix(V, K), None, V)
        C = capacities(V, U)
        assert C[2] == pytest.approx(10.0)

    def test_u_clamps_at_donor_capacity(self):
        I = np.array([[0.0, 8.0], [0.0, 0.0]])
        A = np.array([[0.0, 5.0], [0.0, 0.0]])
        V = np.array([10.0, 0.0])
        U = u_matrix(I, A, V)
        assert U[0, 1] == pytest.approx(10.0)  # min(8 + 5, 10)

    def test_u_without_absolute_matrix(self):
        I = np.array([[0.0, 3.0], [1.0, 0.0]])
        V = np.array([10.0, 10.0])
        U = u_matrix(I, None, V)
        np.testing.assert_allclose(U, I)

    def test_u_zero_diagonal(self):
        I = np.full((3, 3), 2.0)
        U = u_matrix(I, None, np.full(3, 10.0))
        assert not np.any(np.diag(U))

    @given(st.integers(0, 10_000), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_below_own_never_above_total(self, seed, n):
        """C_i >= V_i (own resources always available) and the sum of what
        anyone can reach never exceeds n * total raw capacity."""
        rng = np.random.default_rng(seed)
        S = random_S(seed, n, scale=1.0 / n)  # row sums <= 1
        V = rng.random(n) * 10
        T = transitive_coefficients(S)
        U = u_matrix(flow_matrix(V, T), None, V)
        C = capacities(V, U)
        assert np.all(C >= V - 1e-9)
        assert np.all(C <= V.sum() * n + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_capacity_with_clamp_bounded_by_total(self, seed):
        """With the U clamp, each principal's capacity is at most the total
        raw capacity in the system (each donor contributes at most V_k)."""
        n = 6
        rng = np.random.default_rng(seed)
        S = random_S(seed, n, scale=0.5)
        V = rng.random(n) * 10
        K = overdraft_clamp(transitive_coefficients(S))
        U = u_matrix(flow_matrix(V, K), None, V)
        C = capacities(V, U)
        assert np.all(C <= V.sum() + 1e-9)
