"""Tests for AgreementSystem validation and cached queries."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem
from repro.economy import build_example_1
from repro.errors import InvalidAgreementMatrixError, OversharingError


def make(n=3, V=None, S=None, **kw):
    V = np.ones(n) if V is None else np.asarray(V, float)
    S = np.zeros((n, n)) if S is None else np.asarray(S, float)
    return AgreementSystem([f"p{i}" for i in range(n)], V, S, **kw)


class TestValidation:
    def test_valid_system(self):
        sys_ = make(3, S=[[0, 0.3, 0.2], [0.1, 0, 0], [0, 0, 0]])
        assert sys_.n == 3

    def test_duplicate_principals(self):
        with pytest.raises(InvalidAgreementMatrixError, match="unique"):
            AgreementSystem(["a", "a"], np.ones(2), np.zeros((2, 2)))

    def test_wrong_V_shape(self):
        with pytest.raises(InvalidAgreementMatrixError, match="V must"):
            AgreementSystem(["a", "b"], np.ones(3), np.zeros((2, 2)))

    def test_negative_V(self):
        with pytest.raises(InvalidAgreementMatrixError, match="non-negative"):
            make(2, V=[-1, 1])

    def test_wrong_S_shape(self):
        with pytest.raises(InvalidAgreementMatrixError, match="S must"):
            AgreementSystem(["a", "b"], np.ones(2), np.zeros((3, 3)))

    def test_nonzero_diagonal(self):
        with pytest.raises(InvalidAgreementMatrixError, match="diagonal"):
            make(2, S=[[0.5, 0], [0, 0]])

    def test_negative_share(self):
        with pytest.raises(InvalidAgreementMatrixError, match="non-negative"):
            make(2, S=[[0, -0.5], [0, 0]])

    def test_oversharing_rejected_by_default(self):
        with pytest.raises(OversharingError):
            make(3, S=[[0, 0.6, 0.6], [0, 0, 0], [0, 0, 0]])

    def test_oversharing_allowed_with_overdraft(self):
        sys_ = make(
            3, S=[[0, 0.6, 0.6], [0, 0, 0], [0, 0, 0]], allow_overdraft=True
        )
        assert sys_.allow_overdraft

    def test_exactly_100_percent_ok(self):
        make(2, S=[[0, 1.0], [0, 0]])

    def test_negative_absolute_matrix(self):
        with pytest.raises(InvalidAgreementMatrixError):
            AgreementSystem(
                ["a", "b"], np.ones(2), np.zeros((2, 2)),
                A=np.array([[0, -1.0], [0, 0]]),
            )

    def test_absolute_diagonal_rejected(self):
        with pytest.raises(InvalidAgreementMatrixError):
            AgreementSystem(
                ["a", "b"], np.ones(2), np.zeros((2, 2)),
                A=np.array([[1.0, 0], [0, 0]]),
            )


class TestQueries:
    def test_index(self):
        sys_ = make(3)
        assert sys_.index("p1") == 1
        with pytest.raises(InvalidAgreementMatrixError):
            sys_.index("zzz")

    def test_coefficients_cached_per_level(self):
        sys_ = make(3, S=[[0, 0.3, 0], [0, 0, 0.3], [0, 0, 0]])
        T1 = sys_.coefficients(1)
        assert sys_.coefficients(1) is T1  # cache hit
        T2 = sys_.coefficients(2)
        assert T2[0, 2] > T1[0, 2]

    def test_capacity_of(self):
        sys_ = make(2, V=[10, 0], S=[[0, 0.5], [0, 0]])
        assert sys_.capacity_of("p1") == pytest.approx(5.0)
        assert sys_.capacity_of("p1", level=0) == pytest.approx(0.0)

    def test_with_capacities_shares_cache(self):
        sys_ = make(3, S=[[0, 0.3, 0], [0, 0, 0.3], [0, 0, 0]])
        T = sys_.coefficients()
        clone = sys_.with_capacities(np.array([5.0, 5.0, 5.0]))
        assert clone.coefficients() is T
        assert clone.V.tolist() == [5.0, 5.0, 5.0]
        # original untouched
        assert sys_.V.tolist() == [1.0, 1.0, 1.0]

    def test_overdraft_capacities_clamped(self):
        sys_ = make(
            3,
            V=[10, 0, 0],
            S=[[0, 0.6, 0.6], [0, 0, 1.0], [0, 0, 0]],
            allow_overdraft=True,
        )
        C = sys_.capacities()
        assert C[2] == pytest.approx(10.0)  # the paper's "10 instead of 12"

    def test_absolute_agreements_counted(self):
        sys_ = AgreementSystem(
            ["a", "b"], np.array([10.0, 0.0]), np.zeros((2, 2)),
            A=np.array([[0.0, 3.0], [0.0, 0.0]]),
        )
        assert sys_.capacity_of("b") == pytest.approx(3.0)

    def test_from_bank_roundtrip(self):
        bank, _ = build_example_1()
        sys_ = AgreementSystem.from_bank(bank, "disk")
        assert sys_.principals == ["A", "B", "C", "D"]
        assert sys_.capacity_of("D") == pytest.approx(12.0)

    def test_repr(self):
        assert "AgreementSystem" in repr(make(3))
