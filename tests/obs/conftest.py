"""Fixtures for observability tests.

The observer is process-global; every test that enables it must restore
the null observer afterwards so the rest of the suite (and its
no-overhead guarantees) is unaffected.
"""

import pytest

import repro.obs as obs


@pytest.fixture
def observer():
    """A live in-memory observer, reset to null after the test."""
    ob = obs.enable()
    yield ob
    obs.disable()


@pytest.fixture
def traced_observer(tmp_path):
    """A live observer streaming to a JSONL file; yields (observer, path)."""
    path = tmp_path / "trace.jsonl"
    ob = obs.enable(trace_path=path)
    yield ob, path
    obs.disable()
