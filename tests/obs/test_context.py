"""Unit tests for trace-context propagation primitives."""

import repro.obs as obs
from repro.obs import context as ctx_mod
from repro.obs.context import (
    TraceContext,
    current,
    new_root,
    new_span_id,
    sampled_in,
    use_context,
)


class TestTraceContext:
    def test_child_shares_trace_and_links_parent(self):
        root = new_root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled == root.sampled
        grandchild = child.child()
        assert grandchild.parent_id == child.span_id
        assert grandchild.trace_id == root.trace_id

    def test_explicit_span_id(self):
        root = new_root()
        child = root.child(span_id="fixed-id")
        assert child.span_id == "fixed-id"

    def test_span_ids_unique_and_process_prefixed(self):
        ids = {new_span_id() for _ in range(100)}
        assert len(ids) == 100
        prefixes = {i.split("-")[0] for i in ids}
        assert len(prefixes) == 1  # same process, same prefix

    def test_contexts_are_frozen(self):
        root = new_root()
        try:
            root.trace_id = "nope"
            raise AssertionError("TraceContext must be immutable")
        except AttributeError:
            pass


class TestSampling:
    def test_extremes(self):
        assert sampled_in("anything", 1.0) is True
        assert sampled_in("anything", 0.0) is False

    def test_deterministic_per_trace_id(self):
        roots = [new_root() for _ in range(50)]
        for root in roots:
            first = sampled_in(root.trace_id, 0.3)
            # Re-deriving on "another node" gives the same answer.
            assert all(sampled_in(root.trace_id, 0.3) == first for _ in range(5))

    def test_rate_monotonic(self):
        # A trace sampled in at a low rate stays in at any higher rate
        # (the decision is a threshold on one hash value).
        for _ in range(200):
            tid = new_root().trace_id
            if sampled_in(tid, 0.05):
                assert sampled_in(tid, 0.5)
            if not sampled_in(tid, 0.5):
                assert not sampled_in(tid, 0.05)

    def test_new_root_stamps_decision(self):
        assert new_root(sample_rate=1.0).sampled is True
        assert new_root(sample_rate=0.0).sampled is False

    def test_rough_fraction(self):
        hits = sum(sampled_in(new_root().trace_id, 0.25) for _ in range(2000))
        assert 0.15 < hits / 2000 < 0.35


class TestAmbient:
    def test_default_is_none(self):
        assert current() is None

    def test_use_context_sets_and_restores(self):
        outer = new_root()
        inner = outer.child()
        assert current() is None
        with use_context(outer):
            assert current() is outer
            with use_context(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_use_context_none_is_noop(self):
        outer = new_root()
        with use_context(outer):
            with use_context(None):
                assert current() is outer
            assert current() is outer

    def test_restored_even_on_exception(self):
        root = new_root()
        try:
            with use_context(root):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is None


class TestSpanAmbientIntegration:
    def test_span_adopts_ambient_context(self):
        """The first span on the far side of an async boundary must join
        the causing trace — this is the message/DES handoff in miniature."""
        try:
            observer = obs.enable()
            carried = new_root()
            with use_context(carried):
                with observer.span("far.side") as sp:
                    assert sp.context.trace_id == carried.trace_id
                    assert sp.context.parent_id == carried.span_id
        finally:
            obs.disable()

    def test_root_span_ignores_ambient(self):
        try:
            observer = obs.enable()
            carried = new_root()
            with use_context(carried):
                with observer.root_span("fresh") as sp:
                    assert sp.context.trace_id != carried.trace_id
                    assert sp.context.parent_id is None
        finally:
            obs.disable()

    def test_module_reexports(self):
        assert obs.trace_context is ctx_mod
        assert obs.TraceContext is TraceContext
