"""Unit tests for the allocation flight recorder."""

import json

import pytest

import repro.obs as obs
from repro.obs.decision import (
    NULL_DECISION,
    DecisionRecord,
    FlightRecorder,
    current_decision,
    next_request_id,
)


class TestDecisionRecord:
    def test_from_fields_routes_unknown_keys_to_extra(self):
        rec = DecisionRecord.from_fields(
            {"request_id": 7, "outcome": "granted", "multigrid_rounds": 3}
        )
        assert rec.request_id == 7
        assert rec.extra == {"multigrid_rounds": 3}
        assert rec.to_dict()["multigrid_rounds"] == 3

    def test_to_dict_omits_empty_optionals(self):
        d = DecisionRecord(request_id=1).to_dict()
        assert d["kind"] == "decision"
        assert "reason" not in d and "lp_backend" not in d
        d2 = DecisionRecord(request_id=1, reason="no capacity").to_dict()
        assert d2["reason"] == "no capacity"


class TestFlightRecorder:
    def test_ring_bound_evicts_oldest(self):
        fr = FlightRecorder(capacity=4)
        for i in range(6):
            fr.record(DecisionRecord(request_id=i))
        assert len(fr) == 4
        assert fr.explain(0) is None and fr.explain(1) is None
        assert fr.explain(2) is not None and fr.explain(5) is not None

    def test_explain_returns_most_recent(self):
        fr = FlightRecorder()
        fr.record(DecisionRecord(request_id=9, outcome="denied"))
        fr.record(DecisionRecord(request_id=9, outcome="granted"))
        assert fr.explain(9).outcome == "granted"

    def test_export_jsonl(self, tmp_path):
        fr = FlightRecorder()
        fr.record(DecisionRecord(request_id=1, outcome="granted", granted=2.0))
        fr.record(DecisionRecord(request_id=2, outcome="denied"))
        path = tmp_path / "decisions.jsonl"
        assert fr.export_jsonl(path) == 2
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["request_id"] for x in lines] == [1, 2]
        assert all(x["kind"] == "decision" for x in lines)


class TestDecisionBuilder:
    def test_nested_layers_attach_via_current_decision(self, observer):
        assert current_decision() is None
        with observer.decision(request_id=5, requestor="p0") as dec:
            assert current_decision() is dec
            # ...deep in the allocator:
            current_decision().set(lp_backend="scipy", lp_iterations=4)
            dec.set(outcome="granted", granted=1.5)
        assert current_decision() is None
        rec = observer.explain(5)
        assert rec.lp_backend == "scipy"
        assert rec.lp_iterations == 4
        assert rec.outcome == "granted"

    def test_exception_marks_error_outcome(self, observer):
        with pytest.raises(ValueError):
            with observer.decision(request_id=6, requestor="p1"):
                raise ValueError("solver exploded")
        rec = observer.explain(6)
        assert rec.outcome == "error"
        assert "solver exploded" in rec.reason

    def test_builders_nest(self, observer):
        with observer.decision(request_id=7) as outer:
            with observer.decision(request_id=8) as inner:
                assert current_decision() is inner
            assert current_decision() is outer
        assert observer.explain(7) is not None
        assert observer.explain(8) is not None

    def test_counter_tracks_outcomes(self, observer):
        with observer.decision(request_id=10) as dec:
            dec.set(outcome="granted")
        with observer.decision(request_id=11) as dec:
            dec.set(outcome="denied")
        counters = observer.registry.snapshot()["counters"]["decision.recorded"]
        assert counters["outcome=granted"] == 1
        assert counters["outcome=denied"] == 1

    def test_decision_exported_to_trace(self, traced_observer):
        observer, path = traced_observer
        with observer.decision(request_id=12, requestor="p2") as dec:
            dec.set(outcome="granted", granted=3.0, takes=(("p3", 3.0),))
        obs.disable()
        records = [json.loads(x) for x in path.read_text().splitlines()]
        decisions = [r for r in records if r.get("kind") == "decision"]
        assert len(decisions) == 1
        assert decisions[0]["request_id"] == 12
        assert decisions[0]["takes"] == [["p3", 3.0]]

    def test_sampled_out_decision_kept_in_ring_not_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        try:
            observer = obs.enable(trace_path=path, sample=0.0)
            with observer.root_span("request"):
                with observer.decision(request_id=13) as dec:
                    dec.set(outcome="granted")
            assert observer.explain(13) is not None  # ring: always on
            obs.disable()
            kinds = [
                json.loads(x).get("kind") for x in path.read_text().splitlines()
            ]
            assert "decision" not in kinds and "span" not in kinds
        finally:
            obs.disable()


class TestDisabledPath:
    def test_null_observer_decision_is_null(self):
        obs.disable()
        null = obs.get_observer()
        with null.decision(request_id=1) as dec:
            assert dec is NULL_DECISION
            dec.set(outcome="granted")  # no-op, must not raise
        assert null.explain(1) is None

    def test_synthetic_ids_negative_and_unique(self):
        a, b = next_request_id(), next_request_id()
        assert a < 0 and b < 0 and a != b
