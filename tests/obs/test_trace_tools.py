"""Offline trace merging, span-tree reconstruction, and the obs_trace CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.trace_tools import (
    breakdown,
    build_trees,
    categorize,
    find_decisions,
    load_traces,
    render_trees,
    trees_summary,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI = str(REPO_ROOT / "scripts" / "obs_trace.py")


def _span(name, trace, span, parent=None, dur=0.1, ts=1.0, **attrs):
    rec = {"kind": "span", "name": name, "path": name, "dur": dur,
           "attrs": attrs, "trace": trace, "span": span, "ts": ts}
    if parent is not None:
        rec["parent"] = parent
    return rec


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def _two_node_trace(tmp_path):
    """One request spanning two 'nodes', each with its own trace file.

    Node A holds the root (manager.plan) and the transport hop; node B
    holds the handler's spans (grm.allocate -> lp.solve), linked only by
    the context ids carried on the message.
    """
    node_a = tmp_path / "node-a.jsonl"
    node_b = tmp_path / "node-b.jsonl"
    _write_jsonl(node_a, [
        _span("transport.send", "t1", "a-2", parent="a-1", dur=0.5, ts=1.6),
        _span("manager.plan", "t1", "a-1", dur=1.0, ts=2.0),
    ])
    _write_jsonl(node_b, [
        _span("lp.solve", "t1", "b-2", parent="b-1", dur=0.2, ts=1.4),
        _span("grm.allocate", "t1", "b-1", parent="a-2", dur=0.4, ts=1.5),
        {"kind": "decision", "request_id": 17, "requestor": "p0",
         "outcome": "granted", "granted": 5.0,
         "takes": [["p3", 2.5], ["p7", 2.5]], "theta": 0.1, "ts": 1.5},
    ])
    return [node_a, node_b]


class TestBuildTrees:
    def test_merge_across_files_one_tree(self, tmp_path):
        records = load_traces(_two_node_trace(tmp_path))
        assert {r["source"] for r in records} == {
            str(tmp_path / "node-a.jsonl"), str(tmp_path / "node-b.jsonl")
        }
        trees = build_trees(records)
        assert list(trees) == ["t1"]
        (root,) = trees["t1"]
        assert root.name == "manager.plan"
        names = [n.name for n in root.walk()]
        assert names == ["manager.plan", "transport.send", "grm.allocate",
                         "lp.solve"]

    def test_orphaned_parent_becomes_root(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        _write_jsonl(path, [
            _span("grm.allocate", "t2", "x-1", parent="lost-id", dur=0.3),
            _span("lp.solve", "t2", "x-2", parent="x-1", dur=0.1),
        ])
        trees = build_trees(load_traces([path]))
        (root,) = trees["t2"]
        assert root.name == "grm.allocate"
        assert [c.name for c in root.children] == ["lp.solve"]

    def test_untraced_spans_grouped_flat(self, tmp_path):
        path = tmp_path / "old.jsonl"
        _write_jsonl(path, [
            {"kind": "span", "name": "legacy", "dur": 0.1, "attrs": {}, "ts": 1.0}
        ])
        trees = build_trees(load_traces([path]))
        assert [r.name for r in trees["(untraced)"]] == ["legacy"]


class TestBreakdown:
    def test_exclusive_time_sums_to_root(self, tmp_path):
        trees = build_trees(load_traces(_two_node_trace(tmp_path)))
        parts = breakdown(trees["t1"])
        # manager.plan 1.0 - transport 0.5 = 0.5 other;
        # transport 0.5 - grm 0.4 = 0.1 transport;
        # grm 0.4 - lp 0.2 = 0.2 other; lp = 0.2.
        assert parts["lp"] == pytest.approx(0.2)
        assert parts["transport"] == pytest.approx(0.1)
        assert parts["other"] == pytest.approx(0.7)
        assert sum(parts.values()) == pytest.approx(1.0)  # the root's duration

    def test_categorize_prefixes(self):
        assert categorize("transport.send") == "transport"
        assert categorize("lp.solve") == "lp"
        assert categorize("des.run") == "queue"
        assert categorize("topology.rebuild") == "topology"
        assert categorize("manager.plan") == "other"


class TestFindDecisions:
    def test_by_request_id(self, tmp_path):
        records = load_traces(_two_node_trace(tmp_path))
        assert find_decisions(records, request_id=999) == []
        (dec,) = find_decisions(records, request_id=17)
        assert dec["outcome"] == "granted"
        assert sum(q for _, q in dec["takes"]) == dec["granted"]

    def test_all_decisions(self, tmp_path):
        records = load_traces(_two_node_trace(tmp_path))
        assert len(find_decisions(records)) == 1


class TestRendering:
    def test_render_trees_text(self, tmp_path):
        trees = build_trees(load_traces(_two_node_trace(tmp_path)))
        text = render_trees(trees)
        assert "manager.plan" in text
        assert "breakdown:" in text
        assert "1 trace(s)" in text

    def test_render_unknown_trace_id(self, tmp_path):
        trees = build_trees(load_traces(_two_node_trace(tmp_path)))
        assert "no spans found" in render_trees(trees, trace_id="absent")

    def test_trees_summary_json_friendly(self, tmp_path):
        trees = build_trees(load_traces(_two_node_trace(tmp_path)))
        summary = trees_summary(trees)
        json.dumps(summary)  # must serialise
        assert summary["t1"]["span_count"] == 4
        assert summary["t1"]["total_seconds"] == 1.0
        assert summary["t1"]["roots"][0]["name"] == "manager.plan"


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, CLI, *map(str, argv)],
            capture_output=True, text=True, timeout=60,
        )

    def test_tree_default_subcommand(self, tmp_path):
        paths = _two_node_trace(tmp_path)
        proc = self._run(*paths)
        assert proc.returncode == 0, proc.stderr
        assert "manager.plan" in proc.stdout
        assert "breakdown:" in proc.stdout

    def test_tree_json(self, tmp_path):
        paths = _two_node_trace(tmp_path)
        proc = self._run("--json", *paths)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["t1"]["span_count"] == 4

    def test_explain_found(self, tmp_path):
        paths = _two_node_trace(tmp_path)
        proc = self._run("explain", 17, *paths)
        assert proc.returncode == 0, proc.stderr
        assert "granted" in proc.stdout
        assert "p3" in proc.stdout

    def test_explain_json(self, tmp_path):
        paths = _two_node_trace(tmp_path)
        proc = self._run("explain", 17, "--json", *paths)
        assert proc.returncode == 0, proc.stderr
        (dec,) = json.loads(proc.stdout)
        assert dec["request_id"] == 17

    def test_explain_missing_request_exits_1(self, tmp_path):
        paths = _two_node_trace(tmp_path)
        proc = self._run("explain", 999, *paths)
        assert proc.returncode == 1
        assert "no decision record" in proc.stderr

    def test_missing_file_errors(self, tmp_path):
        proc = self._run(tmp_path / "absent.jsonl")
        assert proc.returncode != 0
