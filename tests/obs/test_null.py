"""The disabled (null) observer must be invisible to instrumented code."""

import dataclasses

import numpy as np

import repro.obs as obs
from repro.agreements import complete_structure
from repro.allocation import allocate_lp
from repro.des import Engine
from repro.manager.messages import Message
from repro.manager.transport import InProcessTransport
from repro.obs.null import NULL_SPAN, NullObserver


class TestNullObserver:
    def test_default_observer_is_null(self):
        ob = obs.get_observer()
        assert isinstance(ob, NullObserver)
        assert not ob.enabled

    def test_all_operations_are_noops(self):
        ob = NullObserver()
        ob.counter("c", 5, endpoint="x")
        ob.gauge("g", 1.0)
        ob.histogram("h", 2.0)
        ob.event("e", detail="y")
        ob.flush()
        ob.close()
        with ob.span("s", a=1) as sp:
            assert sp is NULL_SPAN
            assert sp.set(b=2) is sp

    def test_null_span_is_shared_and_stateless(self):
        ob = NullObserver()
        assert ob.span("a") is ob.span("b")
        assert not hasattr(NULL_SPAN, "__dict__")  # slots: nothing to mutate


class TestNoAttributeLeakage:
    """Instrumentation must not alter results when observability is off."""

    def test_allocation_result_fields_unchanged(self):
        assert not obs.get_observer().enabled
        system = complete_structure(4, share=0.2)
        plan = allocate_lp(system, system.principals[0], 1.0)
        field_names = {f.name for f in dataclasses.fields(plan)}
        assert field_names == {
            "request", "take", "theta", "satisfied", "new_V", "new_C",
            "scheme", "principals",
        }
        # No stray instance attributes beyond the dataclass fields.
        assert set(vars(plan)) == field_names

    def test_allocation_identical_enabled_vs_disabled(self):
        system = complete_structure(5, share=0.15)
        p = system.principals[1]
        plan_off = allocate_lp(system, p, 1.2)
        ob = obs.enable()
        try:
            plan_on = allocate_lp(system, p, 1.2)
        finally:
            obs.disable()
        assert ob.registry.counter_value("allocation.requests", scheme="lp") == 1
        np.testing.assert_allclose(plan_on.take, plan_off.take)
        assert plan_on.theta == plan_off.theta

    def test_transport_reply_passthrough(self):
        t = InProcessTransport()
        reply = Message(sender="handler")
        t.register("h", lambda m: reply)
        assert t.send("h", Message(sender="x")) is reply
        assert t.delivered == 1

    def test_engine_counts_without_observer(self):
        eng = Engine()
        ev = eng.schedule_at(1.0, lambda: None)
        ev.cancel()
        eng.schedule_at(2.0, lambda: None)
        eng.run()
        assert eng.events_processed == 1
        assert eng.events_cancelled == 1
