"""JSONL trace round-trip, report rendering, and the CLI script."""

import json
import subprocess
import sys
from pathlib import Path

from repro.obs.events import read_trace
from repro.obs.report import render_snapshot, render_trace, summarize_trace

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write_workload(observer):
    """Record a tiny but representative mix of spans/counters/events."""
    with observer.span("lp.solve", backend="scipy"):
        pass
    with observer.span("lp.solve", backend="scipy"):
        pass
    observer.counter("transport.sent", 3, endpoint="grm")
    observer.gauge("des.sim_wall_ratio", 120.0)
    observer.histogram("allocation.theta", 2.5)
    observer.event("allocation.infeasible", principal="isp0", amount=4.0)


class TestJsonlRoundTrip:
    def test_every_line_is_json(self, traced_observer):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        with path.open() as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "event", "metric"}
        assert all("ts" in r for r in records)

    def test_read_trace_matches_emits(self, traced_observer):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        records = read_trace(path)
        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) == 2
        assert spans[0]["name"] == "lp.solve"
        assert spans[0]["attrs"] == {"backend": "scipy"}

    def test_read_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"kind": "span", "name": "lp.solve", "dur": 0.1, "attrs": {}}\n'
            '{"kind": "event", "event": "des.run"}\n'
            '{"kind": "span", "name": "trunc'  # process killed mid-write
        )
        records = read_trace(path)
        assert [r["kind"] for r in records] == ["span", "event"]

    def test_summarize_trace_aggregates(self, traced_observer):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        summary = summarize_trace(read_trace(path))
        assert summary["spans"]["lp.solve"]["count"] == 2
        assert summary["events"]["allocation.infeasible"] == 1
        assert summary["counters"]["transport.sent"]["endpoint=grm"] == 3
        assert summary["gauges"]["des.sim_wall_ratio"][""] == 120.0
        assert summary["histograms"]["allocation.theta"][""]["count"] == 1

    def test_later_metric_lines_supersede(self, traced_observer):
        observer, path = traced_observer
        observer.counter("c", 1)
        observer.flush()
        observer.counter("c", 1)
        observer.flush()
        summary = summarize_trace(read_trace(path))
        assert summary["counters"]["c"][""] == 2

    def test_in_memory_event_log(self, observer):
        observer.event("ping", n=1)
        records = observer.events_log.records()
        assert records and records[-1]["event"] == "ping"


class TestRendering:
    def test_render_trace_tables(self, traced_observer):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        text = render_trace(path)
        assert "== spans (seconds) ==" in text
        assert "lp.solve" in text
        assert "transport.sent" in text
        assert "endpoint=grm" in text

    def test_render_empty_snapshot(self):
        assert "no metrics" in render_snapshot({})


class TestDecisionReporting:
    def _record_decisions(self, observer):
        with observer.decision(request_id=1, requestor="p0") as dec:
            dec.set(outcome="granted", granted=2.0)
        with observer.decision(request_id=2, requestor="p1") as dec:
            dec.set(outcome="denied", reason="no capacity")

    def test_summarize_counts_outcomes(self, traced_observer):
        observer, path = traced_observer
        self._record_decisions(observer)
        observer.flush()
        summary = summarize_trace(read_trace(path))
        assert summary["decisions"] == {"granted": 1, "denied": 1}

    def test_render_trace_shows_decisions_table(self, traced_observer):
        observer, path = traced_observer
        self._record_decisions(observer)
        observer.flush()
        text = render_trace(path)
        assert "== decisions ==" in text
        assert "granted" in text and "denied" in text
        assert "obs_trace.py explain" in text

    def test_distinct_trace_count(self, traced_observer):
        observer, path = traced_observer
        with observer.root_span("req.a"):
            pass
        with observer.root_span("req.b"):
            pass
        observer.flush()
        assert summarize_trace(read_trace(path))["traces"] == 2

    def test_cli_json_includes_decisions(self, traced_observer):
        observer, path = traced_observer
        self._record_decisions(observer)
        observer.flush()
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "obs_report.py"),
             str(path), "--json"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["decisions"] == {"granted": 1, "denied": 1}


class TestReportScript:
    def test_cli_renders_trace(self, traced_observer, tmp_path):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "obs_report.py"), str(path)],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "lp.solve" in proc.stdout
        assert "transport.sent" in proc.stdout

    def test_cli_json_mode(self, traced_observer):
        observer, path = traced_observer
        _write_workload(observer)
        observer.flush()
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "obs_report.py"),
             str(path), "--json"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["spans"]["lp.solve"]["count"] == 2

    def test_cli_missing_file_errors(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "obs_report.py"),
             str(tmp_path / "absent.jsonl")],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode != 0
