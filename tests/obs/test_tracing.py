"""Span nesting, timing, and the observer lifecycle."""

import pytest

import repro.obs as obs
from repro.errors import ReproError
from repro.obs.tracing import traced


class TestSpanNesting:
    def test_nested_paths(self, observer):
        with observer.span("outer"):
            with observer.span("inner") as inner:
                assert inner.path == "outer/inner"
                with observer.span("leaf") as leaf:
                    assert leaf.path == "outer/inner/leaf"

    def test_stack_unwinds(self, observer):
        with observer.span("a"):
            assert observer.tracer.depth == 1
        assert observer.tracer.depth == 0
        assert observer.tracer.current is None

    def test_duration_measured(self, observer):
        with observer.span("timed") as sp:
            pass
        assert sp.duration >= 0.0
        h = observer.registry.get_histogram("span.timed")
        assert h is not None and h.count == 1

    def test_exception_tagged_and_stack_unwound(self, observer):
        with pytest.raises(ValueError):
            with observer.span("boom") as sp:
                raise ValueError("x")
        assert sp.attrs["error"] == "ValueError"
        assert observer.tracer.depth == 0

    def test_set_attaches_attributes(self, observer):
        with observer.span("s", a=1) as sp:
            sp.set(b=2)
        assert sp.attrs == {"a": 1, "b": 2}


class TestTracedDecorator:
    def test_decorator_records_span(self, observer):
        @traced("decorated.fn")
        def work(x):
            return x * 2

        assert work(21) == 42
        h = observer.registry.get_histogram("span.decorated.fn")
        assert h is not None and h.count == 1

    def test_decorator_is_noop_when_disabled(self):
        @traced("decorated.off")
        def work():
            return "ok"

        assert work() == "ok"  # null observer: no error, nothing recorded


class TestGlobalLifecycle:
    def test_enable_disable_swaps_observer(self):
        assert not obs.get_observer().enabled
        ob = obs.enable()
        try:
            assert obs.get_observer() is ob
            assert ob.enabled
        finally:
            obs.disable()
        assert not obs.get_observer().enabled

    def test_report_when_disabled(self):
        assert "disabled" in obs.report()

    def test_report_when_enabled(self):
        obs.enable().counter("x")
        try:
            assert "x" in obs.report()
        finally:
            obs.disable()


class TestInstrumentedStack:
    """Spot-checks that real call sites hit the registry when enabled."""

    def test_lp_solve_records_span_and_counter(self, observer):
        from repro.lp import LinearProgram

        lp = LinearProgram("t")
        x = lp.variable("x", lower=0.0, upper=4.0)
        lp.add_constraint(x <= 3.0)
        lp.minimize(x * -1.0)
        for backend in ("scipy", "simplex"):
            lp.solve(backend=backend)
            assert observer.registry.counter_value("lp.solves", backend=backend) == 1
        assert observer.registry.get_histogram("span.lp.solve").count == 2

    def test_allocation_records_theta(self, observer):
        from repro.agreements import complete_structure
        from repro.allocation import allocate_lp

        system = complete_structure(4, share=0.2)
        allocate_lp(system, system.principals[0], 1.0)
        assert observer.registry.counter_value(
            "allocation.requests", scheme="lp") == 1
        assert observer.registry.get_histogram("allocation.theta").count == 1

    def test_transport_per_endpoint_counters(self, observer):
        from repro.manager.messages import Message
        from repro.manager.transport import InProcessTransport

        t = InProcessTransport()
        t.register("a")
        t.send("a", Message(sender="x"))
        t.send("a", Message(sender="x"))
        assert t.receive("a") is not None
        assert t.sent_by_endpoint["a"] == 2
        assert t.received_by_endpoint["a"] == 1
        assert observer.registry.counter_value(
            "transport.sent", endpoint="a", type="Message") == 2
        assert observer.registry.counter_value(
            "transport.received", endpoint="a") == 1

    def test_unknown_endpoint_lists_known(self):
        from repro.manager.messages import Message
        from repro.manager.transport import InProcessTransport

        t = InProcessTransport()
        t.register("grm")
        t.register("isp0")
        with pytest.raises(ReproError, match=r"grm.*isp0|known endpoints"):
            t.send("ghost", Message(sender="x"))
        with pytest.raises(ReproError, match="<none registered>"):
            InProcessTransport().send("ghost", Message(sender="x"))

    def test_engine_counters_reach_registry(self, observer):
        from repro.des import Engine

        eng = Engine()
        keep = eng.schedule_at(1.0, lambda: None)
        drop = eng.schedule_at(2.0, lambda: None)
        drop.cancel()
        eng.run()
        assert keep.time == 1.0
        assert observer.registry.counter_value("des.events_fired") == 1
        assert observer.registry.counter_value("des.events_cancelled") == 1
