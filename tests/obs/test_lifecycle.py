"""Observer lifecycle: enable / re-enable / disable semantics.

The observer is process-global; long-lived processes (notebooks, the DES
driver) re-enable it between experiments, so re-enabling must never lose
data already recorded to the previous trace, and must hand out a fresh
observer rather than mutating the old one.
"""

import json

import repro.obs as obs
from repro.obs.null import NULL_OBSERVER


def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_reenable_flushes_and_closes_previous_trace(tmp_path):
    first_path = tmp_path / "first.jsonl"
    second_path = tmp_path / "second.jsonl"
    try:
        first = obs.enable(trace_path=first_path)
        with first.span("phase.one"):
            pass

        second = obs.enable(trace_path=second_path)
        assert second is not first
        assert obs.get_observer() is second

        # The first trace was flushed and closed on re-enable: its span
        # and its final metric snapshot are on disk even though disable()
        # was never called on it.
        records = _read_jsonl(first_path)
        assert any(
            r["kind"] == "span" and r["name"] == "phase.one" for r in records
        )
        assert any(r["kind"] == "metric" for r in records)
        assert first.events_log.closed

        # The second observer starts fresh: no carried-over metrics.
        assert second.registry.snapshot()["counters"] == {}
        with second.span("phase.two"):
            pass
        obs.disable()
        names = [r.get("name") for r in _read_jsonl(second_path)]
        assert "phase.two" in names and "phase.one" not in names
    finally:
        obs.disable()


def test_reenable_resets_flight_recorder(tmp_path):
    try:
        first = obs.enable()
        with first.decision(request_id=1, requestor="p0") as dec:
            dec.set(outcome="granted", granted=1.0)
        assert obs.explain(1) is not None

        obs.enable()  # fresh observer, fresh ring buffer
        assert obs.explain(1) is None
    finally:
        obs.disable()


def test_disable_is_idempotent_and_restores_null():
    obs.disable()
    obs.disable()
    assert obs.get_observer() is NULL_OBSERVER
    assert obs.report() == "(observability disabled)"
    assert obs.explain(12345) is None
