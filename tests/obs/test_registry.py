"""Counter/gauge/histogram semantics of the metrics registry."""

import math

from repro.obs.registry import Histogram, MetricsRegistry, label_key, label_str


class TestLabels:
    def test_label_order_is_irrelevant(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})

    def test_label_str_round_trip(self):
        assert label_str(label_key({"endpoint": "grm"})) == "endpoint=grm"
        assert label_str(label_key({})) == ""


class TestCounters:
    def test_increment_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_inc("m")
        reg.counter_inc("m", 4)
        assert reg.counter_value("m") == 5

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter_inc("sent", endpoint="grm")
        reg.counter_inc("sent", 2, endpoint="isp0")
        assert reg.counter_value("sent", endpoint="grm") == 1
        assert reg.counter_value("sent", endpoint="isp0") == 2
        assert reg.counter_total("sent") == 3

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0


class TestGauges:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge_set("ratio", 1.5)
        reg.gauge_set("ratio", 2.5)
        assert reg.gauge_value("ratio") == 2.5

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_summary_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_empty_histogram_summary(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert s["min"] == 0.0 and s["max"] == 0.0

    def test_buckets_cover_extremes(self):
        h = Histogram()
        h.observe(1e-9)   # below the base bucket
        h.observe(1e12)   # far past the last boundary
        assert sum(h.buckets) == 2
        assert h.buckets[0] == 1
        assert h.buckets[-1] == 1

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5, endpoint="grm")
        reg.observe("lat", 1.5, endpoint="grm")
        h = reg.get_histogram("lat", endpoint="grm")
        assert h.count == 2 and h.mean == 1.0
        assert reg.get_histogram("lat", endpoint="other") is None


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 2, kind="x")
        reg.gauge_set("g", 0.25)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"]["kind=x"] == 2
        assert snap["gauges"]["g"][""] == 0.25
        assert snap["histograms"]["h"][""]["count"] == 1
        assert math.isclose(snap["histograms"]["h"][""]["mean"], 3.0)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter_inc("c")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
