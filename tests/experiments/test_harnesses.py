"""Smoke tests for the experiment harnesses.

These run each figure's harness on a drastically reduced workload
(scale 250 ≈ 2k requests/proxy/day) purely to validate plumbing: row
schemas, series shapes, table rendering, CLI.  Figure-shape assertions
live in benchmarks/ where the full-scale runs happen.
"""

import numpy as np
import pytest

from repro.experiments import fig05, fig06, fig07, fig08, fig09_11, fig12, fig13
from repro.experiments.common import ExperimentResult, base_config
from repro.experiments.runner import EXPERIMENTS, main

FAST = dict(scale=250.0)


class TestCommon:
    def test_base_config_scales(self):
        cfg = base_config(250.0)
        assert cfg.requests_per_day == pytest.approx(500_000 / 250 * 0.95)
        paper = base_config(1.0)
        assert paper.service.a == 0.1

    def test_table_rendering(self):
        res = ExperimentResult(
            "x", "demo", rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        )
        table = res.table()
        assert "a" in table and "10" in table and "0.125" in table
        assert res.render().startswith("== x: demo ==")

    def test_empty_table(self):
        assert ExperimentResult("x", "d").table() == "(no rows)"

    def test_row_by(self):
        res = ExperimentResult("x", "d", rows=[{"k": 1}, {"k": 2}])
        assert res.row_by(k=2) == {"k": 2}
        with pytest.raises(KeyError):
            res.row_by(k=3)


class TestFig05:
    def test_schema(self):
        res = fig05.run(**FAST)
        assert res.experiment == "fig05"
        assert {r["metric"] for r in res.rows} >= {
            "peak_mean_wait_s", "trough_mean_wait_s", "peak_requests_per_slot"
        }
        assert res.series["mean_wait"].shape == (144,)
        assert res.series["requests_per_slot"].sum() > 0


class TestFig06:
    def test_schema(self):
        res = fig06.run(gaps=(0.0, 3600.0), **FAST)
        labels = [r["gap_s"] for r in res.rows]
        assert "none (no sharing)" in labels
        assert 3600.0 in labels
        assert "wait:gap=3600" in res.series

    def test_no_baseline_option(self):
        res = fig06.run(gaps=(3600.0,), include_baseline=False, **FAST)
        assert len(res.rows) == 1


class TestFig07:
    def test_schema(self):
        res = fig07.run(factors=(1.0, 1.5), **FAST)
        configs = [r["config"] for r in res.rows]
        assert configs.count("no sharing") == 2
        assert "crossover" in res.notes.lower()


class TestFig08:
    def test_schema(self):
        res = fig08.run(levels=(1, 9), seeds=(0,), **FAST)
        levels = [r["level"] for r in res.rows]
        assert levels == ["none", 1, 9]


class TestFig09_11:
    def test_schema(self):
        res = fig09_11.run(skips=(1,), levels=(1, 3), seeds=(0,), **FAST)
        assert [r["level"] for r in res.rows] == [1, 3]
        assert all(r["figure"] == "fig09" for r in res.rows)

    def test_figure_labels(self):
        res = fig09_11.run(skips=(3, 7), levels=(1,), seeds=(0,), **FAST)
        assert [r["figure"] for r in res.rows] == ["fig10", "fig11"]


class TestFig12:
    def test_schema(self):
        res = fig12.run(cost_multipliers=(0.0, 2.0), **FAST)
        assert [r["cost_multiplier"] for r in res.rows] == [0.0, 2.0]
        for row in res.rows:
            assert 0.0 <= row["redirected_frac"] <= 1.0


class TestFig13:
    def test_schema(self):
        res = fig13.run(**FAST)
        assert {r["scheme"] for r in res.rows} == {"lp", "endpoint"}
        assert "wait:lp" in res.series
        assert "Measured peak reduction" in res.notes


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_run_one(self, capsys):
        assert main(["fig05", "--scale", "250"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "peak_mean_wait_s" in out
