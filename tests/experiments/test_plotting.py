"""Tests for terminal plotting."""

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.plotting import ascii_chart, render_series, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(np.arange(9.0), width=9)
        assert list(line) == sorted(line)

    def test_downsampling(self):
        assert len(sparkline(np.arange(1000.0), width=50)) == 50

    def test_extremes_map_to_extremes(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == " " or line[0] == "▁"
        assert line[-1] == "█"


class TestAsciiChart:
    def test_structure(self):
        chart = ascii_chart([1.0, 2.0, 3.0], height=4, label="x")
        lines = chart.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 1 + 4 + 1  # header + rows + axis
        assert lines[-1].startswith("+")

    def test_peak_column_full(self):
        chart = ascii_chart([0.0, 10.0, 0.0], height=3, label="")
        rows = chart.splitlines()[1:-1]
        # middle column filled top to bottom
        assert all(r[2] == "█" for r in rows)

    def test_log_scale_header(self):
        chart = ascii_chart([1.0, 1000.0], log=True)
        assert "log scale" in chart.splitlines()[0]

    def test_empty(self):
        assert "empty" in ascii_chart([])


class TestRenderSeries:
    def test_skips_axis_series(self):
        res = ExperimentResult(
            "x", "d",
            series={"slot_hours": np.arange(3.0), "wait:lp": np.ones(3)},
        )
        out = render_series(res)
        assert "wait:lp" in out
        assert "slot_hours" not in out

    def test_key_filter(self):
        res = ExperimentResult(
            "x", "d",
            series={"a": np.ones(3), "b": np.ones(3)},
        )
        out = render_series(res, keys=["a"])
        assert "a" in out and "b" not in out

    def test_no_series(self):
        assert "no series" in render_series(ExperimentResult("x", "d"))
