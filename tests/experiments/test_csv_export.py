"""Tests for ExperimentResult CSV export."""

import csv

import numpy as np

from repro.experiments.common import ExperimentResult


def test_rows_csv(tmp_path):
    res = ExperimentResult(
        "figX", "demo", rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
    )
    paths = res.to_csv(tmp_path)
    assert len(paths) == 1
    with paths[0].open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["a"] == "1"
    assert rows[1]["b"] == "4.5"


def test_series_csv_alignment(tmp_path):
    res = ExperimentResult(
        "figY",
        "demo",
        rows=[{"k": 1}],
        series={
            "slot_hours": np.array([0.0, 1.0, 2.0]),
            "short": np.array([9.0]),
        },
    )
    paths = res.to_csv(tmp_path)
    series_path = [p for p in paths if "series" in p.name][0]
    with series_path.open() as fh:
        reader = list(csv.reader(fh))
    assert reader[0] == ["slot_hours", "short"]
    assert len(reader) == 4  # header + 3 slots
    assert reader[2][1] == ""  # shorter series padded with blanks


def test_empty_result_writes_nothing(tmp_path):
    res = ExperimentResult("figZ", "demo")
    assert res.to_csv(tmp_path) == []
