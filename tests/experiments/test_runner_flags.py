"""Tests for the runner CLI's --plot and --csv flags."""

from pathlib import Path

from repro.experiments.runner import main


def test_plot_flag(capsys):
    assert main(["fig05", "--scale", "250", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "mean_wait" in out
    assert "█" in out or "▁" in out  # a chart was rendered


def test_csv_flag(tmp_path, capsys):
    assert main(["fig05", "--scale", "250", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    files = list(Path(tmp_path).glob("fig05_*.csv"))
    assert len(files) == 2  # rows + series
