"""Tests for the diurnal profile, size distributions, and stream generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload import (
    DiurnalProfile,
    LogNormalSizes,
    ParetoSizes,
    RequestStream,
    generate_streams,
)
from repro.workload.diurnal import DAY_SECONDS
from repro.workload.sizes import HybridSizes


class TestDiurnalProfile:
    def test_mean_rate(self):
        p = DiurnalProfile(requests_per_day=86_400.0)
        assert p.base_rate == pytest.approx(1.0)
        # The Fourier shape integrates to ~1 over a day.
        assert p.expected_count(0, DAY_SECONDS, steps=2048) == pytest.approx(
            86_400.0, rel=1e-3
        )

    def test_peak_at_midnight_trough_early_morning(self):
        """The paper's Figure 5 shape: heaviest around midnight, lightest
        in the early morning hours."""
        p = DiurnalProfile(requests_per_day=86_400.0)
        t = np.linspace(0, DAY_SECONDS, 2881)
        rates = p.rate(t)
        peak_hour = t[np.argmax(rates)] / 3600.0
        trough_hour = t[np.argmin(rates)] / 3600.0
        assert peak_hour < 1.5 or peak_hour > 22.5  # near midnight
        assert 2.0 <= trough_hour <= 9.0  # early morning

    def test_peak_trough_ratio(self):
        p = DiurnalProfile(requests_per_day=86_400.0)
        assert 3.0 <= p.peak_rate / p.trough_rate <= 8.0

    def test_rate_positive_everywhere(self):
        p = DiurnalProfile(requests_per_day=1000.0)
        t = np.linspace(0, DAY_SECONDS, 10_001)
        assert np.all(p.rate(t) > 0)

    def test_skew_shifts_profile(self):
        p = DiurnalProfile(requests_per_day=86_400.0)
        q = p.with_skew(3_600.0)
        assert q.rate(7_200.0) == pytest.approx(p.rate(3_600.0))

    def test_skews_compose(self):
        p = DiurnalProfile().with_skew(3_600.0).with_skew(1_800.0)
        assert p.skew == 5_400.0

    def test_wraps_daily(self):
        p = DiurnalProfile(requests_per_day=1000.0)
        assert p.rate(1_000.0) == pytest.approx(p.rate(1_000.0 + DAY_SECONDS))

    def test_scaled_changes_volume_not_shape(self):
        p = DiurnalProfile(requests_per_day=1000.0)
        q = p.scaled(2.0)
        assert q.rate(500.0) == pytest.approx(2 * p.rate(500.0))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalProfile(requests_per_day=0)
        with pytest.raises(WorkloadError):
            DiurnalProfile(a1=0.9, a2=0.2)  # rate would go negative
        with pytest.raises(WorkloadError):
            DiurnalProfile().scaled(-1)
        with pytest.raises(WorkloadError):
            DiurnalProfile().expected_count(5.0, 1.0)


class TestSizes:
    def test_lognormal_mean(self):
        d = LogNormalSizes(median=6_000.0, sigma=1.2)
        rng = np.random.default_rng(0)
        sample = d.sample(rng, 200_000)
        assert sample.mean() == pytest.approx(d.mean, rel=0.05)

    def test_pareto_mean(self):
        d = ParetoSizes(minimum=1_000.0, alpha=1.8)
        rng = np.random.default_rng(0)
        sample = d.sample(rng, 400_000)
        assert sample.mean() == pytest.approx(d.mean, rel=0.1)

    def test_samples_positive_and_capped(self):
        for d in (LogNormalSizes(), ParetoSizes(alpha=1.1), HybridSizes()):
            sample = d.sample(np.random.default_rng(1), 10_000)
            assert np.all(sample > 0)
            assert np.all(sample <= 100e6)

    def test_pareto_validation(self):
        with pytest.raises(WorkloadError):
            ParetoSizes(alpha=1.0)
        with pytest.raises(WorkloadError):
            ParetoSizes(minimum=0)

    def test_hybrid_mixture_mean(self):
        d = HybridSizes(tail_fraction=0.0)
        assert d.mean == pytest.approx(d.body.mean)

    def test_hybrid_validation(self):
        with pytest.raises(WorkloadError):
            HybridSizes(tail_fraction=1.5)


class TestRequestStream:
    def test_expected_volume(self):
        p = DiurnalProfile(requests_per_day=5_000.0)
        stream = RequestStream(p)
        reqs = stream.sample(np.random.default_rng(0))
        assert len(reqs) == pytest.approx(5_000, rel=0.1)

    def test_sorted_arrivals_within_horizon(self):
        p = DiurnalProfile(requests_per_day=2_000.0)
        reqs = RequestStream(p, horizon=43_200.0).sample(np.random.default_rng(1))
        times = [r.arrival for r in reqs]
        assert times == sorted(times)
        assert all(0 <= t <= 43_200.0 for t in times)

    def test_arrivals_follow_profile(self):
        """More arrivals near the peak than near the trough."""
        p = DiurnalProfile(requests_per_day=50_000.0)
        reqs = RequestStream(p).sample(np.random.default_rng(2))
        times = np.array([r.arrival for r in reqs])
        peak_count = np.sum(times < 2 * 3600)  # midnight..2am
        trough_count = np.sum((times > 4 * 3600) & (times < 6 * 3600))
        assert peak_count > 2 * trough_count

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_given_seed(self, seed):
        p = DiurnalProfile(requests_per_day=500.0)
        a = RequestStream(p).sample(np.random.default_rng(seed))
        b = RequestStream(p).sample(np.random.default_rng(seed))
        assert [r.arrival for r in a] == [r.arrival for r in b]


class TestGenerateStreams:
    def test_origins_and_count(self):
        p = DiurnalProfile(requests_per_day=1_000.0)
        streams = generate_streams(3, p, gap=3_600.0, seed=0)
        assert len(streams) == 3
        for i, s in enumerate(streams):
            assert all(r.origin == i for r in s)

    def test_gap_skews_streams(self):
        """With a positive gap, proxy i's rush hour comes i*gap later."""
        p = DiurnalProfile(requests_per_day=100_000.0)
        streams = generate_streams(2, p, gap=6 * 3_600.0, seed=3)

        def peak_hour(stream):
            times = np.array([r.arrival for r in stream]) % DAY_SECONDS
            hist, edges = np.histogram(times, bins=24, range=(0, DAY_SECONDS))
            return edges[np.argmax(hist)] / 3600.0

        h0, h1 = peak_hour(streams[0]), peak_hour(streams[1])
        assert (h1 - h0) % 24 == pytest.approx(6.0, abs=1.5)

    def test_independent_realisations(self):
        p = DiurnalProfile(requests_per_day=1_000.0)
        streams = generate_streams(2, p, gap=0.0, seed=0)
        t0 = [r.arrival for r in streams[0]]
        t1 = [r.arrival for r in streams[1]]
        assert t0 != t1  # same profile, different draws

    def test_zero_proxies_rejected(self):
        with pytest.raises(WorkloadError):
            generate_streams(0, DiurnalProfile(), gap=0.0)
