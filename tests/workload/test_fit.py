"""Tests for profile fitting from traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import DiurnalProfile, RequestStream
from repro.workload.diurnal import DAY_SECONDS
from repro.workload.fit import fit_profile, profile_fit_error
from repro.workload.generator import Request


class TestFitProfile:
    def test_roundtrip_default_profile(self):
        """Sampling the default profile and fitting must recover it."""
        truth = DiurnalProfile(requests_per_day=80_000.0)
        stream = RequestStream(truth, horizon=3 * DAY_SECONDS)
        reqs = stream.sample(np.random.default_rng(0))
        fitted = fit_profile(reqs)
        assert fitted.requests_per_day == pytest.approx(
            truth.requests_per_day, rel=0.03
        )
        t = np.linspace(0, DAY_SECONDS, 200)
        np.testing.assert_allclose(
            fitted.rate(t), truth.rate(t), rtol=0.15, atol=0.05 * truth.base_rate
        )

    def test_roundtrip_constant_profile(self):
        truth = DiurnalProfile(requests_per_day=40_000.0, a1=0.0, a2=0.0)
        reqs = RequestStream(truth).sample(np.random.default_rng(1))
        fitted = fit_profile(reqs)
        assert fitted.a1 < 0.05
        assert fitted.a2 < 0.05

    def test_skewed_profile_recovered(self):
        truth = DiurnalProfile(requests_per_day=80_000.0).with_skew(5 * 3600.0)
        reqs = RequestStream(truth, horizon=2 * DAY_SECONDS).sample(
            np.random.default_rng(2)
        )
        fitted = fit_profile(reqs)
        t = np.linspace(0, DAY_SECONDS, 200)
        # the fit folds the skew into its phases; rates must still match
        np.testing.assert_allclose(
            fitted.rate(t), truth.rate(t), rtol=0.2, atol=0.05 * truth.base_rate
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError, match="empty"):
            fit_profile([])

    def test_positivity_clamp(self):
        """A pathological spike trace fits without violating positivity."""
        reqs = [Request(100.0 + i * 0.001, 1000.0) for i in range(5_000)]
        fitted = fit_profile(reqs)
        assert abs(fitted.a1) + abs(fitted.a2) < 1.0


class TestFitError:
    def test_matching_profile_low_error(self):
        truth = DiurnalProfile(requests_per_day=80_000.0)
        reqs = RequestStream(truth, horizon=2 * DAY_SECONDS).sample(
            np.random.default_rng(3)
        )
        assert profile_fit_error(reqs, truth) < 0.35

    def test_wrong_profile_high_error(self):
        truth = DiurnalProfile(requests_per_day=80_000.0)
        reqs = RequestStream(truth).sample(np.random.default_rng(4))
        wrong = truth.with_skew(12 * 3600.0)  # peak moved to the trough
        assert profile_fit_error(reqs, wrong) > 3 * profile_fit_error(reqs, truth)

    def test_empty(self):
        with pytest.raises(WorkloadError):
            profile_fit_error([], DiurnalProfile())
