"""Tests for weekly (day-of-week modulated) profiles."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import DiurnalProfile, RequestStream
from repro.workload.diurnal import DAY_SECONDS
from repro.workload.weekly import WEEK_SECONDS, WeeklyProfile


class TestWeeklyProfile:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WeeklyProfile(day_factors=(1.0,) * 6)
        with pytest.raises(WorkloadError):
            WeeklyProfile(day_factors=(1.0,) * 6 + (0.0,))

    def test_weekday_modulation(self):
        base = DiurnalProfile(requests_per_day=86_400.0, a1=0.0, a2=0.0)
        weekly = WeeklyProfile(base, day_factors=(2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0))
        mean = np.mean([2.0, 1, 1, 1, 1, 1, 1])
        # Monday (day 0) is 2/mean of the base rate; Tuesday 1/mean.
        assert weekly.rate(3_600.0) == pytest.approx(base.rate(3_600.0) * 2 / mean)
        assert weekly.rate(DAY_SECONDS + 3_600.0) == pytest.approx(
            base.rate(3_600.0) / mean
        )

    def test_week_wraps(self):
        weekly = WeeklyProfile(DiurnalProfile(requests_per_day=1_000.0))
        assert weekly.rate(100.0) == pytest.approx(weekly.rate(100.0 + WEEK_SECONDS))

    def test_weekly_average_preserved(self):
        weekly = WeeklyProfile(DiurnalProfile(requests_per_day=10_000.0))
        total = weekly.expected_count(0.0, WEEK_SECONDS, steps=7 * 512)
        assert total == pytest.approx(7 * 10_000.0, rel=0.01)

    def test_skew_shifts_day_boundaries(self):
        weekly = WeeklyProfile(
            DiurnalProfile(requests_per_day=86_400.0, a1=0.0, a2=0.0),
            day_factors=(2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
        )
        shifted = weekly.with_skew(DAY_SECONDS)
        # after a one-day skew, "Monday rates" appear one day later
        assert shifted.rate(DAY_SECONDS + 100.0) == pytest.approx(weekly.rate(100.0))

    def test_scaled(self):
        weekly = WeeklyProfile(DiurnalProfile(requests_per_day=1_000.0))
        assert weekly.scaled(3.0).rate(50.0) == pytest.approx(3 * weekly.rate(50.0))


class TestSimulatorCompatibility:
    def test_proxy_simulation_accepts_weekly_profile(self):
        from repro.proxysim import SimulationConfig, run_simulation

        weekly = WeeklyProfile(
            DiurnalProfile(requests_per_day=400.0),
            day_factors=(1.5, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5),
        )
        cfg = SimulationConfig(
            n_proxies=2, scheme="none", profile=weekly,
            requests_per_day=400.0, warmup_days=0, measure_days=1,
            epoch=600.0,
        )
        result = run_simulation(cfg)
        assert result.total_requests > 0


class TestStreamCompatibility:
    def test_request_stream_accepts_weekly_profile(self):
        weekly = WeeklyProfile(
            DiurnalProfile(requests_per_day=2_000.0),
            day_factors=(1.5, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5),
        )
        stream = RequestStream(weekly, horizon=WEEK_SECONDS)
        reqs = stream.sample(np.random.default_rng(0))
        assert len(reqs) == pytest.approx(14_000, rel=0.1)
        # Monday (boosted) has more arrivals than Saturday (suppressed).
        days = np.array([r.arrival // DAY_SECONDS for r in reqs])
        assert np.sum(days == 0) > 1.5 * np.sum(days == 5)
