"""Tests for trace file I/O and the Common Log Format parser."""

import pytest

from repro.errors import WorkloadError
from repro.workload import Request, read_trace, write_trace
from repro.workload.trace import parse_common_log_line


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        reqs = [Request(1.5, 2048.0, 0), Request(0.5, 512.0, 2)]
        path = tmp_path / "trace.csv"
        assert write_trace(path, reqs) == 2
        back = read_trace(path)
        # read_trace sorts by arrival
        assert back[0].arrival == pytest.approx(0.5)
        assert back[0].origin == 2
        assert back[1].length == pytest.approx(2048.0)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# header\n\n1.0,100\n")
        reqs = read_trace(path)
        assert len(reqs) == 1
        assert reqs[0].origin == 0  # default origin

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.0,100,2,9\n")
        with pytest.raises(WorkloadError, match="fields"):
            read_trace(path)

    def test_bad_number(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("abc,100\n")
        with pytest.raises(WorkloadError):
            read_trace(path)

    def test_negative_values_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("-1.0,100\n")
        with pytest.raises(WorkloadError, match="negative"):
            read_trace(path)


class TestCommonLogFormat:
    LINE = '1.2.3.4 - - [01/Nov/1996:13:30:12 -0800] "GET /x.html HTTP/1.0" 200 5120'

    def test_parse_basic(self):
        req = parse_common_log_line(self.LINE)
        assert req is not None
        assert req.length == pytest.approx(5120.0)
        assert req.arrival == pytest.approx(13 * 3600 + 30 * 60 + 12)

    def test_multiday_offset(self):
        line = self.LINE.replace("01/Nov", "03/Nov")
        req = parse_common_log_line(line, day_origin=False)
        assert req.arrival == pytest.approx(2 * 86_400 + 13 * 3600 + 30 * 60 + 12)

    def test_missing_size_skipped(self):
        line = self.LINE.rsplit(" ", 1)[0] + " -"
        assert parse_common_log_line(line) is None

    def test_garbage_line_skipped(self):
        assert parse_common_log_line("not a log line") is None

    def test_bad_month_skipped(self):
        assert parse_common_log_line(self.LINE.replace("Nov", "Foo")) is None
