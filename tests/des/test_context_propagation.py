"""Trace context must survive the DES scheduling boundary.

An event's callback runs from the engine loop, where the Python call
stack no longer connects it to whoever scheduled it.  The engine
captures the scheduler's trace context on the Event and restores it
around the callback, so spans opened inside the callback join the
scheduling trace.
"""

import repro.obs as obs
from repro.des.engine import Engine


def test_event_callback_joins_scheduling_trace():
    seen = {}

    try:
        observer = obs.enable()
        engine = Engine()

        def fired():
            with observer.span("work.inside_event") as sp:
                seen["ctx"] = sp.context

        with observer.root_span("request.origin") as origin:
            scheduling_trace = origin.context.trace_id
            engine.schedule(1.0, fired)
        engine.run()
    finally:
        obs.disable()

    assert seen["ctx"].trace_id == scheduling_trace


def test_events_scheduled_outside_any_span_stay_untraced():
    seen = {}

    try:
        observer = obs.enable()
        engine = Engine()

        def fired():
            with observer.span("work.inside_event") as sp:
                seen["ctx"] = sp.context

        engine.schedule(1.0, fired)  # no enclosing span, no ambient ctx
        engine.run()
    finally:
        obs.disable()

    # The span minted a fresh root trace rather than inheriting garbage.
    assert seen["ctx"].parent_id is None


def test_disabled_observer_schedules_without_context():
    obs.disable()
    engine = Engine()
    fired = []
    ev = engine.schedule(1.0, lambda: fired.append(True))
    assert ev.ctx is None
    engine.run()
    assert fired == [True]


def test_two_requests_keep_distinct_traces():
    """Interleaved events from two requests must not cross-contaminate."""
    seen = {}

    try:
        observer = obs.enable()
        engine = Engine()

        def make(name):
            def fired():
                with observer.span(f"work.{name}") as sp:
                    seen[name] = sp.context.trace_id
            return fired

        with observer.root_span("request.a") as a:
            trace_a = a.context.trace_id
            engine.schedule(2.0, make("a"))
        with observer.root_span("request.b") as b:
            trace_b = b.context.trace_id
            engine.schedule(1.0, make("b"))  # fires first
        engine.run()
    finally:
        obs.disable()

    assert trace_a != trace_b
    assert seen["a"] == trace_a
    assert seen["b"] == trace_b
