"""Tests for the slot-series and summary statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import SlotSeries, SummaryStats


class TestSlotSeries:
    def test_geometry(self):
        s = SlotSeries(horizon=86_400.0, width=600.0)
        assert s.slots == 144  # the paper's 10-minute slots
        assert s.slot_times()[1] == 600.0

    def test_record_and_means(self):
        s = SlotSeries(horizon=100.0, width=10.0)
        s.record(5.0, 2.0)
        s.record(7.0, 4.0)
        s.record(15.0, 10.0)
        means = s.means()
        assert means[0] == pytest.approx(3.0)
        assert means[1] == pytest.approx(10.0)
        assert s.counts().tolist()[:3] == [2, 1, 0]

    def test_wraps_modulo_horizon(self):
        s = SlotSeries(horizon=100.0, width=10.0)
        s.record(105.0, 1.0)  # lands in slot 0
        assert s.counts()[0] == 1

    def test_maxima(self):
        s = SlotSeries(horizon=100.0, width=10.0)
        s.record(5.0, 2.0)
        s.record(6.0, 9.0)
        assert s.maxima()[0] == 9.0

    def test_peak_and_overall_mean(self):
        s = SlotSeries(horizon=100.0, width=10.0)
        s.record(5.0, 2.0)
        s.record(15.0, 8.0)
        assert s.peak_mean() == pytest.approx(8.0)
        assert s.overall_mean() == pytest.approx(5.0)

    def test_empty_series(self):
        s = SlotSeries(horizon=100.0, width=10.0)
        assert s.peak_mean() == 0.0
        assert s.overall_mean() == 0.0
        assert not np.any(s.means())

    def test_merge(self):
        a = SlotSeries(horizon=100.0, width=10.0)
        b = SlotSeries(horizon=100.0, width=10.0)
        a.record(5.0, 2.0)
        b.record(5.0, 4.0)
        a.merge(b)
        assert a.means()[0] == pytest.approx(3.0)
        assert a.counts()[0] == 2

    def test_merge_geometry_mismatch(self):
        a = SlotSeries(horizon=100.0, width=10.0)
        b = SlotSeries(horizon=100.0, width=20.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SlotSeries(horizon=0, width=10)
        with pytest.raises(ValueError):
            SlotSeries(horizon=10, width=0)

    @given(st.lists(st.tuples(st.floats(0, 86_399), st.floats(0, 1e3)),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_overall_mean_matches_numpy(self, observations):
        s = SlotSeries()
        for t, v in observations:
            s.record(t, v)
        values = [v for _, v in observations]
        assert s.overall_mean() == pytest.approx(np.mean(values), rel=1e-9)
        assert int(s.counts().sum()) == len(observations)


class TestSummaryStats:
    def test_streaming_aggregates(self):
        st_ = SummaryStats()
        for v in (1.0, 2.0, 3.0, 10.0):
            st_.record(v)
        assert st_.count == 4
        assert st_.mean == pytest.approx(4.0)
        assert st_.maximum == 10.0
        assert st_.std == pytest.approx(np.std([1, 2, 3, 10]), rel=1e-9)

    def test_empty(self):
        st_ = SummaryStats()
        assert st_.mean == 0.0
        assert st_.variance == 0.0

    def test_single_value(self):
        st_ = SummaryStats()
        st_.record(5.0)
        assert st_.variance == 0.0
