"""Tests for the single-server work queue (the proxy front-end)."""

import pytest

from repro.des import QueuedItem, WorkQueue


def served_list(queue, now=float("inf")):
    out = []
    queue.advance(now, lambda item, start: out.append((item, start)))
    return out


class TestFifoService:
    def test_serves_in_order_with_waits(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=2.0))
        q.push(QueuedItem(arrival=0.5, service=1.0))
        served = served_list(q)
        # item0 starts at 0 (wait 0); item1 starts when server frees at 2.
        assert served[0][1] == 0.0
        assert served[1][1] == 2.0

    def test_idle_gap_resets_start(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=1.0))
        q.push(QueuedItem(arrival=10.0, service=1.0))
        served = served_list(q)
        assert served[1][1] == 10.0  # no queueing after an idle gap

    def test_advance_respects_now(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=1.0))
        q.push(QueuedItem(arrival=5.0, service=1.0))
        assert len(served_list(q, now=2.0)) == 1
        assert q.queue_length() == 1

    def test_rate_scales_service(self):
        q = WorkQueue(rate=2.0)  # Figure 7's "more processing power"
        q.push(QueuedItem(arrival=0.0, service=4.0))
        q.push(QueuedItem(arrival=0.0, service=1.0))
        served = served_list(q)
        assert served[1][1] == pytest.approx(2.0)  # 4s of work at rate 2

    def test_ready_defers_start(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=1.0, ready=3.0))
        served = served_list(q)
        assert served[0][1] == 3.0  # start waits for transfer completion

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            WorkQueue(rate=0.0)


class TestBacklog:
    def test_backlog_tracks_queued_work(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=2.0))
        q.push(QueuedItem(arrival=0.0, service=3.0))
        assert q.backlog == pytest.approx(5.0)
        served_list(q, now=0.0)  # first item starts immediately
        assert q.backlog == pytest.approx(3.0)

    def test_drain_empties_queue(self):
        q = WorkQueue()
        for i in range(5):
            q.push(QueuedItem(arrival=float(i), service=1.0))
        out = []
        q.drain(lambda item, start: out.append(item))
        assert len(out) == 5
        assert q.backlog == pytest.approx(0.0)
        assert q.served == 5


class TestPopTail:
    def fill(self, n=4, service=1.0):
        q = WorkQueue()
        for i in range(n):
            q.push(QueuedItem(arrival=float(i), service=service))
        return q

    def test_pops_newest_first_returns_oldest_first(self):
        q = self.fill(4)
        moved = q.pop_tail(2.0)
        assert [m.arrival for m in moved] == [2.0, 3.0]
        assert q.queue_length() == 2
        assert q.backlog == pytest.approx(2.0)

    def test_respects_work_budget(self):
        q = self.fill(3, service=2.0)
        moved = q.pop_tail(3.0)  # only one 2s item fits
        assert len(moved) == 1

    def test_zero_budget(self):
        q = self.fill(3)
        assert q.pop_tail(0.0) == []
        assert q.queue_length() == 3

    def test_max_hops_filters(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=1.0))
        hot = QueuedItem(arrival=1.0, service=1.0, hops=1)
        q.push(hot)
        q.push(QueuedItem(arrival=2.0, service=1.0))
        moved = q.pop_tail(10.0, max_hops=1)
        # the already-redirected item stays; the others move
        assert [m.arrival for m in moved] == [0.0, 2.0]
        assert q.queue_length() == 1
        assert q.backlog == pytest.approx(1.0)

    def test_skipped_items_keep_order(self):
        q = WorkQueue()
        a = QueuedItem(arrival=0.0, service=1.0, hops=1)
        b = QueuedItem(arrival=1.0, service=1.0, hops=1)
        q.push(a)
        q.push(b)
        q.push(QueuedItem(arrival=2.0, service=1.0))
        q.pop_tail(10.0, max_hops=1)
        served = served_list(q)
        assert [s[0] for s in served] == [a, b]

    def test_unlimited_hops(self):
        q = WorkQueue()
        q.push(QueuedItem(arrival=0.0, service=1.0, hops=5))
        assert len(q.pop_tail(10.0, max_hops=None)) == 1
