"""Tests for the discrete-event engine."""

import pytest

from repro.des import Engine
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule_at(5.0, lambda: fired.append("b"))
        eng.schedule_at(1.0, lambda: fired.append("a"))
        eng.schedule_at(9.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.schedule_at(3.0, lambda t=tag: fired.append(t))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(4.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [4.5]
        assert eng.now == 4.5

    def test_relative_delay(self):
        eng = Engine(start=10.0)
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        eng = Engine(start=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        eng = Engine()
        fired = []

        def chain(k):
            fired.append(eng.now)
            if k > 0:
                eng.schedule(1.0, lambda: chain(k - 1))

        eng.schedule_at(0.0, lambda: chain(3))
        eng.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule_at(1.0, lambda: fired.append(1))
        eng.schedule_at(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        assert fired == [1]
        assert eng.now == 3.0  # clock advanced to the horizon
        eng.run()
        assert fired == [1, 5]

    def test_max_events(self):
        eng = Engine()
        fired = []
        for i in range(5):
            eng.schedule_at(float(i), lambda i=i: fired.append(i))
        eng.run(max_events=2)
        assert fired == [0, 1]

    def test_cancelled_events_skipped(self):
        eng = Engine()
        fired = []
        ev = eng.schedule_at(1.0, lambda: fired.append("x"))
        eng.schedule_at(2.0, lambda: fired.append("y"))
        ev.cancel()
        eng.run()
        assert fired == ["y"]

    def test_not_reentrant(self):
        eng = Engine()

        def reenter():
            eng.run()

        eng.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            eng.run()

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 4


class TestCancelledEvents:
    """A cancelled Event stays on the heap but must not fire, and is
    counted distinctly from fired events."""

    def test_cancelled_event_stays_on_heap(self):
        eng = Engine()
        ev = eng.schedule_at(1.0, lambda: None)
        ev.cancel()
        assert eng.pending == 1  # still heap-resident until popped

    def test_cancelled_event_does_not_fire_or_advance_clock(self):
        eng = Engine()
        fired = []
        ev = eng.schedule_at(5.0, lambda: fired.append("cancelled"))
        eng.schedule_at(2.0, lambda: fired.append("kept"))
        ev.cancel()
        eng.run()
        assert fired == ["kept"]
        assert eng.now == 2.0  # the clock never advanced to the cancelled time

    def test_cancelled_counted_distinctly_from_fired(self):
        eng = Engine()
        events = [eng.schedule_at(float(i), lambda: None) for i in range(6)]
        for ev in events[::2]:
            ev.cancel()
        eng.run()
        assert eng.events_processed == 3
        assert eng.events_cancelled == 3

    def test_cancel_after_partial_run(self):
        eng = Engine()
        fired = []
        eng.schedule_at(1.0, lambda: fired.append(1))
        later = eng.schedule_at(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        later.cancel()
        eng.run()
        assert fired == [1]
        assert eng.events_processed == 1
        assert eng.events_cancelled == 1

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule_at(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        eng.run()
        assert eng.events_cancelled == 1

    def test_cancelled_beyond_until_not_counted_yet(self):
        eng = Engine()
        ev = eng.schedule_at(10.0, lambda: None)
        ev.cancel()
        eng.run(until=5.0)
        # Still on the heap: never popped, so counted in neither bucket.
        assert eng.pending == 1
        assert eng.events_cancelled == 0
        eng.run()
        assert eng.pending == 0
        assert eng.events_cancelled == 1
