"""Tests for the discrete-event engine."""

import pytest

from repro.des import Engine
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule_at(5.0, lambda: fired.append("b"))
        eng.schedule_at(1.0, lambda: fired.append("a"))
        eng.schedule_at(9.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.schedule_at(3.0, lambda t=tag: fired.append(t))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(4.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [4.5]
        assert eng.now == 4.5

    def test_relative_delay(self):
        eng = Engine(start=10.0)
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        eng = Engine(start=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        eng = Engine()
        fired = []

        def chain(k):
            fired.append(eng.now)
            if k > 0:
                eng.schedule(1.0, lambda: chain(k - 1))

        eng.schedule_at(0.0, lambda: chain(3))
        eng.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule_at(1.0, lambda: fired.append(1))
        eng.schedule_at(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        assert fired == [1]
        assert eng.now == 3.0  # clock advanced to the horizon
        eng.run()
        assert fired == [1, 5]

    def test_max_events(self):
        eng = Engine()
        fired = []
        for i in range(5):
            eng.schedule_at(float(i), lambda i=i: fired.append(i))
        eng.run(max_events=2)
        assert fired == [0, 1]

    def test_cancelled_events_skipped(self):
        eng = Engine()
        fired = []
        ev = eng.schedule_at(1.0, lambda: fired.append("x"))
        eng.schedule_at(2.0, lambda: fired.append("y"))
        ev.cancel()
        eng.run()
        assert fired == ["y"]

    def test_not_reentrant(self):
        eng = Engine()

        def reenter():
            eng.run()

        eng.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            eng.run()

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 4
