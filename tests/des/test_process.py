"""Tests for generator-based DES processes."""

import pytest

from repro.des import Engine
from repro.des.process import Process, Waiter, spawn
from repro.errors import SimulationError


class TestBasicProcesses:
    def test_delays_advance_clock(self):
        eng = Engine()
        trace = []

        def proc():
            trace.append(eng.now)
            yield 2.0
            trace.append(eng.now)
            yield 3.5
            trace.append(eng.now)

        spawn(eng, proc())
        eng.run()
        assert trace == [0.0, 2.0, 5.5]

    def test_spawn_delay(self):
        eng = Engine()
        seen = []

        def proc():
            seen.append(eng.now)
            yield 1.0

        spawn(eng, proc(), delay=4.0)
        eng.run()
        assert seen == [4.0]

    def test_return_value_captured(self):
        eng = Engine()

        def proc():
            yield 1.0
            return 42

        p = spawn(eng, proc())
        eng.run()
        assert p.finished
        assert p.result == 42

    def test_interleaving(self):
        eng = Engine()
        order = []

        def proc(name, step):
            for _ in range(3):
                yield step
                order.append((name, eng.now))

        spawn(eng, proc("fast", 1.0))
        spawn(eng, proc("slow", 2.5))
        eng.run()
        assert order == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]

    def test_bad_yield_type(self):
        eng = Engine()

        def proc():
            yield "soon"

        spawn(eng, proc())
        with pytest.raises(SimulationError, match="expected a"):
            eng.run()


class TestWaiters:
    def test_signal_wakes_waiter(self):
        eng = Engine()
        gate = Waiter(eng)
        log = []

        def consumer():
            value = yield gate
            log.append((eng.now, value))

        def producer():
            yield 5.0
            gate.fire("ready")

        spawn(eng, consumer())
        spawn(eng, producer())
        eng.run()
        assert log == [(5.0, "ready")]

    def test_fire_is_idempotent(self):
        eng = Engine()
        gate = Waiter(eng)
        log = []

        def consumer():
            value = yield gate
            log.append(value)

        spawn(eng, consumer())
        eng.schedule(1.0, lambda: gate.fire(1))
        eng.schedule(2.0, lambda: gate.fire(2))
        eng.run()
        assert log == [1]

    def test_wait_on_already_fired(self):
        eng = Engine()
        gate = Waiter(eng)
        gate.fire("early")
        log = []

        def consumer():
            value = yield gate
            log.append((eng.now, value))

        spawn(eng, consumer(), delay=3.0)
        eng.run()
        assert log == [(3.0, "early")]

    def test_multiple_waiters_all_wake(self):
        eng = Engine()
        gate = Waiter(eng)
        woke = []

        def consumer(tag):
            yield gate
            woke.append(tag)

        for tag in "abc":
            spawn(eng, consumer(tag))
        eng.schedule(1.0, lambda: gate.fire())
        eng.run()
        assert sorted(woke) == ["a", "b", "c"]


class TestProcessQueueIntegration:
    def test_producer_consumer_through_workqueue(self):
        """A process feeding the WorkQueue used by the proxy simulator."""
        from repro.des import QueuedItem, WorkQueue

        eng = Engine()
        queue = WorkQueue()
        served = []

        def producer():
            for i in range(3):
                queue.push(QueuedItem(arrival=eng.now, service=1.0))
                yield 0.5

        def server_poll():
            while True:
                queue.advance(eng.now, lambda item, start: served.append(start))
                if queue.served == 3:
                    return
                yield 0.25

        spawn(eng, producer())
        spawn(eng, server_poll())
        eng.run(until=100.0)
        assert served == [0.0, 1.0, 2.0]
