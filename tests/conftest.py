"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agreements import (
    complete_structure,
    distance_decay_structure,
    loop_structure,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def complete10():
    """The case study's main structure: 10 ISPs, complete, 10% each."""
    return complete_structure(10, share=0.1, capacity=1.0)


@pytest.fixture
def loop10():
    """Figure 9's structure: 10 ISPs in a loop, 80% with the next."""
    return loop_structure(10, share=0.8, skip=1, capacity=1.0)


@pytest.fixture
def decay10():
    """Figure 13's distance-decay structure."""
    return distance_decay_structure(10)


def random_agreement_matrix(rng, n, max_row_sum=0.9):
    """A random valid relative agreement matrix."""
    S = rng.random((n, n))
    np.fill_diagonal(S, 0.0)
    row_sums = S.sum(axis=1)
    scale = np.where(row_sums > 0, max_row_sum * rng.random(n) / np.maximum(row_sums, 1e-12), 0.0)
    return S * scale[:, None]
