"""Tests for ResourceVector and CoupledResource."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.units import ZERO, CoupledResource, ResourceVector


class TestConstruction:
    def test_kwargs_and_mapping(self):
        a = ResourceVector(cpu=2.0, disk=10.0)
        b = ResourceVector({"cpu": 2.0, "disk": 10.0})
        assert a == b

    def test_missing_entries_zero(self):
        v = ResourceVector(cpu=1.0)
        assert v["disk"] == 0.0
        assert "disk" not in v

    def test_zeros_dropped(self):
        v = ResourceVector(cpu=0.0, disk=1.0)
        assert len(v) == 1
        assert v == ResourceVector(disk=1.0)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ResourceVector(cpu=-1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ReproError):
            ResourceVector(cpu=math.nan)
        with pytest.raises(ReproError):
            ResourceVector(cpu=math.inf)


class TestArithmetic:
    def test_addition_unions_types(self):
        v = ResourceVector(cpu=2.0) + ResourceVector(cpu=1.0, disk=5.0)
        assert v["cpu"] == 3.0 and v["disk"] == 5.0

    def test_subtraction_clamps_at_zero(self):
        v = ResourceVector(cpu=1.0) - ResourceVector(cpu=5.0)
        assert v["cpu"] == 0.0

    def test_scaling(self):
        v = 2 * ResourceVector(cpu=3.0)
        assert v["cpu"] == 6.0
        with pytest.raises(ReproError):
            ResourceVector(cpu=1.0) * -2

    def test_total(self):
        assert ResourceVector(cpu=2.0, disk=3.0).total == 5.0
        assert ZERO.total == 0.0


class TestComparison:
    def test_dominates(self):
        big = ResourceVector(cpu=2.0, disk=10.0)
        small = ResourceVector(cpu=1.0)
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.dominates(big)

    def test_is_zero(self):
        assert ZERO.is_zero()
        assert not ResourceVector(cpu=0.1).is_zero()

    def test_hashable(self):
        assert hash(ResourceVector(cpu=1.0)) == hash(ResourceVector(cpu=1.0))

    def test_scaled_to_fit(self):
        need = ResourceVector(cpu=4.0, mem=8.0)
        budget = ResourceVector(cpu=2.0, mem=100.0)
        assert need.scaled_to_fit(budget) == pytest.approx(0.5)
        assert need.scaled_to_fit(need) == pytest.approx(1.0)

    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.floats(0, 1e6), max_size=3),
           st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.floats(0, 1e6), max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_add_then_subtract_dominates_original(self, d1, d2):
        """(x + y) - y >= x componentwise (subtraction clamps)."""
        x, y = ResourceVector(d1), ResourceVector(d2)
        assert ((x + y) - y).dominates(x, tol=1e-6)


class TestCoupledResource:
    def test_requires_nonempty_ratio(self):
        with pytest.raises(ReproError):
            CoupledResource("x", ResourceVector())

    def test_units_from_bottleneck(self):
        slot = CoupledResource("slot", ResourceVector(cpu=2.0, mem=4.0))
        assert slot.units_from(ResourceVector(cpu=4.0, mem=100.0)) == 2.0
        assert slot.units_from(ResourceVector(cpu=100.0)) == 0.0

    def test_expand_roundtrip(self):
        slot = CoupledResource("slot", ResourceVector(cpu=2.0, mem=4.0))
        foot = slot.expand(3.0)
        assert slot.units_from(foot) == pytest.approx(3.0)
