"""Sanity tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_single_root(self):
        leaf_classes = [
            errors.UnknownCurrencyError,
            errors.CurrencyCycleError,
            errors.OversharingError,
            errors.InsufficientResourcesError,
            errors.LPInfeasibleError,
            errors.UnknownPrincipalError,
            errors.SimulationError,
            errors.WorkloadError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.ReproError), cls

    def test_keyerror_compat(self):
        """Lookup errors double as KeyError so dict-style callers work."""
        assert issubclass(errors.UnknownCurrencyError, KeyError)
        assert issubclass(errors.UnknownTicketError, KeyError)
        assert issubclass(errors.UnknownPrincipalError, KeyError)

    def test_valueerror_compat(self):
        assert issubclass(errors.InvalidAgreementMatrixError, ValueError)
        assert issubclass(errors.DuplicateNameError, ValueError)

    def test_oversharing_is_invalid_matrix(self):
        assert issubclass(errors.OversharingError, errors.InvalidAgreementMatrixError)

    def test_insufficient_resources_payload(self):
        exc = errors.InsufficientResourcesError("p", 5.0, 2.0)
        assert exc.principal == "p"
        assert exc.requested == 5.0
        assert exc.available == 2.0
        assert "5" in str(exc) and "2" in str(exc)

    def test_all_exports_exist(self):
        for name in errors.__all__:
            assert hasattr(errors, name), name

    def test_catch_all_with_root(self):
        with pytest.raises(errors.ReproError):
            raise errors.LPUnboundedError("x")
