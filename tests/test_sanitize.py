"""The runtime invariant sanitizer (REPRO_SANITIZE=1).

Each test injects a fault the type system cannot see — a ticket value
tampered behind the bank's back, a forged donor split, a broken clamp —
and asserts the sanitizer epilogues catch it as an
:class:`~repro.errors.InvariantViolation` carrying the in-flight
decision context.
"""

from types import SimpleNamespace

import numpy as np
import pytest

import repro.manager.grm as grm_module
import repro.obs as obs
from repro import sanitize
from repro.agreements import AgreementSystem
from repro.allocation import Allocation, AllocationRequest
from repro.economy import Bank
from repro.errors import InvariantViolation
from repro.manager import (
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
)
from repro.units import ResourceVector


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test, restoring the ambient state
    (the suite also runs with REPRO_SANITIZE=1 globally in CI)."""
    prev = sanitize.enabled()
    sanitize.enable()
    yield
    if not prev:
        sanitize.disable()


@pytest.fixture
def observed():
    obs.enable()
    yield
    obs.disable()


def build_cluster(n=4, capacity=10.0, share=0.2):
    transport = InProcessTransport()
    bank = Bank()
    grm = GlobalResourceManager("grm", bank)
    grm.attach(transport)
    for i in range(n):
        p = f"isp{i}"
        grm.register_principal(p, ResourceVector(general=capacity))
        lrm = LocalResourceManager(p, ResourceVector(general=capacity))
        lrm.attach(transport)
        lrm.report()
    for i in range(n):
        for j in range(n):
            if i != j:
                bank.issue_relative_ticket(f"isp{i}", f"isp{j}", share * 100)
    return transport, grm, bank


def request(principal="isp0", amount=2.0):
    return AllocationRequestMsg(sender=principal, principal=principal, amount=amount)


class TestGates:
    def test_disabled_hooks_are_noops(self):
        prev = sanitize.enabled()
        sanitize.disable()
        try:
            # A split that conserves nothing passes silently when off.
            sanitize_state = sanitize.enabled()
            assert not sanitize_state
            transport, grm, bank = build_cluster()
            tampered = bank.tickets[0]
            tampered.face_value = tampered.face_value * 7
            reply = transport.send("grm", request())
            assert reply.takes
        finally:
            if prev:
                sanitize.enable()

    def test_enable_disable_round_trip(self):
        prev = sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()
        if prev:
            sanitize.enable()


class TestBankInvariants:
    def test_version_monotonic(self, sanitized):
        bank = Bank()
        bank.create_currency("a")
        with pytest.raises(InvariantViolation, match="did not advance"):
            sanitize.bank_mutated(bank, bank.version)

    def test_tampered_ticket_value_caught(self, sanitized):
        transport, grm, bank = build_cluster()
        # First allocation snapshots the valuation at this bank version.
        transport.send("grm", request(amount=1.0))
        # Tamper a ticket directly: no mutator, no version bump.
        ticket = bank.tickets[0]
        ticket.face_value = ticket.face_value * 7
        with pytest.raises(InvariantViolation) as exc_info:
            transport.send("grm", request(amount=1.0))
        assert exc_info.value.invariant == "bank-value-conservation"

    def test_bumped_mutation_is_fine(self, sanitized):
        transport, grm, bank = build_cluster()
        transport.send("grm", request(amount=1.0))
        # The same magnitude of change *through* the bank API is legal.
        bank.inflate_currency("isp1", 2.0)
        reply = transport.send("grm", request(amount=1.0))
        assert reply.takes


class TestGrantInvariants:
    def _forged_allocation(self, system, principal, amount):
        n = system.n
        take = np.zeros(n)
        take[system.index(principal)] = amount / 2  # claims amount, takes half
        return Allocation(
            request=AllocationRequest(principal, amount, None),
            take=take,
            theta=0.0,
            satisfied=float(amount),
            new_V=np.maximum(system.V - take, 0.0),
            new_C=np.asarray(system.capacities(), dtype=float),
            scheme="lp",
            principals=list(system.principals),
        )

    def test_forged_donor_split_caught(self, sanitized, monkeypatch):
        transport, grm, bank = build_cluster()

        def forged(system, principal, amount, **kwargs):
            return self._forged_allocation(system, principal, float(amount))

        monkeypatch.setattr(grm_module, "allocate_lp", forged)
        with pytest.raises(InvariantViolation) as exc_info:
            transport.send("grm", request(amount=4.0))
        assert exc_info.value.invariant == "donor-split-conservation"

    def test_violation_carries_decision_context(
        self, sanitized, observed, monkeypatch
    ):
        transport, grm, bank = build_cluster()

        def forged(system, principal, amount, **kwargs):
            return self._forged_allocation(system, principal, float(amount))

        monkeypatch.setattr(grm_module, "allocate_lp", forged)
        with pytest.raises(InvariantViolation) as exc_info:
            transport.send("grm", request(principal="isp2", amount=4.0))
        decision = exc_info.value.decision
        assert decision is not None
        assert decision.requestor == "isp2"
        assert decision.amount == pytest.approx(4.0)
        assert decision.grm == "grm"
        assert "request_id" in str(exc_info.value)


class TestAllocationInvariants:
    def test_capacity_monotone_violation(self, sanitized):
        allocation = SimpleNamespace(
            take=np.array([1.0, 0.0]),
            satisfied=1.0,
            theta=0.0,
            new_C=np.array([5.0, 9.0]),
            scheme="test",
        )
        with pytest.raises(InvariantViolation, match="C' > C"):
            sanitize.check_allocation(np.array([5.0, 3.0]), allocation)

    def test_take_conservation_violation(self, sanitized):
        allocation = SimpleNamespace(
            take=np.array([1.0, 0.5]),
            satisfied=3.0,
            theta=0.0,
            new_C=None,
            scheme="test",
        )
        with pytest.raises(InvariantViolation, match="satisfied"):
            sanitize.check_allocation(None, allocation)

    def test_negative_theta_violation(self, sanitized):
        allocation = SimpleNamespace(
            take=np.array([1.0]),
            satisfied=1.0,
            theta=-0.5,
            new_C=None,
            scheme="test",
        )
        with pytest.raises(InvariantViolation, match="theta"):
            sanitize.check_allocation(None, allocation)

    def test_honest_lp_allocation_passes(self, sanitized):
        system = AgreementSystem(
            ["a", "b"], np.array([10.0, 10.0]), np.array([[0.0, 0.4], [0.4, 0.0]])
        )
        from repro.allocation import allocate_lp

        allocation = allocate_lp(system, "a", 12.0)
        assert allocation.satisfied == pytest.approx(12.0)


class TestCoefficientInvariants:
    def test_overdraft_clamp_bounds(self, sanitized):
        T = np.array([[0.0, 1.5], [0.2, 0.0]])
        with pytest.raises(InvariantViolation, match="K"):
            sanitize.check_coefficients(T, allow_overdraft=True)
        # Without overdraft semantics no [0, 1] bound applies.
        sanitize.check_coefficients(T, allow_overdraft=False)

    def test_negative_coefficient(self, sanitized):
        T = np.array([[0.0, -0.3], [0.2, 0.0]])
        with pytest.raises(InvariantViolation, match="negative"):
            sanitize.check_coefficients(T, allow_overdraft=False)

    def test_real_overdraft_topology_passes(self, sanitized):
        system = AgreementSystem(
            ["a", "b", "c"],
            np.array([10.0, 10.0, 10.0]),
            np.array([[0.0, 0.9, 0.9], [0.3, 0.0, 0.0], [0.0, 0.0, 0.0]]),
            allow_overdraft=True,
        )
        K = system.coefficients()
        assert float(K.max()) <= 1.0 + 1e-9


class TestFrozenCaches:
    def test_view_cache_arrays_are_read_only(self):
        system = AgreementSystem(
            ["a", "b"], np.array([10.0, 10.0]), np.array([[0.0, 0.4], [0.4, 0.0]])
        )
        view = system.view
        with pytest.raises(ValueError):
            view.capacities(1)[0] = 0.0
        with pytest.raises(ValueError):
            view.u(1)[0, 0] = 1.0
        with pytest.raises(ValueError):
            view.coefficients(1)[0, 0] = 1.0

    def test_facade_copy_on_read_is_writable_and_private(self):
        system = AgreementSystem(
            ["a", "b"], np.array([10.0, 10.0]), np.array([[0.0, 0.4], [0.4, 0.0]])
        )
        C = system.capacities(1)
        C[0] = 0.0  # a private copy: legal, and does not poison the cache
        assert system.capacities(1)[0] == pytest.approx(14.0)
        U = system.u(1)
        U.fill(0.0)
        assert float(system.u(1).max()) > 0.0

    def test_bank_base_capacities_read_only(self):
        bank = Bank()
        bank.create_currency("a")
        bank.deposit_capacity("a", 5.0)
        V = bank.base_capacities()
        with pytest.raises(ValueError):
            V[0] = 99.0
