"""Fixture tests: each reprolint rule fires, and its suppression holds.

Every rule gets three paths: a positive fixture that must produce the
finding, the same fixture with a ``# reprolint: disable=Rn`` comment
(silent), and a negative fixture exercising the idiom the rule must
*not* flag.
"""

import textwrap

from repro.lint import run_lint


def lint_source(tmp_path, source, name="mod.py", select=None):
    f = tmp_path / name
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    return run_lint([tmp_path], root=tmp_path, select=select)


def rules_of(findings):
    return [f.rule for f in findings]


class TestR1VersionBump:
    POSITIVE = """
        class Registry:
            def __init__(self):
                self._items = []
                self._version = 0

            def _bump_version(self):
                self._version += 1

            def add(self, item):
                self._items.append(item)
        """

    def test_fires_on_unbumped_mutation(self, tmp_path):
        findings = lint_source(tmp_path, self.POSITIVE, select={"R1"})
        assert rules_of(findings) == ["R1"]
        assert "add" in findings[0].message

    def test_bumping_method_is_clean(self, tmp_path):
        src = """
            class Registry:
                def __init__(self):
                    self._items = []
                    self._version = 0

                def _bump_version(self):
                    self._version += 1

                def add(self, item):
                    self._items.append(item)
                    self._bump_version()
            """
        assert lint_source(tmp_path, src, select={"R1"}) == []

    def test_private_and_cache_writes_exempt(self, tmp_path):
        src = """
            class Registry:
                def __init__(self):
                    self._cache = {}
                    self._version = 0

                def _bump_version(self):
                    self._version += 1

                def lookup(self, key):
                    self._cache[key] = key * 2
                    return self._cache[key]

                def _internal(self, item):
                    self._cache.clear()
            """
        assert lint_source(tmp_path, src, select={"R1"}) == []

    def test_suppression(self, tmp_path):
        src = self.POSITIVE.replace(
            "self._items.append(item)",
            "self._items.append(item)  # reprolint: disable=R1",
        )
        assert lint_source(tmp_path, src, select={"R1"}) == []

    def test_unversioned_class_ignored(self, tmp_path):
        src = """
            class Bag:
                def __init__(self):
                    self._items = []

                def add(self, item):
                    self._items.append(item)
            """
        assert lint_source(tmp_path, src, select={"R1"}) == []


class TestR2ProtocolExhaustiveness:
    MESSAGES = """
        class Message:
            pass

        class PingMsg(Message):
            pass

        class OrphanMsg(Message):
            pass
        """
    HANDLER = """
        from .messages import Message, PingMsg

        class Manager:
            def handle(self, message):
                if isinstance(message, PingMsg):
                    return None
                return None
        """

    def _write(self, tmp_path, messages, handler):
        pkg = tmp_path / "manager"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "messages.py").write_text(textwrap.dedent(messages))
        (pkg / "grm.py").write_text(textwrap.dedent(handler))

    def test_unhandled_message_fires(self, tmp_path):
        self._write(tmp_path, self.MESSAGES, self.HANDLER)
        findings = run_lint([tmp_path], root=tmp_path, select={"R2"})
        assert rules_of(findings) == ["R2"]
        assert "OrphanMsg" in findings[0].message

    def test_constructed_reply_counts_as_covered(self, tmp_path):
        handler = self.HANDLER.replace(
            "return None\n",
            "return OrphanMsg()\n",
            1,
        ).replace("import Message, PingMsg", "import Message, OrphanMsg, PingMsg")
        self._write(tmp_path, self.MESSAGES, handler)
        assert run_lint([tmp_path], root=tmp_path, select={"R2"}) == []

    def test_suppression(self, tmp_path):
        messages = self.MESSAGES.replace(
            "class OrphanMsg(Message):",
            "class OrphanMsg(Message):  # reprolint: disable=R2",
        )
        self._write(tmp_path, messages, self.HANDLER)
        assert run_lint([tmp_path], root=tmp_path, select={"R2"}) == []


class TestR3SimTimePurity:
    def test_wall_clock_fires(self, tmp_path):
        src = """
            import time

            def stamp():
                return time.time()
            """
        findings = lint_source(tmp_path, src, select={"R3"})
        assert rules_of(findings) == ["R3"]

    def test_unseeded_rng_fires(self, tmp_path):
        src = """
            import numpy as np

            def rng():
                return np.random.default_rng()
            """
        findings = lint_source(tmp_path, src, select={"R3"})
        assert rules_of(findings) == ["R3"]

    def test_seeded_rng_and_perf_counter_clean(self, tmp_path):
        src = """
            import time

            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)

            def tick():
                return time.perf_counter()
            """
        assert lint_source(tmp_path, src, select={"R3"}) == []

    def test_suppression(self, tmp_path):
        src = """
            import time

            def stamp():
                return time.time()  # reprolint: disable=R3
            """
        assert lint_source(tmp_path, src, select={"R3"}) == []


class TestR4FloatEquality:
    def test_domain_name_fires(self, tmp_path):
        src = """
            def is_unperturbed(theta):
                return theta == 0.0
            """
        findings = lint_source(tmp_path, src, select={"R4"})
        assert rules_of(findings) == ["R4"]

    def test_float_literal_fires(self, tmp_path):
        src = """
            def check(x):
                return x == 1.5
            """
        findings = lint_source(tmp_path, src, select={"R4"})
        assert rules_of(findings) == ["R4"]

    def test_sparsity_idiom_clean(self, tmp_path):
        src = """
            def has_edge(S, i, j):
                return S[i, j] != 0.0
            """
        assert lint_source(tmp_path, src, select={"R4"}) == []

    def test_suppression(self, tmp_path):
        src = """
            def is_unperturbed(theta):
                return theta == 0.0  # reprolint: disable=R4
            """
        assert lint_source(tmp_path, src, select={"R4"}) == []


class TestR5CacheAliasing:
    def test_store_into_cached_array_fires(self, tmp_path):
        src = """
            def clobber(bank):
                C = bank.capacities(2)
                C[0] = 0.0
            """
        findings = lint_source(tmp_path, src, select={"R5"})
        assert rules_of(findings) == ["R5"]

    def test_inplace_method_fires(self, tmp_path):
        src = """
            def clobber(view):
                U = view.u(2)
                U.fill(0.0)
            """
        findings = lint_source(tmp_path, src, select={"R5"})
        assert rules_of(findings) == ["R5"]

    def test_copy_launders(self, tmp_path):
        src = """
            def tweak(bank):
                C = bank.capacities(2).copy()
                C[0] = 0.0
                return C
            """
        assert lint_source(tmp_path, src, select={"R5"}) == []

    def test_suppression(self, tmp_path):
        src = """
            def clobber(bank):
                C = bank.capacities(2)
                C[0] = 0.0  # reprolint: disable=R5
            """
        assert lint_source(tmp_path, src, select={"R5"}) == []


class TestEngine:
    def test_syntax_error_reported_not_suppressed(self, tmp_path):
        src = "def broken(:  # reprolint: disable\n"
        (tmp_path / "bad.py").write_text(src)
        findings = run_lint([tmp_path], root=tmp_path)
        assert rules_of(findings) == ["E0"]

    def test_bare_disable_silences_all_rules(self, tmp_path):
        src = """
            import time

            def stamp(theta):
                return time.time() if theta == 0.0 else 0.0  # reprolint: disable
            """
        assert lint_source(tmp_path, src) == []

    def test_select_filters_rules(self, tmp_path):
        src = """
            import time

            def stamp(theta):
                return time.time() if theta == 0.0 else 0.0
            """
        assert rules_of(lint_source(tmp_path, src, select={"R3"})) == ["R3"]
        assert rules_of(lint_source(tmp_path, src, select={"R4"})) == ["R4"]
