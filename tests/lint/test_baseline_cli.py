"""Baseline round-trips, drift robustness, and the reprolint CLI."""

import json
import textwrap
from pathlib import Path

from repro.lint import Baseline, run_lint
from repro.lint.cli import main

REPO = Path(__file__).resolve().parents[2]

DIRTY = """
    def is_unperturbed(theta):
        return theta == 0.0
"""


def _write(tmp_path, source, name="mod.py"):
    f = tmp_path / name
    f.write_text(textwrap.dedent(source))
    return f


class TestBaseline:
    def test_round_trip_absorbs_findings(self, tmp_path):
        _write(tmp_path, DIRTY)
        findings = run_lint([tmp_path], root=tmp_path)
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        new, matched, stale = Baseline.load(path).filter(findings)
        assert new == []
        assert len(matched) == len(findings)
        assert stale == []

    def test_baseline_survives_line_drift(self, tmp_path):
        f = _write(tmp_path, DIRTY)
        baseline = Baseline.from_findings(run_lint([tmp_path], root=tmp_path))
        # Shift the offending line down; the fingerprint is line-number-free.
        f.write_text("\n\n# a new header comment\n" + f.read_text())
        new, matched, stale = baseline.filter(run_lint([tmp_path], root=tmp_path))
        assert new == []
        assert len(matched) == 1
        assert stale == []

    def test_stale_entries_surface(self, tmp_path):
        _write(tmp_path, DIRTY)
        baseline = Baseline.from_findings(run_lint([tmp_path], root=tmp_path))
        _write(tmp_path, "def fine():\n    return 1\n")
        new, matched, stale = baseline.filter(run_lint([tmp_path], root=tmp_path))
        assert new == []
        assert matched == []
        assert len(stale) == 1

    def test_new_finding_not_absorbed(self, tmp_path):
        f = _write(tmp_path, DIRTY)
        baseline = Baseline.from_findings(run_lint([tmp_path], root=tmp_path))
        f.write_text(
            f.read_text()
            + "\n\ndef second(capacity):\n    return capacity == 0.0\n"
        )
        new, matched, stale = baseline.filter(run_lint([tmp_path], root=tmp_path))
        assert len(new) == 1
        assert len(matched) == 1


class TestCli:
    def test_findings_exit_1(self, tmp_path, capsys):
        f = _write(tmp_path, DIRTY)
        code = main([str(f), "--root", str(tmp_path), "--no-baseline"])
        out = capsys.readouterr()
        assert code == 1
        assert "R4" in out.out

    def test_clean_exit_0(self, tmp_path):
        f = _write(tmp_path, "def fine():\n    return 1\n")
        assert main([str(f), "--root", str(tmp_path)]) == 0

    def test_write_then_lint_with_baseline(self, tmp_path, capsys):
        f = _write(tmp_path, DIRTY)
        assert main([str(f), "--root", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "reprolint-baseline.json").exists()
        assert main([str(f), "--root", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "baselined" in err

    def test_json_format(self, tmp_path, capsys):
        f = _write(tmp_path, DIRTY)
        code = main(
            [str(f), "--root", str(tmp_path), "--no-baseline", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "R4"

    def test_bad_path_exit_2(self, tmp_path):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5"):
            assert rule_id in out


class TestTreeClean:
    def test_src_tree_has_no_findings(self):
        """Acceptance: the shipped tree is reprolint-clean without baseline."""
        findings = run_lint([REPO / "src"], root=REPO)
        assert findings == [], [f.render() for f in findings]

    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO / "reprolint-baseline.json").read_text())
        assert data["entries"] == []
