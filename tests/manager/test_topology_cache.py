"""Version-keyed topology caching on the bank, observed end to end.

The contract under test: the GRM never re-flattens the funding graph
while agreements are unchanged (the version-keyed cache absorbs every
allocation), yet any bank mutation — issuing or revoking a ticket —
bumps :attr:`Bank.version`, invalidates the cached topology, and changes
the *next* grant.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.agreements import complete_structure
from repro.economy import Bank
from repro.manager import (
    AllocationGrant,
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
)
from repro.manager.messages import AllocationDenied
from repro.proxysim.manager_bridge import ManagerPolicy
from repro.units import ResourceVector


@pytest.fixture
def observer():
    ob = obs.enable()
    yield ob
    obs.disable()


def two_node_cluster(share=0.5):
    """a shares ``share`` with b; only a has capacity."""
    transport = InProcessTransport()
    bank = Bank()
    grm = GlobalResourceManager("grm", bank)
    grm.attach(transport)
    grm.register_principal("a", ResourceVector(general=10.0))
    grm.register_principal("b", ResourceVector(general=0.0))
    ticket = bank.issue_relative_ticket("a", "b", share * 100)
    grm.set_availability("a", 10.0)
    grm.set_availability("b", 0.0)
    return transport, bank, grm, ticket


def request_for_b(transport, amount=2.0):
    return transport.send(
        "grm",
        AllocationRequestMsg(sender="b", principal="b", amount=amount),
    )


class TestVersionCounter:
    def test_mutations_bump_version(self):
        bank = Bank()
        v = bank.version
        bank.create_currency("a", face_value=100.0)
        bank.create_currency("b", face_value=100.0)
        assert bank.version > v

        v = bank.version
        t = bank.issue_relative_ticket("a", "b", 50)
        assert bank.version == v + 1

        v = bank.version
        bank.revoke_ticket(t.ticket_id)
        assert bank.version == v + 1

        v = bank.version
        bank.inflate_currency("a", 2.0)
        assert bank.version == v + 1

    def test_reads_do_not_bump(self):
        bank = Bank()
        bank.create_currency("a", face_value=100.0)
        v = bank.version
        bank.topology()
        bank.capacity_view()
        bank.currency_values()
        assert bank.version == v


class TestTopologyCache:
    def test_same_version_same_object(self):
        bank = Bank()
        bank.create_currency("a", face_value=100.0)
        assert bank.topology() is bank.topology()

    def test_mutation_invalidates(self):
        bank = Bank()
        bank.create_currency("a", face_value=100.0)
        bank.create_currency("b", face_value=100.0)
        before = bank.topology()
        t = bank.issue_relative_ticket("a", "b", 30)
        after = bank.topology()
        assert after is not before
        assert after != before  # structurally: the share changed
        bank.revoke_ticket(t.ticket_id)
        assert bank.topology() == before  # back to no sharing

    def test_counters_track_hits_and_misses(self, observer):
        bank = Bank()
        bank.create_currency("a", face_value=100.0)
        bank.topology()
        bank.topology()
        bank.topology()
        reg = observer.registry
        assert reg.counter_total("topology.cache_miss") == 1
        assert reg.counter_total("topology.rebuilds") == 1
        assert reg.counter_total("topology.cache_hit") == 2


class TestRevocationChangesGrants:
    def test_revocation_denies_next_request(self):
        transport, bank, grm, ticket = two_node_cluster()
        granted = request_for_b(transport)
        assert isinstance(granted, AllocationGrant)
        assert granted.take_for("a") == pytest.approx(2.0)

        bank.revoke_ticket(ticket.ticket_id)
        denied = request_for_b(transport)
        assert isinstance(denied, AllocationDenied)

    def test_issuing_enables_next_request(self):
        transport = InProcessTransport()
        bank = Bank()
        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        grm.register_principal("a", ResourceVector(general=10.0))
        grm.register_principal("b", ResourceVector(general=0.0))
        grm.set_availability("a", 10.0)
        grm.set_availability("b", 0.0)
        assert isinstance(request_for_b(transport), AllocationDenied)
        bank.issue_relative_ticket("a", "b", 50)
        assert isinstance(request_for_b(transport), AllocationGrant)


class TestManagerPathCacheBehaviour:
    def test_zero_rebuilds_with_unchanged_agreements(self, observer):
        """A whole run of consultations costs exactly one topology build."""
        mp = ManagerPolicy(complete_structure(4, share=0.2))
        rng = np.random.default_rng(3)
        for _ in range(25):
            avail = rng.uniform(0.0, 100.0, size=4)
            req = int(rng.integers(0, 4))
            avail[req] = 0.0
            mp.plan(req, float(rng.uniform(1.0, 10.0)), avail)
        reg = observer.registry
        assert reg.counter_total("topology.rebuilds") == 1
        assert reg.counter_total("topology.cache_miss") == 1
        assert reg.counter_total("topology.cache_hit") >= 24

    def test_revocation_mid_run_changes_next_plan(self, observer):
        """Revoking every ticket mid-run starves remote placement."""
        mp = ManagerPolicy(complete_structure(3, share=0.2))
        avail = np.array([0.0, 50.0, 80.0])
        before = mp.plan(0, 10.0, avail.copy())
        assert before[1] + before[2] > 0  # remote placement happened

        for t in mp.bank.tickets:
            mp.bank.revoke_ticket(t.ticket_id)
        after = mp.plan(0, 10.0, avail.copy())
        assert after[0] == pytest.approx(10.0)  # everything stays local
        assert after[1] + after[2] == pytest.approx(0.0)
        # the mutation forced exactly one extra rebuild
        assert observer.registry.counter_total("topology.rebuilds") == 2
