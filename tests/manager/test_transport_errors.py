"""Error paths and accounting of :class:`InProcessTransport`.

The transport is the protocol boundary the whole manager layer leans on;
its failure messages must name what *is* registered (debugging a
misconfigured hierarchy from "unknown endpoint" alone is miserable), and
its per-endpoint accounting must stay consistent across push and pull
deliveries.
"""

import pytest

from repro.errors import ManagerError
from repro.manager.messages import AvailabilityReport
from repro.manager.transport import InProcessTransport


def _report(sender="p0"):
    return AvailabilityReport(sender=sender, resource_type="general",
                              available=1.0)


class TestUnknownEndpoint:
    def test_send_lists_known_endpoints(self):
        t = InProcessTransport()
        t.register("grm")
        t.register("lrm:p0")
        with pytest.raises(ManagerError) as exc:
            t.send("lrm:p9", _report())
        msg = str(exc.value)
        assert "lrm:p9" in msg
        assert "grm" in msg and "lrm:p0" in msg

    def test_send_with_nothing_registered(self):
        t = InProcessTransport()
        with pytest.raises(ManagerError, match="<none registered>"):
            t.send("grm", _report())

    def test_receive_and_pending_raise_too(self):
        t = InProcessTransport()
        t.register("grm")
        with pytest.raises(ManagerError, match="known endpoints: grm"):
            t.receive("nope")
        with pytest.raises(ManagerError, match="known endpoints: grm"):
            t.pending("nope")

    def test_duplicate_registration_rejected(self):
        t = InProcessTransport()
        t.register("grm")
        with pytest.raises(ManagerError, match="already registered"):
            t.register("grm")


class TestAccounting:
    def test_pending_tracks_mailbox_and_receive_drains_fifo(self):
        t = InProcessTransport()
        t.register("inbox")  # pull endpoint: no handler
        first, second = _report("p0"), _report("p1")
        t.send("inbox", first)
        t.send("inbox", second)
        assert t.pending("inbox") == 2
        assert t.receive("inbox").sender == "p0"
        assert t.pending("inbox") == 1
        assert t.receive("inbox").sender == "p1"
        assert t.pending("inbox") == 0
        assert t.receive("inbox") is None

    def test_per_endpoint_counts(self):
        t = InProcessTransport()
        t.register("push", handler=lambda m: None)
        t.register("pull")
        t.send("push", _report())
        t.send("pull", _report())
        t.send("pull", _report())
        t.receive("pull")
        assert t.delivered == 3
        assert t.sent_by_endpoint == {"push": 1, "pull": 2}
        # Push deliveries never pass through receive().
        assert t.received_by_endpoint == {"push": 0, "pull": 1}

    def test_empty_receive_not_counted(self):
        t = InProcessTransport()
        t.register("pull")
        assert t.receive("pull") is None
        assert t.received_by_endpoint["pull"] == 0

    def test_handler_reply_returned(self):
        t = InProcessTransport()
        reply = _report("answer")
        t.register("push", handler=lambda m: reply)
        assert t.send("push", _report()) is reply
