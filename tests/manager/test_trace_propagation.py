"""Acceptance: one allocation, one span tree, one explainable decision.

A ManagerPolicy consultation on the fig05 10-proxy structure crosses the
bridge, the transport, the GRM, the topology cache, and the LP solver.
With tracing enabled all of those spans must land in a *single* causal
tree rooted at the request — that is the point of carrying trace context
on messages — and the flight recorder must be able to reconstruct the
decision (donor split summing to the granted amount) afterwards.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.agreements import complete_structure
from repro.obs.events import read_trace
from repro.obs.trace_tools import breakdown, build_trees
from repro.proxysim.manager_bridge import ManagerPolicy


@pytest.fixture
def traced(tmp_path):
    path = tmp_path / "trace.jsonl"
    observer = obs.enable(trace_path=path)
    yield observer, path
    obs.disable()


def _plan_once(requester=0, excess=5.0):
    system = complete_structure(10, share=0.1)
    policy = ManagerPolicy(system)
    avail = np.full(10, 50.0)
    avail[requester] = 0.0
    take = policy.plan(requester, excess, avail)
    return policy, take


def test_allocation_forms_single_span_tree(traced):
    observer, path = traced
    _plan_once()
    obs.disable()

    trees = build_trees(read_trace(path))
    trees.pop("(untraced)", None)
    assert len(trees) == 1, f"expected one trace, got {list(trees)}"
    (roots,) = trees.values()
    assert len(roots) == 1, "all spans must hang off one root"
    root = roots[0]
    assert root.name == "manager.plan"

    names = [node.name for node in root.walk()]
    assert "transport.send" in names
    assert any(name.startswith("topology.") for name in names), names
    assert "lp.solve" in names

    # The transport hop is the request's parent edge: lp.solve sits
    # strictly below transport.send, not beside it.
    depth = {node.span_id: node for node in root.walk()}
    lp_nodes = [n for n in root.walk() if n.name == "lp.solve"]
    for node in lp_nodes:
        ancestors = set()
        cursor = node.record.get("parent")
        while cursor in depth:
            ancestors.add(depth[cursor].name)
            cursor = depth[cursor].record.get("parent")
        assert "transport.send" in ancestors

    # Latency attribution covers the request: every category is
    # non-negative and the LP actually shows up.
    parts = breakdown(roots)
    assert parts.get("lp", 0.0) > 0.0
    assert all(v >= 0.0 for v in parts.values())


def test_explain_donor_split_sums_to_granted(traced):
    observer, _ = traced
    policy, take = _plan_once(requester=0, excess=5.0)

    assert policy.last_request_id is not None
    record = obs.explain(policy.last_request_id)
    assert record is not None
    assert record.outcome == "granted"
    assert record.requestor == policy.principals[0]
    assert record.bank_version == policy.bank.version
    assert record.lp_backend is not None

    split_total = sum(qty for _, qty in record.takes)
    assert split_total == pytest.approx(record.granted, rel=1e-9)
    # ... and the policy's plan moved exactly what the GRM granted.
    assert float(take[1:].sum()) == pytest.approx(record.granted, rel=1e-9)
    assert record.trace_id is not None


def test_denial_recorded_with_reason(traced):
    system = complete_structure(4, share=0.1)
    policy = ManagerPolicy(system)
    avail = np.zeros(4)  # nobody has anything to give
    take = policy.plan(0, 5.0, avail)
    assert float(take[0]) == pytest.approx(5.0)  # everything stayed local

    record = obs.explain(policy.last_request_id)
    assert record is not None
    assert record.outcome == "denied"
    assert record.reason
