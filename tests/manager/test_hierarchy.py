"""Tests for multi-level GRM construction."""

import pytest

from repro.economy import Bank
from repro.errors import ManagerError
from repro.manager import AllocationGrant, AllocationRequestMsg
from repro.manager.hierarchy import build_hierarchical_grm


@pytest.fixture
def bank():
    b = Bank()
    for i in range(6):
        b.create_currency(f"n{i}")
        b.deposit_capacity(f"n{i}", 10.0, "general")
    # ring of 30% agreements
    for i in range(6):
        b.issue_relative_ticket(f"n{i}", f"n{(i + 1) % 6}", 30)
    return b


@pytest.fixture
def hier(bank):
    h = build_hierarchical_grm(
        bank, {"east": ["n0", "n1", "n2"], "west": ["n3", "n4"]}
    )
    h.broadcast_availability({f"n{i}": 10.0 for i in range(6)})
    return h


class TestConstruction:
    def test_children_created(self, hier):
        assert set(hier.children) == {"east", "west"}
        assert hier.transport.endpoints() == ["grm-root", "grm-east", "grm-west"]

    def test_grm_for_routing(self, hier):
        assert hier.grm_for("n1") is hier.children["east"]
        assert hier.grm_for("n4") is hier.children["west"]
        assert hier.grm_for("n5") is hier.root  # unassigned stays at root

    def test_unknown_principal_rejected(self, bank):
        with pytest.raises(ManagerError, match="unknown principals"):
            build_hierarchical_grm(bank, {"g": ["ghost"]})

    def test_overlapping_groups_rejected(self, bank):
        with pytest.raises(ManagerError, match="more than one group"):
            build_hierarchical_grm(bank, {"a": ["n0"], "b": ["n0"]})


class TestDelegatedScheduling:
    def test_request_served_by_child(self, hier):
        reply = hier.transport.send(
            "grm-root",
            AllocationRequestMsg(sender="n1", principal="n1", amount=5.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert hier.requests_served() == {
            "grm-root": 0, "grm-east": 1, "grm-west": 0,
        }

    def test_unassigned_served_by_root(self, hier):
        reply = hier.transport.send(
            "grm-root",
            AllocationRequestMsg(sender="n5", principal="n5", amount=5.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert hier.root.requests_served == 1

    def test_cross_group_agreements_still_work(self, hier):
        """n3 (west) borrows from n2 (east) through the ring agreement."""
        reply = hier.transport.send(
            "grm-root",
            AllocationRequestMsg(sender="n3", principal="n3", amount=12.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert reply.take_for("n2") > 0

    def test_availability_broadcast(self, hier):
        hier.broadcast_availability({"n0": 3.0})
        assert hier.root.availability("n0") == 3.0
        assert hier.children["east"].availability("n0") == 3.0
        assert hier.children["west"].availability("n0") == 3.0
