"""Tests for the GRM/LRM architecture and its message protocol."""

import pytest

from repro.economy import Bank
from repro.errors import ManagerError, UnknownPrincipalError
from repro.manager import (
    AllocationGrant,
    AllocationRequestMsg,
    AvailabilityReport,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
    ReleaseMsg,
)
from repro.manager.messages import AllocationDenied
from repro.units import ResourceVector


def build_cluster(n=4, capacity=10.0, share=0.2):
    """A GRM + n LRMs on one transport, complete sharing structure."""
    transport = InProcessTransport()
    bank = Bank()
    grm = GlobalResourceManager("grm", bank)
    grm.attach(transport)
    lrms = []
    for i in range(n):
        p = f"isp{i}"
        grm.register_principal(p, ResourceVector(general=capacity))
        lrm = LocalResourceManager(p, ResourceVector(general=capacity))
        lrm.attach(transport)
        lrms.append(lrm)
    for i in range(n):
        for j in range(n):
            if i != j:
                bank.issue_relative_ticket(f"isp{i}", f"isp{j}", share * 100)
    for lrm in lrms:
        lrm.report()
    return transport, grm, lrms


class TestTransport:
    def test_duplicate_endpoint(self):
        t = InProcessTransport()
        t.register("a")
        with pytest.raises(ManagerError):
            t.register("a")

    def test_unknown_endpoint(self):
        t = InProcessTransport()
        with pytest.raises(ManagerError):
            t.send("ghost", AvailabilityReport(sender="x"))

    def test_mailbox_fifo(self):
        t = InProcessTransport()
        t.register("box")
        m1 = AvailabilityReport(sender="a", available=1.0)
        m2 = AvailabilityReport(sender="b", available=2.0)
        t.send("box", m1)
        t.send("box", m2)
        assert t.pending("box") == 2
        assert t.receive("box") is m1
        assert t.receive("box") is m2
        assert t.receive("box") is None


class TestAvailabilityReports:
    def test_reports_tracked(self):
        _, grm, _ = build_cluster()
        assert grm.availability("isp0") == pytest.approx(10.0)

    def test_reservation_lowers_report(self):
        transport, grm, lrms = build_cluster()
        lrms[0].reserve(99, ResourceVector(general=4.0))
        lrms[0].report()
        assert grm.availability("isp0") == pytest.approx(6.0)

    def test_lrm_report_requires_attach(self):
        lrm = LocalResourceManager("x", ResourceVector(general=1.0))
        with pytest.raises(ManagerError, match="not attached"):
            lrm.report()


class TestAllocation:
    def test_local_grant(self):
        transport, grm, _ = build_cluster()
        reply = transport.send(
            "grm",
            AllocationRequestMsg(sender="isp0", principal="isp0", amount=5.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert reply.total == pytest.approx(5.0)
        assert reply.take_for("isp0") == pytest.approx(5.0)

    def test_remote_grant_uses_agreements(self):
        transport, grm, _ = build_cluster()
        reply = transport.send(
            "grm",
            AllocationRequestMsg(sender="isp0", principal="isp0", amount=14.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert reply.total == pytest.approx(14.0)
        assert reply.take_for("isp0") == pytest.approx(10.0)
        remote = reply.total - reply.take_for("isp0")
        assert remote == pytest.approx(4.0)

    def test_denial_when_insufficient(self):
        transport, grm, _ = build_cluster(n=2, capacity=1.0, share=0.1)
        reply = transport.send(
            "grm",
            AllocationRequestMsg(sender="isp0", principal="isp0", amount=50.0),
        )
        assert isinstance(reply, AllocationDenied)
        assert grm.requests_denied == 1

    def test_grant_updates_cached_availability(self):
        transport, grm, _ = build_cluster()
        transport.send(
            "grm",
            AllocationRequestMsg(sender="isp0", principal="isp0", amount=5.0),
        )
        assert grm.availability("isp0") == pytest.approx(5.0)

    def test_release_restores_availability(self):
        transport, grm, _ = build_cluster()
        grant = transport.send(
            "grm",
            AllocationRequestMsg(sender="isp0", principal="isp0", amount=5.0),
        )
        transport.send("grm", ReleaseMsg(sender="isp0", grant_id=grant.msg_id))
        assert grm.availability("isp0") == pytest.approx(10.0)
        assert grm.open_grants() == 0

    def test_release_unknown_grant(self):
        transport, grm, _ = build_cluster()
        with pytest.raises(ManagerError, match="no open grant"):
            transport.send("grm", ReleaseMsg(sender="isp0", grant_id=12345))

    def test_unknown_principal(self):
        transport, grm, _ = build_cluster()
        with pytest.raises(UnknownPrincipalError):
            transport.send(
                "grm",
                AllocationRequestMsg(sender="zzz", principal="zzz", amount=1.0),
            )

    def test_level_limits_grant(self):
        """Chain a->b->c in the bank: at level 1, c cannot reach a."""
        transport = InProcessTransport()
        bank = Bank()
        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        grm.register_principal("a", ResourceVector(general=8.0))
        grm.register_principal("b", ResourceVector(general=0.0))
        grm.register_principal("c", ResourceVector(general=0.0))
        bank.issue_relative_ticket("a", "b", 50)
        bank.issue_relative_ticket("b", "c", 50)
        for p, avail in (("a", 8.0), ("b", 0.0), ("c", 0.0)):
            grm.set_availability(p, avail)
        denied = transport.send(
            "grm",
            AllocationRequestMsg(sender="c", principal="c", amount=1.0, level=1),
        )
        assert isinstance(denied, AllocationDenied)
        granted = transport.send(
            "grm",
            AllocationRequestMsg(sender="c", principal="c", amount=1.0, level=2),
        )
        assert isinstance(granted, AllocationGrant)
        assert granted.take_for("a") == pytest.approx(1.0)


class TestMultiLevelGRM:
    def test_delegated_requests_forwarded(self):
        transport, grm, _ = build_cluster(n=4)
        # Child GRM manages isp2/isp3 over the same bank.
        child = GlobalResourceManager("grm-child", grm.bank)
        child.attach(transport)
        for p in grm.bank.principals():
            child.set_availability(p, grm.availability(p))
        grm.delegate("grm-child", ["isp2", "isp3"])
        reply = transport.send(
            "grm",
            AllocationRequestMsg(sender="isp2", principal="isp2", amount=3.0),
        )
        assert isinstance(reply, AllocationGrant)
        assert child.requests_served == 1
        assert grm.requests_served == 0


class TestLRMReservations:
    def test_over_reservation_rejected(self):
        lrm = LocalResourceManager("x", ResourceVector(general=5.0))
        with pytest.raises(ManagerError, match="only"):
            lrm.reserve(1, ResourceVector(general=6.0))

    def test_release_returns_amount(self):
        lrm = LocalResourceManager("x", ResourceVector(general=5.0))
        lrm.reserve(1, ResourceVector(general=2.0))
        returned = lrm.release(1)
        assert returned["general"] == pytest.approx(2.0)
        assert lrm.available() == pytest.approx(5.0)

    def test_release_unknown(self):
        lrm = LocalResourceManager("x", ResourceVector(general=5.0))
        with pytest.raises(ManagerError):
            lrm.release(7)

    def test_incremental_reservation(self):
        lrm = LocalResourceManager("x", ResourceVector(general=5.0))
        lrm.reserve(1, ResourceVector(general=2.0))
        lrm.reserve(1, ResourceVector(general=1.0))
        assert lrm.available() == pytest.approx(2.0)
