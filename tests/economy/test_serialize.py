"""Round-trip tests for bank / agreement-system serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.agreements import AgreementSystem, hierarchical_structure
from repro.economy import build_example_1, build_example_2
from repro.economy.serialize import (
    bank_from_dict,
    bank_to_dict,
    load_bank,
    load_system,
    save_bank,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.errors import EconomyError

from .test_properties import economies


class TestBankRoundTrip:
    def test_example1_values_survive(self, tmp_path):
        bank, _ = build_example_1()
        restored = load_bank(save_bank(bank, tmp_path / "bank.json"))
        before = {k: dict(v) for k, v in bank.currency_values().items()}
        after = {k: dict(v) for k, v in restored.currency_values().items()}
        assert before == after

    def test_virtual_currencies_survive(self, tmp_path):
        bank, _ = build_example_2()
        restored = load_bank(save_bank(bank, tmp_path / "bank.json"))
        assert restored.currency("A1").virtual
        assert restored.currency("A1").owner == "A"
        assert restored.currency_value("A2")["disk"] == pytest.approx(5.0)

    def test_revocations_survive(self, tmp_path):
        bank, tickets = build_example_1()
        bank.revoke_ticket(tickets["R-Ticket5"].ticket_id)
        restored = load_bank(save_bank(bank, tmp_path / "bank.json"))
        assert restored.currency_value("D").is_zero()

    def test_ticket_names_survive(self):
        bank, _ = build_example_1()
        restored = bank_from_dict(bank_to_dict(bank))
        names = {t.name for t in restored.tickets}
        assert "R-Ticket4" in names

    def test_bad_format_rejected(self):
        with pytest.raises(EconomyError, match="format"):
            bank_from_dict({"format": "something-else"})

    @given(economies())
    @settings(max_examples=25, deadline=None)
    def test_random_economies_round_trip(self, bank):
        restored = bank_from_dict(bank_to_dict(bank))
        before = bank.currency_values()
        after = restored.currency_values()
        for name in before:
            assert after[name]["general"] == pytest.approx(
                before[name]["general"], abs=1e-9
            )


class TestSystemRoundTrip:
    def test_matrices_survive(self, tmp_path):
        bank, _ = build_example_1()
        system = AgreementSystem.from_bank(bank, "disk")
        restored = load_system(save_system(system, tmp_path / "sys.json"))
        assert restored.principals == system.principals
        np.testing.assert_allclose(restored.S, system.S)
        np.testing.assert_allclose(restored.V, system.V)
        np.testing.assert_allclose(restored.A, system.A)
        np.testing.assert_allclose(restored.capacities(), system.capacities())

    def test_groups_survive(self):
        system = hierarchical_structure(3, 4)
        restored = system_from_dict(system_to_dict(system))
        assert restored.groups == system.groups

    def test_overdraft_flag_survives(self):
        S = np.array([[0.0, 0.6, 0.6], [0, 0, 0], [0, 0, 0]])
        system = AgreementSystem(
            ["a", "b", "c"], np.ones(3), S, allow_overdraft=True
        )
        restored = system_from_dict(system_to_dict(system))
        assert restored.allow_overdraft

    def test_bad_format_rejected(self):
        with pytest.raises(EconomyError, match="format"):
            system_from_dict({"format": "nope"})
