"""Tests for the ticket/currency bank: registry, valuation, revocation."""

import numpy as np
import pytest

from repro.economy import Bank, TicketKind
from repro.errors import (
    CurrencyCycleError,
    DuplicateNameError,
    EconomyError,
    TicketRevokedError,
    UnknownCurrencyError,
    UnknownTicketError,
)


@pytest.fixture
def bank():
    b = Bank()
    b.create_currency("A", face_value=1000)
    b.create_currency("B", face_value=100)
    return b


class TestRegistry:
    def test_create_and_lookup(self, bank):
        assert bank.currency("A").face_value == 1000
        assert bank.principals() == ["A", "B"]

    def test_duplicate_currency_rejected(self, bank):
        with pytest.raises(DuplicateNameError):
            bank.create_currency("A")

    def test_unknown_currency(self, bank):
        with pytest.raises(UnknownCurrencyError):
            bank.currency("Z")

    def test_unknown_ticket(self, bank):
        with pytest.raises(UnknownTicketError):
            bank.ticket(999)

    def test_virtual_requires_owner(self, bank):
        with pytest.raises(EconomyError, match="owner"):
            bank.create_currency("V1", virtual=True)

    def test_virtual_excluded_from_principals(self, bank):
        bank.create_currency("A1", owner="A", virtual=True)
        assert bank.principals() == ["A", "B"]

    def test_nonpositive_face_value_rejected(self):
        b = Bank()
        with pytest.raises(EconomyError):
            b.create_currency("X", face_value=0)


class TestTicketIssue:
    def test_deposit_is_base_capacity(self, bank):
        t = bank.deposit_capacity("A", 10, "disk")
        assert t.is_base_capacity
        assert not t.is_agreement
        assert t.kind is TicketKind.ABSOLUTE

    def test_self_backing_rejected(self, bank):
        with pytest.raises(EconomyError, match="cannot back itself"):
            bank.issue_relative_ticket("A", "A", 10)
        with pytest.raises(EconomyError, match="cannot back itself"):
            bank.issue_absolute_ticket("A", "A", 10)

    def test_negative_face_rejected(self, bank):
        with pytest.raises(EconomyError, match="negative face"):
            bank.issue_relative_ticket("A", "B", -5)

    def test_absolute_needs_concrete_resource(self, bank):
        from repro.economy.ticket import Ticket

        with pytest.raises(EconomyError, match="concrete resource"):
            Ticket(kind=TicketKind.ABSOLUTE, face_value=1.0, backing="B")

    def test_relative_needs_issuer(self):
        from repro.economy.ticket import Ticket

        with pytest.raises(EconomyError, match="issued by a currency"):
            Ticket(kind=TicketKind.RELATIVE, face_value=1.0, backing="B")


class TestValuation:
    def test_empty_currency_is_worthless(self, bank):
        assert bank.currency_value("A").is_zero()

    def test_deposit_sets_value(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        assert bank.currency_value("A")["disk"] == pytest.approx(10.0)

    def test_multiple_resource_types(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.deposit_capacity("A", 4, "cpu")
        v = bank.currency_value("A")
        assert v["disk"] == pytest.approx(10.0)
        assert v["cpu"] == pytest.approx(4.0)
        assert bank.resource_types() == ["cpu", "disk"]

    def test_relative_ticket_transfers_fraction(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.issue_relative_ticket("A", "B", 500)  # 50% of A
        assert bank.currency_value("B")["disk"] == pytest.approx(5.0)

    def test_relative_transfers_all_types(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.deposit_capacity("A", 4, "cpu")
        bank.issue_relative_ticket("A", "B", 250)  # 25%
        v = bank.currency_value("B")
        assert v["disk"] == pytest.approx(2.5)
        assert v["cpu"] == pytest.approx(1.0)

    def test_issuing_does_not_reduce_issuer_value(self, bank):
        # Sharing semantics: both grantor and grantee can use the resource.
        bank.deposit_capacity("A", 10, "disk")
        bank.issue_relative_ticket("A", "B", 500)
        assert bank.currency_value("A")["disk"] == pytest.approx(10.0)

    def test_chained_relative_tickets(self, bank):
        bank.create_currency("C")
        bank.deposit_capacity("A", 10, "disk")
        bank.issue_relative_ticket("A", "B", 500)  # B gets 5
        bank.issue_relative_ticket("B", "C", 50)  # C gets 50% of B
        assert bank.currency_value("C")["disk"] == pytest.approx(2.5)

    def test_absolute_agreement_adds_face(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.issue_absolute_ticket("A", "B", 3, "disk")
        assert bank.currency_value("B")["disk"] == pytest.approx(3.0)

    def test_ticket_real_value_absolute(self, bank):
        t = bank.issue_absolute_ticket("A", "B", 3, "disk")
        assert bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(3.0)

    def test_ticket_real_value_relative(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        t = bank.issue_relative_ticket("A", "B", 500)
        assert bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(5.0)

    def test_contractive_cycle_is_fine(self, bank):
        # A and B each share 40% with the other: fixed point exists.
        bank.deposit_capacity("A", 10, "disk")
        bank.deposit_capacity("B", 10, "disk")
        bank.issue_relative_ticket("A", "B", 400)  # 40% of A
        bank.issue_relative_ticket("B", "A", 40)  # 40% of B
        vA = bank.currency_value("A")["disk"]
        vB = bank.currency_value("B")["disk"]
        # v_A = 10 + 0.4 v_B, v_B = 10 + 0.4 v_A -> v = 10/0.6 * ... = 16.666
        assert vA == pytest.approx(10 / 0.6)
        assert vB == pytest.approx(10 / 0.6)

    def test_non_contractive_cycle_raises(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.issue_relative_ticket("A", "B", 1000)  # 100%
        bank.issue_relative_ticket("B", "A", 100)  # 100%
        with pytest.raises(CurrencyCycleError):
            bank.currency_values()


class TestInflation:
    def test_inflation_devalues_relative_tickets(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        t = bank.issue_relative_ticket("A", "B", 500)
        bank.inflate_currency("A", 2.0)  # face 1000 -> 2000
        assert bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(2.5)

    def test_deflation_boosts_relative_tickets(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        t = bank.issue_relative_ticket("A", "B", 500)
        bank.inflate_currency("A", 0.5)
        assert bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(10.0)

    def test_bad_inflation_factor(self, bank):
        with pytest.raises(EconomyError):
            bank.inflate_currency("A", 0.0)


class TestRevocation:
    def test_revoked_ticket_worthless(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        t = bank.issue_relative_ticket("A", "B", 500)
        bank.revoke_ticket(t.ticket_id)
        assert bank.currency_value("B").is_zero()
        assert bank.ticket_real_value(t.ticket_id).is_zero()

    def test_double_revoke_rejected(self, bank):
        t = bank.deposit_capacity("A", 10, "disk")
        bank.revoke_ticket(t.ticket_id)
        with pytest.raises(TicketRevokedError):
            bank.revoke_ticket(t.ticket_id)

    def test_revoking_capacity_reduces_value(self, bank):
        t1 = bank.deposit_capacity("A", 10, "disk")
        bank.deposit_capacity("A", 5, "disk")
        bank.revoke_ticket(t1.ticket_id)
        assert bank.currency_value("A")["disk"] == pytest.approx(5.0)


class TestOverissue:
    def test_overissued_detection(self, bank):
        bank.issue_relative_ticket("A", "B", 700)
        assert bank.overissued_currencies() == []
        bank.create_currency("C")
        bank.issue_relative_ticket("A", "C", 600)  # 1300 > face 1000
        assert bank.overissued_currencies() == ["A"]


class TestAgreementExport:
    def test_simple_export(self, bank):
        bank.deposit_capacity("A", 10, "general")
        bank.issue_relative_ticket("A", "B", 300)
        principals, V, S, A = bank.to_agreement_system("general")
        assert principals == ["A", "B"]
        assert V.tolist() == [10.0, 0.0]
        assert S[0, 1] == pytest.approx(0.3)
        assert not np.any(A)

    def test_export_filters_resource_type(self, bank):
        bank.deposit_capacity("A", 10, "disk")
        bank.deposit_capacity("A", 4, "cpu")
        _, V, _, _ = bank.to_agreement_system("cpu")
        assert V.tolist() == [4.0, 0.0]

    def test_absolute_agreements_in_A(self, bank):
        bank.deposit_capacity("A", 10, "general")
        bank.issue_absolute_ticket("A", "B", 3, "general")
        _, _, S, A = bank.to_agreement_system("general")
        assert A[0, 1] == pytest.approx(3.0)
        assert not np.any(S)

    def test_revoked_agreements_excluded(self, bank):
        bank.deposit_capacity("A", 10, "general")
        t = bank.issue_relative_ticket("A", "B", 300)
        bank.revoke_ticket(t.ticket_id)
        _, _, S, _ = bank.to_agreement_system("general")
        assert not np.any(S)
