"""Ground-truth tests: the paper's Example 1 (Figure 1) and Example 2 (Figure 2).

The expected numbers are quoted verbatim in Section 2.2:
- "the real value of R-Ticket4 is 10 x 500/1000 = 5";
- "this relative ticket boosts the value of currency B to 5 + 15 = 20";
- "the true value of this ticket is 20 x 60/100 = 12";
- "virtual currency A1 has the value of R-Ticket3, which is 3, and virtual
  currency A2 has the value of R-Ticket4, which is 5".
"""

import pytest

from repro.agreements import AgreementSystem
from repro.economy import build_example_1, build_example_2


class TestExample1:
    @pytest.fixture(autouse=True)
    def _build(self):
        self.bank, self.tickets = build_example_1()

    def test_currency_A_value(self):
        assert self.bank.currency_value("A")["disk"] == pytest.approx(10.0)

    def test_rticket4_is_5(self):
        t = self.tickets["R-Ticket4"]
        assert self.bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(5.0)

    def test_currency_B_boosted_to_20(self):
        assert self.bank.currency_value("B")["disk"] == pytest.approx(20.0)

    def test_rticket5_is_12(self):
        t = self.tickets["R-Ticket5"]
        assert self.bank.ticket_real_value(t.ticket_id)["disk"] == pytest.approx(12.0)

    def test_currency_C_gets_absolute_3(self):
        assert self.bank.currency_value("C")["disk"] == pytest.approx(3.0)

    def test_currency_D_gets_transitive_12(self):
        # D's value implicitly integrates resources from B's direct agreement
        # with A ("implicitly integrates ... its transitive agreement with A").
        assert self.bank.currency_value("D")["disk"] == pytest.approx(12.0)

    def test_agreement_system_capacities(self):
        system = AgreementSystem.from_bank(self.bank, "disk")
        caps = dict(zip(system.principals, system.capacities()))
        assert caps["A"] == pytest.approx(10.0)
        assert caps["B"] == pytest.approx(20.0)
        assert caps["C"] == pytest.approx(3.0)
        assert caps["D"] == pytest.approx(12.0)

    def test_flattened_S_matrix(self):
        system = AgreementSystem.from_bank(self.bank, "disk")
        iA, iB, iD = (system.index(p) for p in "ABD")
        assert system.S[iA, iB] == pytest.approx(0.5)
        assert system.S[iB, iD] == pytest.approx(0.6)


class TestExample2:
    @pytest.fixture(autouse=True)
    def _build(self):
        self.bank, self.tickets = build_example_2()

    def test_virtual_A1_is_3(self):
        assert self.bank.currency_value("A1")["disk"] == pytest.approx(3.0)

    def test_virtual_A2_is_5(self):
        assert self.bank.currency_value("A2")["disk"] == pytest.approx(5.0)

    def test_B_funded_via_A2(self):
        # R-Ticket8 carries 60% of A2 (value 5) = 3; B also owns 15.
        assert self.bank.currency_value("B")["disk"] == pytest.approx(18.0)

    def test_isolation_between_virtual_currencies(self):
        """Inflating A1 must not change anything routed through A2."""
        before_B = self.bank.currency_value("B")["disk"]
        before_D = self.bank.currency_value("D")["disk"]
        before_C = self.bank.currency_value("C")["disk"]
        self.bank.inflate_currency("A1", 3.0)
        after = self.bank.currency_values()
        assert after["B"]["disk"] == pytest.approx(before_B)
        assert after["D"]["disk"] == pytest.approx(before_D)
        # C *is* routed through A1 -> its share shrinks 3x.
        assert after["C"]["disk"] == pytest.approx(before_C / 3.0)

    def test_new_ticket_from_A1_leaves_A2_subset_alone(self):
        """Issuing another ticket from A1 affects only A1's beneficiaries.

        Per Example 1's arithmetic the denominator of a relative ticket is
        the issuing currency's *face value* (R-Ticket4 = 10 * 500/1000), so
        a new issue does not dilute existing tickets by itself; A inflates
        A1 to make room, and only the A1 subset (C, E) is repriced.
        """
        before = self.bank.currency_values()
        self.bank.create_currency("E")
        self.bank.issue_relative_ticket("A1", "E", 100)
        self.bank.inflate_currency("A1", 2.0)  # face 100 -> 200
        after = self.bank.currency_values()
        assert after["B"]["disk"] == pytest.approx(before["B"]["disk"])
        assert after["D"]["disk"] == pytest.approx(before["D"]["disk"])
        assert after["C"]["disk"] == pytest.approx(1.5)  # 100/200 of A1's 3
        assert after["E"]["disk"] == pytest.approx(1.5)

    def test_flattened_effective_shares(self):
        """A -> A2 -> B composes to 0.5 * 0.6 = 0.3 of A's resources."""
        system = AgreementSystem.from_bank(self.bank, "disk")
        iA, iB, iC, iD = (system.index(p) for p in "ABCD")
        assert system.S[iA, iB] == pytest.approx(0.3)
        assert system.S[iA, iC] == pytest.approx(0.3)  # A -> A1 -> C
        assert system.S[iA, iD] == pytest.approx(0.2)  # A -> A2 -> D (40%)

    def test_capacities_through_virtual_currencies(self):
        system = AgreementSystem.from_bank(self.bank, "disk")
        caps = dict(zip(system.principals, system.capacities()))
        assert caps["B"] == pytest.approx(18.0)
        assert caps["C"] == pytest.approx(3.0)
