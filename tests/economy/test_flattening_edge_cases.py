"""Edge cases of Bank.to_agreement_system: virtual-currency chains with
absolute components, chained virtuals, and mixed funding."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem
from repro.economy import Bank


class TestAbsoluteThroughVirtual:
    def test_relative_ticket_from_absolutely_funded_virtual(self):
        """A funds a virtual currency with an *absolute* ticket; a relative
        ticket from that virtual is effectively an absolute grant."""
        bank = Bank()
        bank.create_currency("A")
        bank.create_currency("B")
        bank.create_currency("Av", owner="A", virtual=True)
        bank.deposit_capacity("A", 20.0, "general")
        bank.issue_absolute_ticket("A", "Av", 6.0, "general")
        bank.issue_relative_ticket("Av", "B", 50)  # half of Av's 6
        principals, V, S, A = bank.to_agreement_system("general")
        assert principals == ["A", "B"]
        assert V.tolist() == [20.0, 0.0]
        assert not np.any(S)  # no relative component survives
        assert A[0, 1] == pytest.approx(3.0)

    def test_mixed_funding_splits_into_S_and_A(self):
        """A virtual funded by both a relative and an absolute ticket
        yields both an S share and an A grant."""
        bank = Bank()
        bank.create_currency("A", face_value=100)
        bank.create_currency("B")
        bank.create_currency("Av", owner="A", virtual=True)
        bank.deposit_capacity("A", 10.0, "general")
        bank.issue_relative_ticket("A", "Av", 40)  # 40% of A
        bank.issue_absolute_ticket("A", "Av", 2.0, "general")
        bank.issue_relative_ticket("Av", "B", 50)  # half of Av
        _, _, S, A = bank.to_agreement_system("general")
        assert S[0, 1] == pytest.approx(0.20)
        assert A[0, 1] == pytest.approx(1.0)

    def test_chained_virtual_currencies(self):
        """A -> Av1 -> Av2 -> B composes the fractions."""
        bank = Bank()
        bank.create_currency("A", face_value=100)
        bank.create_currency("B")
        bank.create_currency("Av1", owner="A", virtual=True)
        bank.create_currency("Av2", owner="A", virtual=True)
        bank.deposit_capacity("A", 10.0, "general")
        bank.issue_relative_ticket("A", "Av1", 60)
        bank.issue_relative_ticket("Av1", "Av2", 50)
        bank.issue_relative_ticket("Av2", "B", 50)
        _, _, S, _ = bank.to_agreement_system("general")
        assert S[0, 1] == pytest.approx(0.6 * 0.5 * 0.5)

    def test_agreement_system_capacity_matches(self):
        bank = Bank()
        bank.create_currency("A")
        bank.create_currency("B")
        bank.create_currency("Av", owner="A", virtual=True)
        bank.deposit_capacity("A", 20.0, "general")
        bank.issue_absolute_ticket("A", "Av", 6.0, "general")
        bank.issue_relative_ticket("Av", "B", 50)
        system = AgreementSystem.from_bank(bank, "general")
        assert system.capacity_of("B") == pytest.approx(3.0)


class TestResourceTypeFiltering:
    def test_absolute_virtual_funding_filtered_by_type(self):
        bank = Bank()
        bank.create_currency("A")
        bank.create_currency("B")
        bank.create_currency("Av", owner="A", virtual=True)
        bank.deposit_capacity("A", 5.0, "cpu")
        bank.deposit_capacity("A", 50.0, "disk")
        bank.issue_absolute_ticket("A", "Av", 10.0, "disk")
        bank.issue_relative_ticket("Av", "B", 100)
        _, _, _, A_cpu = bank.to_agreement_system("cpu")
        _, _, _, A_disk = bank.to_agreement_system("disk")
        assert not np.any(A_cpu)
        assert A_disk[0, 1] == pytest.approx(10.0)

    def test_deposits_into_virtual_currencies_not_raw_capacity(self):
        """Base deposits parked in a virtual currency count only through
        issued tickets (documented behaviour)."""
        bank = Bank()
        bank.create_currency("A")
        bank.create_currency("Av", owner="A", virtual=True)
        bank.deposit_capacity("Av", 7.0, "general")
        _, V, _, _ = bank.to_agreement_system("general")
        assert V.tolist() == [0.0]
