"""Property-based tests of the currency valuation engine.

Invariants checked on randomly generated economies:
- a currency is always worth at least its own base deposits;
- issuing a ticket never decreases any currency's value;
- revoking a ticket never increases any currency's value;
- inflating a currency leaves its own value unchanged and scales the
  real value of every relative ticket it issued by exactly 1/factor;
- the flattened agreement system's capacities are consistent with
  currency values for two-level (acyclic, direct-agreement) economies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import AgreementSystem
from repro.economy import Bank
from repro.economy.ticket import TicketKind


@st.composite
def economies(draw):
    """Random acyclic-by-construction economies (tickets flow i -> j>i)."""
    n = draw(st.integers(2, 6))
    bank = Bank()
    for i in range(n):
        bank.create_currency(f"p{i}", face_value=draw(st.sampled_from([100.0, 500.0, 1000.0])))
    for i in range(n):
        if draw(st.booleans()):
            bank.deposit_capacity(f"p{i}", draw(st.floats(0.0, 100.0)), "general")
    # issue relative tickets only forward (i -> j > i): acyclic
    n_tickets = draw(st.integers(0, 8))
    for _ in range(n_tickets):
        i = draw(st.integers(0, n - 2))
        j = draw(st.integers(i + 1, n - 1))
        face = draw(st.floats(1.0, 50.0))
        bank.issue_relative_ticket(f"p{i}", f"p{j}", face)
    return bank


class TestValuationInvariants:
    @given(economies())
    @settings(max_examples=40, deadline=None)
    def test_value_at_least_base_deposits(self, bank):
        values = bank.currency_values()
        base = {c.name: 0.0 for c in bank.currencies}
        for t in bank.tickets:
            if t.is_base_capacity and not t.revoked:
                base[t.backing] += t.face_value
        for name, vec in values.items():
            assert vec["general"] >= base[name] - 1e-9

    @given(economies(), st.floats(1.0, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_issuing_is_monotone(self, bank, face):
        before = {k: v["general"] for k, v in bank.currency_values().items()}
        names = bank.principals()
        bank.issue_relative_ticket(names[0], names[-1], face)
        after = {k: v["general"] for k, v in bank.currency_values().items()}
        for name in names:
            assert after[name] >= before[name] - 1e-9

    @given(economies())
    @settings(max_examples=40, deadline=None)
    def test_revocation_is_antitone(self, bank):
        agreements = [t for t in bank.tickets if t.is_agreement and not t.revoked]
        if not agreements:
            return
        before = {k: v["general"] for k, v in bank.currency_values().items()}
        bank.revoke_ticket(agreements[0].ticket_id)
        after = {k: v["general"] for k, v in bank.currency_values().items()}
        for name in before:
            assert after[name] <= before[name] + 1e-9

    @given(economies(), st.floats(0.25, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_inflation_scales_issued_tickets(self, bank, factor):
        names = bank.principals()
        target = names[0]
        issued = [
            t for t in bank.tickets
            if t.issuer == target and t.kind is TicketKind.RELATIVE and not t.revoked
        ]
        own_before = bank.currency_value(target)["general"]
        reals_before = {
            t.ticket_id: bank.ticket_real_value(t.ticket_id)["general"]
            for t in issued
        }
        bank.inflate_currency(target, factor)
        assert bank.currency_value(target)["general"] == pytest.approx(
            own_before, rel=1e-9, abs=1e-9
        )
        for t in issued:
            assert bank.ticket_real_value(t.ticket_id)["general"] == pytest.approx(
                reals_before[t.ticket_id] / factor, rel=1e-9, abs=1e-12
            )


class TestFlatteningConsistency:
    @given(economies())
    @settings(max_examples=30, deadline=None)
    def test_capacities_bounded_by_currency_values(self, bank):
        """The enforcement capacity C_i never exceeds the currency value:
        currency values propagate *all* inflow (value semantics), while U
        clamps each donor at its raw capacity."""
        system = AgreementSystem.from_bank(bank, "general", allow_overdraft=True)
        values = bank.currency_values()
        C = system.capacities()
        for p, c in zip(system.principals, C):
            assert c <= values[p]["general"] + 1e-6

    @given(economies())
    @settings(max_examples=30, deadline=None)
    def test_direct_agreements_match(self, bank):
        """S entries equal face/issuer-face for direct principal tickets."""
        system = AgreementSystem.from_bank(bank, "general", allow_overdraft=True)
        expected = np.zeros((system.n, system.n))
        for t in bank.tickets:
            if t.is_agreement and not t.revoked and t.kind is TicketKind.RELATIVE:
                i = system.index(t.issuer)
                j = system.index(t.backing)
                expected[i, j] += t.face_value / bank.currency(t.issuer).face_value
        np.testing.assert_allclose(system.S, expected, atol=1e-12)
