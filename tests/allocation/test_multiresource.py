"""Tests for multi-resource vector requests and coupled binding (Section 3.2)."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem
from repro.allocation import MultiResourceRequest, allocate_multi
from repro.allocation.multiresource import expand_coupled_takes
from repro.economy import Bank
from repro.errors import AllocationError, InsufficientResourcesError
from repro.units import CoupledResource, ResourceVector


@pytest.fixture
def systems():
    """Two resource types with different agreement graphs, via a Bank."""
    bank = Bank()
    for p in ("a", "b"):
        bank.create_currency(p)
    bank.deposit_capacity("a", 10, "cpu")
    bank.deposit_capacity("a", 100, "disk")
    bank.deposit_capacity("b", 2, "cpu")
    bank.issue_relative_ticket("a", "b", 50)  # 50% of everything a has
    return {
        "cpu": AgreementSystem.from_bank(bank, "cpu"),
        "disk": AgreementSystem.from_bank(bank, "disk"),
    }


class TestVectorRequests:
    def test_one_lp_per_type(self, systems):
        req = MultiResourceRequest("b", ResourceVector(cpu=3.0, disk=20.0))
        plans = allocate_multi(systems, req)
        assert set(plans) == {"cpu", "disk"}
        assert plans["cpu"].satisfied == pytest.approx(3.0)
        assert plans["disk"].satisfied == pytest.approx(20.0)

    def test_missing_system_raises(self, systems):
        req = MultiResourceRequest("b", ResourceVector(gpu=1.0))
        with pytest.raises(AllocationError, match="gpu"):
            allocate_multi(systems, req)

    def test_all_or_nothing(self, systems):
        """A shortfall on one type must fail before planning any type."""
        req = MultiResourceRequest("b", ResourceVector(cpu=100.0, disk=1.0))
        with pytest.raises(InsufficientResourcesError):
            allocate_multi(systems, req)

    def test_zero_entries_skipped(self, systems):
        req = MultiResourceRequest("b", ResourceVector(cpu=1.0, disk=0.0))
        plans = allocate_multi(systems, req)
        assert set(plans) == {"cpu"}

    def test_level_passes_through(self, systems):
        req = MultiResourceRequest("b", ResourceVector(cpu=3.0), level=1)
        plans = allocate_multi(systems, req)
        assert plans["cpu"].request.level == 1


class TestCoupledResources:
    def test_coupled_resource_validation(self):
        with pytest.raises(Exception):
            CoupledResource("empty", ResourceVector())

    def test_units_and_expand(self):
        slot = CoupledResource("slot", ResourceVector(cpu=2.0, mem=4.0))
        assert slot.units_from(ResourceVector(cpu=10.0, mem=12.0)) == pytest.approx(3.0)
        footprint = slot.expand(2.0)
        assert footprint["cpu"] == pytest.approx(4.0)
        assert footprint["mem"] == pytest.approx(8.0)

    def test_coupled_request_flow(self):
        """Bind cpu+mem into 'slot' units and allocate the bundle."""
        slot = CoupledResource("slot", ResourceVector(cpu=2.0, mem=4.0))
        bank = Bank()
        for p in ("a", "b"):
            bank.create_currency(p)
        # a has 10 slots' worth; shares 50% with b.
        bank.deposit_capacity("a", 10, "slot")
        bank.issue_relative_ticket("a", "b", 50)
        systems = {"slot": AgreementSystem.from_bank(bank, "slot")}
        req = MultiResourceRequest(
            "b", ResourceVector(slot=4.0), coupled=(slot,)
        )
        plans = allocate_multi(systems, req)
        assert plans["slot"].satisfied == pytest.approx(4.0)
        footprint = expand_coupled_takes(req, plans)
        assert footprint["a"]["cpu"] == pytest.approx(8.0)
        assert footprint["a"]["mem"] == pytest.approx(16.0)

    def test_expand_ignores_uncoupled_types(self, systems):
        req = MultiResourceRequest("b", ResourceVector(cpu=1.0))
        plans = allocate_multi(systems, req)
        assert expand_coupled_takes(req, plans) == {}
