"""Property-based invariants of the allocation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import AgreementSystem
from repro.allocation import allocate_endpoint, allocate_greedy, allocate_lp


@st.composite
def systems_and_requests(draw):
    n = draw(st.integers(2, 7))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    S = rng.random((n, n)) * (0.95 / n)
    np.fill_diagonal(S, 0.0)
    V = rng.random(n) * 10
    system = AgreementSystem([f"p{i}" for i in range(n)], V, S)
    a = draw(st.integers(0, n - 1))
    frac = draw(st.floats(0.05, 0.95))
    x = frac * system.capacity_of(f"p{a}")
    return system, f"p{a}", float(x)


class TestLPInvariants:
    @given(systems_and_requests())
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_bounds(self, sr):
        system, principal, x = sr
        plan = allocate_lp(system, principal, x)
        assert plan.take.sum() == pytest.approx(x, abs=1e-6)
        assert np.all(plan.take >= -1e-9)
        assert np.all(plan.take <= system.V + 1e-6)
        a = system.index(principal)
        U = system.u(None)
        for k in range(system.n):
            bound = system.V[a] if k == a else min(U[k, a], system.V[k])
            assert plan.take[k] <= bound + 1e-6

    @given(systems_and_requests())
    @settings(max_examples=40, deadline=None)
    def test_theta_is_true_max_drop(self, sr):
        system, principal, x = sr
        plan = allocate_lp(system, principal, x)
        a = system.index(principal)
        drops = np.delete(system.capacities() - plan.new_C, a)
        observed = drops.max() if drops.size else 0.0
        assert plan.theta == pytest.approx(observed, abs=1e-6)

    @given(systems_and_requests())
    @settings(max_examples=30, deadline=None)
    def test_theta_monotone_in_request(self, sr):
        system, principal, x = sr
        small = allocate_lp(system, principal, 0.5 * x)
        large = allocate_lp(system, principal, x)
        assert small.theta <= large.theta + 1e-6

    @given(systems_and_requests())
    @settings(max_examples=30, deadline=None)
    def test_more_capacity_never_hurts(self, sr):
        system, principal, x = sr
        bigger = system.with_capacities(system.V * 1.5)
        assert bigger.capacity_of(principal) >= system.capacity_of(principal) - 1e-9
        plan = allocate_lp(bigger, principal, x)
        assert plan.satisfied == pytest.approx(x, abs=1e-6)

    @given(systems_and_requests())
    @settings(max_examples=30, deadline=None)
    def test_level_monotone_capacity(self, sr):
        system, principal, _ = sr
        caps = [system.capacity_of(principal, level=m) for m in range(system.n)]
        assert all(b >= a - 1e-9 for a, b in zip(caps, caps[1:]))


class TestSchemeDominance:
    @given(systems_and_requests())
    @settings(max_examples=40, deadline=None)
    def test_lp_satisfies_at_least_endpoint(self, sr):
        """The endpoint scheme sees only direct agreements, so it can never
        place more than the transitive LP."""
        system, principal, x = sr
        lp = allocate_lp(system, principal, x, partial=True)
        ep = allocate_endpoint(system, principal, x, partial=True)
        assert lp.satisfied >= ep.satisfied - 1e-6

    @given(systems_and_requests())
    @settings(max_examples=40, deadline=None)
    def test_lp_theta_no_worse_than_greedy(self, sr):
        system, principal, x = sr
        lp = allocate_lp(system, principal, x)
        gr = allocate_greedy(system, principal, x)
        assert gr.satisfied == pytest.approx(lp.satisfied, abs=1e-6)
        assert lp.theta <= gr.theta + 1e-6

    @given(systems_and_requests())
    @settings(max_examples=30, deadline=None)
    def test_all_schemes_respect_donor_capacity(self, sr):
        system, principal, x = sr
        for plan in (
            allocate_lp(system, principal, x, partial=True),
            allocate_greedy(system, principal, x, partial=True),
            allocate_endpoint(system, principal, x, partial=True),
        ):
            assert np.all(plan.take <= system.V + 1e-6), plan.scheme
            assert np.all(plan.new_V >= -1e-9), plan.scheme
