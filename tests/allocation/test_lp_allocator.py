"""Tests for the Section-3.1 LP allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import AgreementSystem, complete_structure, loop_structure
from repro.allocation import allocate_lp
from repro.errors import InsufficientResourcesError, LPError


def two_node(v0=10.0, v1=0.0, share=0.5):
    S = np.array([[0.0, share], [0.0, 0.0]])
    return AgreementSystem(["a", "b"], np.array([v0, v1]), S)


class TestFeasibility:
    def test_request_within_own_capacity(self):
        sys_ = two_node()
        al = allocate_lp(sys_, "a", 4.0)
        assert al.satisfied == pytest.approx(4.0)
        assert al.take.sum() == pytest.approx(4.0)
        assert al.local_take == pytest.approx(4.0)

    def test_request_uses_agreement(self):
        sys_ = two_node()
        al = allocate_lp(sys_, "b", 5.0)  # b owns nothing, can reach 5 of a
        assert al.satisfied == pytest.approx(5.0)
        assert al.takes_by_name() == {"a": pytest.approx(5.0)}

    def test_request_beyond_capacity_raises(self):
        sys_ = two_node()
        with pytest.raises(InsufficientResourcesError) as exc:
            allocate_lp(sys_, "b", 6.0)
        assert exc.value.requested == 6.0
        assert exc.value.available == pytest.approx(5.0)

    def test_partial_grants_capacity(self):
        sys_ = two_node()
        al = allocate_lp(sys_, "b", 6.0, partial=True)
        assert al.satisfied == pytest.approx(5.0)

    def test_zero_request(self):
        sys_ = two_node()
        al = allocate_lp(sys_, "a", 0.0)
        assert al.satisfied == 0.0
        assert not np.any(al.take)
        assert al.theta == 0.0

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError):
            allocate_lp(two_node(), "a", -1.0)

    def test_level_limits_reachable_capacity(self):
        # chain a -> b -> c, c requests: at level 1 only b's resources reach c.
        S = np.array([[0, 0.5, 0], [0, 0, 0.5], [0, 0, 0]], dtype=float)
        sys_ = AgreementSystem(["a", "b", "c"], np.array([8.0, 4.0, 0.0]), S)
        # level 1: c reaches 0.5*4 = 2 from b only
        al1 = allocate_lp(sys_, "c", 2.0, level=1)
        assert al1.takes_by_name() == {"b": pytest.approx(2.0)}
        with pytest.raises(InsufficientResourcesError):
            allocate_lp(sys_, "c", 3.0, level=1)
        # level 2: transitive a->b->c flow adds 8 * 0.25 = 2
        al2 = allocate_lp(sys_, "c", 4.0, level=2)
        assert al2.satisfied == pytest.approx(4.0)


class TestConstraints:
    def test_takes_respect_flow_bounds(self):
        sys_ = complete_structure(5, 0.1, capacity=2.0)
        al = allocate_lp(sys_, "isp0", 2.5)
        U = sys_.u(None)
        a = sys_.index("isp0")
        for i in range(5):
            bound = sys_.V[a] if i == a else min(U[i, a], sys_.V[i])
            assert al.take[i] <= bound + 1e-9

    def test_conservation(self):
        sys_ = complete_structure(5, 0.1, capacity=2.0)
        al = allocate_lp(sys_, "isp0", 2.5)
        np.testing.assert_allclose(sys_.V - al.take, al.new_V, atol=1e-9)
        assert al.take.sum() == pytest.approx(2.5)

    def test_theta_matches_capacity_drops(self):
        sys_ = complete_structure(5, 0.1, capacity=2.0)
        al = allocate_lp(sys_, "isp0", 2.5)
        a = sys_.index("isp0")
        drops = np.delete(sys_.capacities() - al.new_C, a)
        assert al.theta == pytest.approx(drops.max(), abs=1e-6)

    def test_local_take_free_when_nobody_depends_on_requester(self):
        """If no agreement draws on the requester's resources, serving
        locally perturbs nobody (theta = 0)."""
        S = np.array([[0.0, 0.0], [0.5, 0.0]])  # only b shares *with* a
        sys_ = AgreementSystem(["a", "b"], np.array([10.0, 4.0]), S)
        al = allocate_lp(sys_, "a", 10.0)
        assert al.local_take == pytest.approx(10.0)
        assert al.theta == pytest.approx(0.0, abs=1e-9)

    def test_local_take_perturbs_dependents(self):
        """In two_node, b's capacity is fed by a's agreement, so even a
        purely local allocation by a drops C_b — theta reflects that."""
        sys_ = two_node()
        al = allocate_lp(sys_, "a", 10.0)
        assert al.local_take == pytest.approx(10.0)
        assert al.theta == pytest.approx(5.0)  # C_b: 5 -> 0


class TestFormulationsAgree:
    @pytest.mark.parametrize("objective", ["others", "all"])
    def test_reduced_equals_faithful(self, objective):
        sys_ = complete_structure(6, 0.15, capacity=1.5)
        for amount in (0.5, 2.0, 3.0):
            r = allocate_lp(sys_, "isp2", amount, formulation="reduced",
                            objective=objective)
            f = allocate_lp(sys_, "isp2", amount, formulation="faithful",
                            objective=objective)
            assert r.theta == pytest.approx(f.theta, abs=1e-6)

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_formulations_agree_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        S = rng.random((n, n)) * (0.9 / n)
        np.fill_diagonal(S, 0.0)
        V = rng.random(n) * 5
        sys_ = AgreementSystem([f"p{i}" for i in range(n)], V, S)
        a = int(rng.integers(0, n))
        cap = sys_.capacity_of(f"p{a}")
        x = float(rng.random() * cap)
        r = allocate_lp(sys_, f"p{a}", x, formulation="reduced")
        f = allocate_lp(sys_, f"p{a}", x, formulation="faithful")
        assert r.theta == pytest.approx(f.theta, abs=1e-6)
        assert r.satisfied == pytest.approx(f.satisfied)

    def test_backends_agree(self):
        sys_ = complete_structure(5, 0.1, capacity=1.5)
        a = allocate_lp(sys_, "isp1", 2.0, backend="scipy")
        b = allocate_lp(sys_, "isp1", 2.0, formulation="reduced",
                        backend="simplex")
        assert a.theta == pytest.approx(b.theta, abs=1e-6)

    def test_unknown_formulation(self):
        with pytest.raises(LPError, match="formulation"):
            allocate_lp(two_node(), "a", 1.0, formulation="quantum")

    def test_unknown_objective(self):
        with pytest.raises(LPError, match="objective"):
            allocate_lp(two_node(), "a", 1.0, objective="everything")


class TestObjectiveVariants:
    def test_all_objective_spreads_load(self):
        """Under 'all', the requester's own drop also counts, so remote
        borrowing (which drops C_A by less than x) becomes attractive and
        the take is spread."""
        sys_ = complete_structure(10, 0.1, capacity=1.0)
        al = allocate_lp(sys_, "isp0", 1.5, objective="all")
        # all donors participate roughly equally (0.15 each)
        assert np.all(al.take > 0.1)

    def test_others_objective_prefers_local(self):
        sys_ = complete_structure(10, 0.1, capacity=1.0)
        al = allocate_lp(sys_, "isp0", 1.5, objective="others")
        assert al.local_take == pytest.approx(1.0)

    def test_theta_nonnegative_and_bounded(self):
        sys_ = loop_structure(8, 0.8, skip=3, capacity=2.0)
        for x in (0.5, 1.5, 3.0):
            al = allocate_lp(sys_, "isp4", x, partial=True)
            assert 0.0 <= al.theta <= al.satisfied + 1e-6


class TestMinimalPerturbation:
    def test_lp_beats_greedy_on_theta(self):
        """The LP optimises theta; greedy must never beat it."""
        from repro.allocation import allocate_greedy

        rng = np.random.default_rng(3)
        for _ in range(10):
            n = 6
            S = rng.random((n, n)) * 0.12
            np.fill_diagonal(S, 0.0)
            V = rng.random(n) * 4
            sys_ = AgreementSystem([f"p{i}" for i in range(n)], V, S)
            a = int(rng.integers(0, n))
            x = 0.8 * sys_.capacity_of(f"p{a}")
            lp = allocate_lp(sys_, f"p{a}", x)
            gr = allocate_greedy(sys_, f"p{a}", x)
            assert lp.theta <= gr.theta + 1e-6
