"""Tests for multiple views of one resource (the future-work extension)."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem
from repro.allocation.views import ViewSet, allocate_views
from repro.errors import AllocationError, InsufficientResourcesError


def make_viewset(read_share=0.5, write_share=0.2, base=(10.0, 10.0)):
    """Two principals; disk bandwidth viewed as read + write.

    ``p0`` shares read bandwidth generously and write bandwidth
    grudgingly — different terms over the same physical disk.
    """
    names = ["p0", "p1"]
    base = np.asarray(base, float)
    read = AgreementSystem(
        names, base.copy(), np.array([[0.0, read_share], [0.0, 0.0]])
    )
    write = AgreementSystem(
        names, base.copy(), np.array([[0.0, write_share], [0.0, 0.0]])
    )
    return ViewSet("disk-bw", {"read": read, "write": write}, base)


class TestViewSetValidation:
    def test_requires_views(self):
        with pytest.raises(AllocationError, match="no views"):
            ViewSet("x", {}, np.zeros(1))

    def test_principal_lists_must_match(self):
        a = AgreementSystem(["p0", "p1"], np.ones(2), np.zeros((2, 2)))
        b = AgreementSystem(["q0", "q1"], np.ones(2), np.zeros((2, 2)))
        with pytest.raises(AllocationError, match="principal list"):
            ViewSet("x", {"a": a, "b": b}, np.ones(2))

    def test_base_shape(self):
        a = AgreementSystem(["p0", "p1"], np.ones(2), np.zeros((2, 2)))
        with pytest.raises(AllocationError, match="length"):
            ViewSet("x", {"a": a}, np.ones(3))


class TestJointAllocation:
    def test_per_view_terms_respected(self):
        vs = make_viewset()
        plans = allocate_views(vs, "p1", {"read": 12.0, "write": 3.0})
        # read: p0 grants at most 0.5*10 = 5; write: at most 0.2*10 = 2.
        assert plans["read"].takes_by_name().get("p0", 0.0) <= 5.0 + 1e-9
        assert plans["write"].takes_by_name().get("p0", 0.0) <= 2.0 + 1e-9
        assert plans["read"].satisfied == pytest.approx(12.0)
        assert plans["write"].satisfied == pytest.approx(3.0)
        # p1's own disk serves both views but only once.
        local = sum(p.takes_by_name().get("p1", 0.0) for p in plans.values())
        assert local <= 10.0 + 1e-9

    def test_shared_base_capacity_binds(self):
        """Each view alone fits, but the one physical disk cannot serve both."""
        vs = make_viewset(read_share=0.5, write_share=0.5)
        # 10 + 8 = 18 <= 20 total base: feasible, every donor within base.
        plans = allocate_views(vs, "p1", {"read": 10.0, "write": 8.0})
        for donor in ("p0", "p1"):
            joint = sum(p.takes_by_name().get(donor, 0.0) for p in plans.values())
            assert joint <= 10.0 + 1e-9

        # read 12 and write 12 are EACH within p1's per-view capacity (15),
        # but 24 exceeds the 20 units of physical disk underneath.
        with pytest.raises(InsufficientResourcesError):
            allocate_views(vs, "p1", {"read": 12.0, "write": 12.0})

    def test_single_view_matches_lp_allocator(self):
        from repro.allocation import allocate_lp

        vs = make_viewset()
        plans = allocate_views(vs, "p1", {"read": 14.0})
        direct = allocate_lp(vs.systems["read"], "p1", 14.0)
        np.testing.assert_allclose(plans["read"].take, direct.take, atol=1e-8)

    def test_per_view_capacity_error(self):
        vs = make_viewset()
        with pytest.raises(InsufficientResourcesError) as exc:
            allocate_views(vs, "p1", {"write": 13.0})  # cap = 12
        assert exc.value.available == pytest.approx(12.0)

    def test_unknown_view(self):
        vs = make_viewset()
        with pytest.raises(AllocationError, match="unknown views"):
            allocate_views(vs, "p1", {"erase": 1.0})

    def test_empty_request(self):
        vs = make_viewset()
        assert allocate_views(vs, "p1", {"read": 0.0}) == {}

    def test_takes_sum_to_requests(self):
        vs = make_viewset()
        plans = allocate_views(vs, "p0", {"read": 6.0, "write": 3.0})
        assert plans["read"].satisfied == pytest.approx(6.0)
        assert plans["write"].satisfied == pytest.approx(3.0)
