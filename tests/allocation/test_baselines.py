"""Tests for the endpoint (Figure 13) and greedy baseline allocators."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem, complete_structure, distance_decay_structure
from repro.allocation import allocate_endpoint, allocate_greedy, allocate_lp
from repro.errors import InsufficientResourcesError


class TestEndpoint:
    def test_local_first(self):
        sys_ = complete_structure(5, 0.1, capacity=2.0)
        al = allocate_endpoint(sys_, "isp0", 1.5)
        assert al.local_take == pytest.approx(1.5)
        assert al.scheme == "endpoint"

    def test_proportional_split(self):
        """Figure 13's rule: redirected work proportional to agreement size."""
        sys_ = distance_decay_structure(4, shares=(0.2, 0.1), capacity=1.0)
        al = allocate_endpoint(sys_, "isp0", 1.0 + 0.25)
        takes = al.take.copy()
        takes[0] = 0.0
        # weights: isp1 0.2, isp2 0.1, isp3 0.2 (circular distances 1,2,1)
        w = np.array([0.0, 0.2, 0.1, 0.2])
        expected = 0.25 * w / w.sum()
        np.testing.assert_allclose(takes, expected, atol=1e-9)

    def test_blind_to_availability(self):
        """The endpoint scheme keeps sending to a drained donor."""
        sys_ = distance_decay_structure(4, shares=(0.2, 0.1), capacity=1.0)
        drained = sys_.with_capacities(np.array([1.0, 0.0, 1.0, 1.0]))
        al = allocate_endpoint(drained, "isp0", 1.2)
        # weight of isp1 is S*V = 0.2*0 = 0 -> nothing lands there,
        # but the nominal variant (as used by EndpointPolicy) is capacity
        # blind; here V=0 so direct quantity is 0 as well.
        assert al.take[1] == pytest.approx(0.0)

    def test_cannot_use_transitive_chains(self):
        # a -> b -> c: c has no direct donors.
        S = np.array([[0, 0.5, 0], [0, 0, 0.5], [0, 0, 0]], dtype=float)
        sys_ = AgreementSystem(["a", "b", "c"], np.array([8.0, 0.0, 0.0]), S)
        al = allocate_endpoint(sys_, "c", 1.0)
        assert al.satisfied == pytest.approx(0.0)
        # The LP, by contrast, satisfies it through the chain.
        lp = allocate_lp(sys_, "c", 1.0)
        assert lp.satisfied == pytest.approx(1.0)

    def test_partial_false_raises(self):
        S = np.zeros((2, 2))
        sys_ = AgreementSystem(["a", "b"], np.array([1.0, 1.0]), S)
        with pytest.raises(InsufficientResourcesError):
            allocate_endpoint(sys_, "a", 2.0, partial=False)

    def test_caps_at_agreement_quantity(self):
        sys_ = complete_structure(3, 0.1, capacity=1.0)
        al = allocate_endpoint(sys_, "isp0", 3.0)
        # each donor grants at most 0.1 * 1.0
        assert al.take[1] <= 0.1 + 1e-9
        assert al.take[2] <= 0.1 + 1e-9
        assert al.satisfied == pytest.approx(1.2)


class TestGreedy:
    def test_local_first(self):
        sys_ = complete_structure(5, 0.1, capacity=2.0)
        al = allocate_greedy(sys_, "isp0", 1.0)
        assert al.local_take == pytest.approx(1.0)

    def test_most_available_donor_first(self):
        S = np.array(
            [[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [0.5, 0.0, 0.0]], dtype=float
        )
        sys_ = AgreementSystem(["a", "b", "c"], np.array([0.0, 2.0, 6.0]), S)
        al = allocate_greedy(sys_, "a", 2.0)
        # c offers 3.0, b offers 1.0; greedy takes all from c first.
        assert al.take[2] == pytest.approx(2.0)
        assert al.take[1] == pytest.approx(0.0)

    def test_spills_to_next_donor(self):
        S = np.array(
            [[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [0.5, 0.0, 0.0]], dtype=float
        )
        sys_ = AgreementSystem(["a", "b", "c"], np.array([0.0, 2.0, 6.0]), S)
        al = allocate_greedy(sys_, "a", 3.5)
        assert al.take[2] == pytest.approx(3.0)
        assert al.take[1] == pytest.approx(0.5)

    def test_insufficient_raises(self):
        sys_ = complete_structure(3, 0.1, capacity=1.0)
        with pytest.raises(InsufficientResourcesError):
            allocate_greedy(sys_, "isp0", 5.0)

    def test_partial(self):
        sys_ = complete_structure(3, 0.1, capacity=1.0)
        al = allocate_greedy(sys_, "isp0", 5.0, partial=True)
        # 1 own + 2 donors at (0.1 direct + 0.1*0.1 transitive) each.
        assert al.satisfied == pytest.approx(1.22)

    def test_respects_level(self):
        S = np.array([[0, 0.5, 0], [0, 0, 0.5], [0, 0, 0]], dtype=float)
        sys_ = AgreementSystem(["a", "b", "c"], np.array([8.0, 4.0, 0.0]), S)
        al = allocate_greedy(sys_, "c", 4.0, level=1, partial=True)
        assert al.satisfied == pytest.approx(2.0)  # only b reachable
