"""Tests for the cost-aware allocator."""

import numpy as np
import pytest

from repro.agreements import complete_structure
from repro.allocation import allocate_lp
from repro.allocation.costaware import allocate_cost_aware
from repro.errors import InfeasibleAllocationError, InsufficientResourcesError


@pytest.fixture
def system():
    return complete_structure(4, share=0.2, capacity=2.0)


class TestCostObjective:
    def test_prefers_cheap_donors(self, system):
        # isp0 requests beyond its own V; donors isp1 (cheap) vs isp2/3 (dear)
        costs = [0.0, 1.0, 10.0, 10.0]
        plan = allocate_cost_aware(system, "isp0", 2.4, costs)
        assert plan.satisfied == pytest.approx(2.4)
        assert plan.take[1] > 0
        assert plan.take[2] == pytest.approx(0.0, abs=1e-9)
        assert plan.take[3] == pytest.approx(0.0, abs=1e-9)

    def test_free_local_used_first(self, system):
        costs = [0.0, 1.0, 1.0, 1.0]
        plan = allocate_cost_aware(system, "isp0", 1.5, costs)
        assert plan.local_take == pytest.approx(1.5)
        assert plan.cost == pytest.approx(0.0)

    def test_cost_reported(self, system):
        costs = [0.0, 2.0, 3.0, 4.0]
        plan = allocate_cost_aware(system, "isp0", 2.4, costs)
        expected = float(np.dot(costs, plan.take))
        assert plan.cost == pytest.approx(expected)

    def test_respects_flow_bounds(self, system):
        costs = [0.0, 0.0, 100.0, 100.0]
        plan = allocate_cost_aware(system, "isp0", 2.8, costs)
        U = system.u(None)
        # cheap donor capped by its agreement bound; overflow goes to others
        assert plan.take[1] <= min(U[1, 0], system.V[1]) + 1e-9
        assert plan.take[2] + plan.take[3] > 0

    def test_insufficient_raises(self, system):
        with pytest.raises(InsufficientResourcesError):
            allocate_cost_aware(system, "isp0", 100.0, np.zeros(4))

    def test_partial(self, system):
        plan = allocate_cost_aware(
            system, "isp0", 100.0, np.zeros(4), partial=True
        )
        assert plan.satisfied == pytest.approx(system.capacity_of("isp0"))

    def test_bad_cost_shape(self, system):
        with pytest.raises(InfeasibleAllocationError):
            allocate_cost_aware(system, "isp0", 1.0, [1.0, 2.0])

    def test_zero_request(self, system):
        plan = allocate_cost_aware(system, "isp0", 0.0, np.zeros(4))
        assert plan.satisfied == 0.0


class TestFairnessCap:
    def test_theta_cap_enforced(self, system):
        costs = [0.0, 1.0, 10.0, 10.0]
        uncapped = allocate_cost_aware(system, "isp0", 2.4, costs)
        # The tightest feasible cap is the perturbation LP's optimum.
        best_theta = allocate_lp(system, "isp0", 2.4).theta
        cap = best_theta * 1.05
        assert cap < uncapped.theta  # the cap actually binds here
        capped = allocate_cost_aware(
            system, "isp0", 2.4, costs, theta_cap=cap
        )
        assert capped.theta <= cap + 1e-6
        assert capped.cost >= uncapped.cost - 1e-9  # fairness costs money

    def test_impossible_cap(self, system):
        with pytest.raises(InfeasibleAllocationError):
            allocate_cost_aware(
                system, "isp0", 2.8, np.ones(4), theta_cap=1e-6
            )

    def test_lexicographic_matches_lp_theta(self, system):
        costs = [0.0, 1.0, 2.0, 3.0]
        lex = allocate_cost_aware(
            system, "isp0", 2.4, costs, lexicographic=True
        )
        base = allocate_lp(system, "isp0", 2.4)
        assert lex.theta <= base.theta + 1e-6
        # among least-perturbing plans, the cheap donor is preferred
        assert lex.take[1] >= lex.take[3] - 1e-9
