"""Tests for the multigrid hierarchical allocator (Section 3.2)."""

import numpy as np
import pytest

from repro.agreements import hierarchical_structure
from repro.allocation import allocate_hierarchical, allocate_lp
from repro.allocation.hierarchical import coarsen
from repro.errors import AllocationError, InsufficientResourcesError


@pytest.fixture
def hier():
    return hierarchical_structure(
        3, 4, intra_share_total=0.6, inter_share=0.1, capacity=1.0
    )


class TestCoarsen:
    def test_group_capacities_sum(self, hier):
        coarse = coarsen(hier, hier.groups)
        np.testing.assert_allclose(coarse.V, [4.0, 4.0, 4.0])

    def test_inter_group_shares(self, hier):
        coarse = coarsen(hier, hier.groups)
        # Only leaders link groups: share 0.1, leader holds 1/4 of capacity.
        assert coarse.S[0, 1] == pytest.approx(0.1 * 1.0 / 4.0)
        assert coarse.S[0, 2] == pytest.approx(0.0)

    def test_intra_group_edges_dropped(self, hier):
        coarse = coarsen(hier, hier.groups)
        assert not np.any(np.diag(coarse.S))

    def test_empty_group_handled(self, hier):
        groups = [list(range(12)), []]
        coarse = coarsen(hier, groups)
        assert coarse.V.tolist() == [12.0, 0.0]


class TestAllocate:
    def test_small_request_stays_in_group(self, hier):
        al = allocate_hierarchical(hier, "node0", 0.5)
        assert al.satisfied == pytest.approx(0.5)
        assert set(np.nonzero(al.take)[0]) <= set(hier.groups[0])

    def test_group_spanning_request(self, hier):
        al = allocate_hierarchical(hier, "node0", 2.2)
        assert al.satisfied == pytest.approx(2.2, rel=1e-6)
        outside = [i for i in np.nonzero(al.take)[0] if i not in hier.groups[0]]
        assert outside  # some contribution crossed group boundaries

    def test_conservation(self, hier):
        al = allocate_hierarchical(hier, "node5", 2.0)
        np.testing.assert_allclose(hier.V - al.take, al.new_V, atol=1e-9)

    def test_impossible_request_raises(self, hier):
        with pytest.raises(InsufficientResourcesError):
            allocate_hierarchical(hier, "node0", 1000.0)

    def test_groups_required(self, hier):
        plain = hier.with_capacities(hier.V)  # clone has no .groups
        with pytest.raises(AllocationError, match="group partition"):
            allocate_hierarchical(plain, "node0", 0.5)

    def test_explicit_groups_accepted(self, hier):
        plain = hier.with_capacities(hier.V)
        al = allocate_hierarchical(plain, "node0", 0.5, groups=hier.groups)
        assert al.satisfied == pytest.approx(0.5)

    def test_unknown_principal(self, hier):
        with pytest.raises(Exception):
            allocate_hierarchical(hier, "ghost", 0.5)

    def test_comparable_to_flat_lp(self, hier):
        """Multigrid is a refinement heuristic: it must satisfy the same
        request the flat LP does, with theta in the same ballpark."""
        flat = allocate_lp(hier, "node0", 1.5)
        multi = allocate_hierarchical(hier, "node0", 1.5)
        assert multi.satisfied == pytest.approx(flat.satisfied, rel=1e-6)
        assert multi.theta <= flat.theta * 5 + 0.5
