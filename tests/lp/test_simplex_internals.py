"""Edge-case tests targeting the from-scratch simplex's standard-form
transformation (shifted / reflected / split variables, redundant rows,
degenerate pivoting)."""

import numpy as np
import pytest

from repro.errors import LPSolverError
from repro.lp import LinearProgram, LPStatus
from repro.lp.simplex import solve_simplex


class TestVariableTransforms:
    def test_shifted_variable(self):
        # x in [2, 5], minimise x -> 2
        lp = LinearProgram()
        x = lp.variable("x", lower=2.0, upper=5.0)
        lp.minimize(x)
        res = solve_simplex(lp)
        assert res.objective == pytest.approx(2.0)
        assert res.x[0] == pytest.approx(2.0)

    def test_reflected_variable(self):
        # x <= 4 with no lower bound, maximise x -> 4 (internally x = 4 - y)
        lp = LinearProgram()
        x = lp.variable("x", lower=-np.inf, upper=4.0)
        lp.maximize(x)
        res = lp.solve(backend="simplex")
        assert res.objective == pytest.approx(4.0)

    def test_reflected_variable_in_constraint(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-np.inf, upper=10.0)
        y = lp.variable("y")
        lp.add_constraint(x + y >= 3)
        lp.minimize(y - x)
        res = solve_simplex(lp)
        assert res.ok
        assert res.x[0] == pytest.approx(10.0)
        assert res.objective == pytest.approx(-10.0)

    def test_split_free_variable_negative_optimum(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-np.inf)
        lp.add_constraint(x >= -3)
        lp.add_constraint(x <= 7)
        lp.minimize(x)
        res = solve_simplex(lp)
        assert res.objective == pytest.approx(-3.0)

    def test_mixed_variable_kinds(self):
        lp = LinearProgram()
        a = lp.variable("a", lower=1.0, upper=2.0)  # shifted + ub row
        b = lp.variable("b", lower=-np.inf)  # split
        c = lp.variable("c", lower=-np.inf, upper=0.0)  # reflected
        lp.add_constraint(a + b + c == 1.0)
        lp.minimize(b - c + a)
        res = lp.solve(backend="simplex")
        assert res.ok
        # feasibility of the returned point
        assert res["a"] + res["b"] + res["c"] == pytest.approx(1.0)
        # cross-check the optimum with scipy
        ref = lp.solve(backend="scipy")
        assert res.objective == pytest.approx(ref.objective, abs=1e-8)


class TestDegenerateCases:
    def test_no_constraints_bounded(self):
        lp = LinearProgram()
        lp.variable("x", upper=3.0)
        lp.minimize(lp.get_variable("x"))
        res = solve_simplex(lp)
        assert res.objective == pytest.approx(0.0)

    def test_no_constraints_unbounded(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.minimize(-x)
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_redundant_equality_rows(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        lp.add_constraint(x + y == 2)
        lp.add_constraint(2 * x + 2 * y == 4)
        lp.add_constraint(3 * x + 3 * y == 6)
        lp.minimize(x)
        res = lp.solve(backend="simplex")
        assert res.ok
        assert res["x"] == pytest.approx(0.0)
        assert res["y"] == pytest.approx(2.0)

    def test_degenerate_vertex_no_cycling(self):
        # Classic degenerate LP; Bland's rule must terminate.
        lp = LinearProgram()
        x1, x2, x3 = (lp.variable(f"x{i}") for i in range(3))
        lp.add_constraint(0.5 * x1 - 5.5 * x2 - 2.5 * x3 <= 0)
        lp.add_constraint(0.5 * x1 - 1.5 * x2 - 0.5 * x3 <= 0)
        lp.add_constraint(x1 <= 1)
        lp.add_constraint(x3 <= 1)
        lp.minimize(-0.75 * x1 + 150 * x2 - 0.02 * x3)
        res = lp.solve(backend="simplex")
        assert res.ok
        ref = lp.solve(backend="scipy")
        assert res.objective == pytest.approx(ref.objective, abs=1e-6)

    def test_zero_rhs_equalities(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y", upper=5)
        lp.add_constraint(x - y == 0)
        lp.maximize(x + y)
        res = lp.solve(backend="simplex")
        assert res.objective == pytest.approx(10.0)

    def test_iteration_limit(self):
        lp = LinearProgram()
        xs = [lp.variable(f"x{i}") for i in range(6)]
        expr = xs[0] * 1.0
        for v in xs[1:]:
            expr = expr + v
        lp.add_constraint(expr <= 100)
        lp.minimize(-expr)
        with pytest.raises(LPSolverError, match="exceeded"):
            solve_simplex(lp, max_iter=0)

    def test_equality_with_negative_rhs(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-10.0)
        lp.add_constraint(x == -4)
        lp.minimize(x)
        res = lp.solve(backend="simplex")
        assert res.ok
        assert res["x"] == pytest.approx(-4.0)

    def test_iterations_reported(self):
        lp = LinearProgram()
        x, y = lp.variable("x", upper=4), lp.variable("y", upper=4)
        lp.add_constraint(x + y <= 6)
        lp.maximize(x + 2 * y)
        res = solve_simplex(lp)
        assert res.ok
        assert res.iterations > 0
