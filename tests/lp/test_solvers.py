"""Backend tests: scipy/HiGHS vs the from-scratch simplex.

The two backends must agree on status and optimum for every model; the
property test generates random feasible LPs and cross-checks them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram, LPStatus

BACKENDS = ("scipy", "simplex")


def _both(lp):
    return {b: lp.solve(backend=b) for b in BACKENDS}


class TestKnownOptima:
    def test_textbook_max(self):
        # max 3x + 4y st x+2y<=14, 3x-y>=0, x-y<=2  -> 34 at (6, 4)
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        lp.add_constraint(x + 2 * y <= 14)
        lp.add_constraint(3 * x - y >= 0)
        lp.add_constraint(x - y <= 2)
        lp.maximize(3 * x + 4 * y)
        for backend, res in _both(lp).items():
            assert res.ok, backend
            assert res.objective == pytest.approx(34.0)
            assert res["x"] == pytest.approx(6.0)
            assert res["y"] == pytest.approx(4.0)

    def test_degenerate_feasibility_only(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1)
        lp.add_constraint(x >= 0.5)
        for backend, res in _both(lp).items():
            assert res.ok, backend
            assert 0.5 - 1e-9 <= res["x"] <= 1 + 1e-9

    def test_negative_lower_bounds(self):
        lp = LinearProgram()
        a = lp.variable("a", lower=-5, upper=5)
        b = lp.variable("b", upper=10)
        lp.add_constraint(a + b == 3)
        lp.minimize(2 * a + b)
        for backend, res in _both(lp).items():
            assert res.objective == pytest.approx(-2.0), backend
            assert res["a"] == pytest.approx(-5.0)

    def test_free_variable(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-np.inf)
        lp.add_constraint(x >= -7)
        lp.minimize(x)
        for backend, res in _both(lp).items():
            assert res.objective == pytest.approx(-7.0), backend

    def test_upper_bounded_only_variable(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-np.inf, upper=4)
        lp.maximize(x)
        for backend, res in _both(lp).items():
            assert res.objective == pytest.approx(4.0), backend

    def test_equality_system(self):
        # x + y = 10, x - y = 4 -> (7, 3)
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        lp.add_constraint(x + y == 10)
        lp.add_constraint(x - y == 4)
        lp.minimize(x)
        for backend, res in _both(lp).items():
            assert res["x"] == pytest.approx(7.0), backend
            assert res["y"] == pytest.approx(3.0), backend


class TestStatuses:
    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1)
        lp.add_constraint(x >= 2)
        lp.minimize(x)
        for backend, res in _both(lp).items():
            assert res.status is LPStatus.INFEASIBLE, backend
            assert not res.ok

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.minimize(-x)
        for backend, res in _both(lp).items():
            assert res.status is LPStatus.UNBOUNDED, backend

    def test_infeasible_equalities(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.add_constraint(x == 1)
        lp.add_constraint(x == 2)
        lp.minimize(x)
        for backend, res in _both(lp).items():
            assert res.status is LPStatus.INFEASIBLE, backend

    def test_redundant_equalities_ok(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        lp.add_constraint(x + y == 4)
        lp.add_constraint(2 * x + 2 * y == 8)  # redundant
        lp.minimize(x)
        for backend, res in _both(lp).items():
            assert res.ok, backend
            assert res["x"] == pytest.approx(0.0)


@st.composite
def random_feasible_lp(draw):
    """Random LP with a known feasible point (so never infeasible) and
    box-bounded variables (so never unbounded)."""
    n = draw(st.integers(2, 6))
    m = draw(st.integers(1, 6))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    x0 = rng.uniform(0, 5, size=n)  # feasible point
    A = rng.uniform(-2, 2, size=(m, n))
    slack = rng.uniform(0.1, 3.0, size=m)
    b = A @ x0 + slack
    c = rng.uniform(-3, 3, size=n)
    ub = x0 + rng.uniform(0.5, 5.0, size=n)
    return n, m, A, b, c, ub


class TestCrossValidation:
    @given(random_feasible_lp())
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_on_optimum(self, problem):
        n, m, A, b, c, ub = problem
        lp = LinearProgram()
        xs = [lp.variable(f"x{i}", lower=0.0, upper=float(ub[i])) for i in range(n)]
        for r in range(m):
            expr = xs[0] * float(A[r, 0])
            for i in range(1, n):
                expr = expr + xs[i] * float(A[r, i])
            lp.add_constraint(expr <= float(b[r]))
        obj = xs[0] * float(c[0])
        for i in range(1, n):
            obj = obj + xs[i] * float(c[i])
        lp.minimize(obj)
        res_scipy = lp.solve(backend="scipy")
        res_simplex = lp.solve(backend="simplex")
        assert res_scipy.ok and res_simplex.ok
        assert res_scipy.objective == pytest.approx(res_simplex.objective, abs=1e-6)
        # Both solutions must be feasible.
        for res in (res_scipy, res_simplex):
            x = res.x
            assert np.all(x >= -1e-8)
            assert np.all(x <= ub + 1e-8)
            assert np.all(A @ x <= b + 1e-6)
