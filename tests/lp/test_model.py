"""Tests for the LP model builder (expressions, constraints, normalisation)."""

import math

import numpy as np
import pytest

from repro.errors import LPError
from repro.lp import LinearProgram
from repro.lp.expr import LinExpr, Relation


class TestVariables:
    def test_variable_creation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert x.name == "x"
        assert x.index == 0
        assert lp.num_variables == 1

    def test_default_bounds_nonnegative(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert x.lower == 0.0
        assert math.isinf(x.upper)

    def test_custom_bounds(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=-3.0, upper=7.0)
        assert (x.lower, x.upper) == (-3.0, 7.0)

    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.variable("x")
        with pytest.raises(LPError, match="duplicate"):
            lp.variable("x")

    def test_empty_bound_interval_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPError, match="empty bound"):
            lp.variable("x", lower=2.0, upper=1.0)

    def test_variables_batch(self):
        lp = LinearProgram()
        vs = lp.variables("d", 5)
        assert [v.name for v in vs] == ["d0", "d1", "d2", "d3", "d4"]

    def test_get_variable(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert lp.get_variable("x") is x
        with pytest.raises(LPError):
            lp.get_variable("nope")


class TestExpressions:
    def test_addition_and_scaling(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        expr = (2 * x + y * 3 + 1.5)._as_expr()
        assert expr.coeffs == {0: 2.0, 1: 3.0}
        assert expr.const == 1.5

    def test_subtraction(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        expr = (x - y)._as_expr()
        assert expr.coeffs == {0: 1.0, 1: -1.0}

    def test_rsub(self):
        lp = LinearProgram()
        x = lp.variable("x")
        expr = (5 - x)._as_expr()
        assert expr.coeffs == {0: -1.0}
        assert expr.const == 5.0

    def test_negation_and_division(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert (-x)._as_expr().coeffs == {0: -1.0}
        assert (x / 4)._as_expr().coeffs == {0: 0.25}

    def test_comparison_builds_relation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        rel = x <= 5
        assert isinstance(rel, Relation)
        assert rel.sense == "<="

    def test_terms_combine(self):
        lp = LinearProgram()
        x = lp.variable("x")
        expr = (x + x + x)._as_expr()
        assert expr.coeffs == {0: 3.0}


class TestConstraints:
    def test_ge_normalised_to_le(self):
        lp = LinearProgram()
        x = lp.variable("x")
        con = lp.add_constraint(x >= 3, name="c")
        assert con.sense == "<="
        assert con.coeffs == {0: -1.0}
        assert con.bound == -3.0

    def test_equality_kept(self):
        lp = LinearProgram()
        x = lp.variable("x")
        con = lp.add_constraint(x == 3)
        assert con.sense == "=="

    def test_constant_terms_move_to_bound(self):
        lp = LinearProgram()
        x = lp.variable("x")
        con = lp.add_constraint(x + 2 <= 5)
        assert con.bound == 3.0

    def test_trivially_infeasible_constant_rejected(self):
        lp = LinearProgram()
        x = lp.variable("x")
        with pytest.raises(LPError, match="trivially infeasible"):
            lp.add_constraint(x - x >= 1)

    def test_trivially_true_constant_accepted(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.add_constraint(x - x <= 1)  # 0 <= 1, fine
        assert lp.num_constraints == 1

    def test_non_relation_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPError, match="comparison"):
            lp.add_constraint(True)  # type: ignore[arg-type]


class TestToArrays:
    def test_array_shapes(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x == 1)
        lp.minimize(x + 2 * y)
        c, A_ub, b_ub, A_eq, b_eq, bounds, const = lp.to_arrays()
        assert c.tolist() == [1.0, 2.0]
        assert A_ub.shape == (1, 2)
        assert A_eq.shape == (1, 2)
        assert bounds == [(0.0, math.inf)] * 2
        assert const == 0.0

    def test_max_negates_costs(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=2)
        lp.maximize(3 * x + 1)
        c, *_rest, const = lp.to_arrays()
        assert c.tolist() == [-3.0]
        assert const == -1.0

    def test_objective_constant_reported(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=5)
        lp.minimize(x + 10)
        res = lp.solve()
        assert res.ok
        assert res.objective == pytest.approx(10.0)

    def test_max_objective_sense(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=5)
        lp.maximize(2 * x + 1)
        for backend in ("scipy", "simplex"):
            res = lp.solve(backend=backend)
            assert res.objective == pytest.approx(11.0)

    def test_unknown_backend(self):
        lp = LinearProgram()
        lp.variable("x")
        with pytest.raises(LPError, match="unknown LP backend"):
            lp.solve(backend="cplex")


class TestResultAccess:
    def test_named_access(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=3)
        lp.maximize(x)
        res = lp.solve()
        assert res["x"] == pytest.approx(3.0)
        assert res.as_dict() == {"x": pytest.approx(3.0)}

    def test_missing_name_raises(self):
        lp = LinearProgram()
        lp.variable("x", upper=3)
        lp.minimize(LinExpr())
        res = lp.solve()
        with pytest.raises(KeyError):
            res["zzz"]
