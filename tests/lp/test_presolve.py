"""Tests for LP presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LPInfeasibleError
from repro.lp import LinearProgram, LPStatus
from repro.lp.presolve import presolve, solve_with_presolve


class TestReductions:
    def test_fixed_variable_substituted(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=3.0, upper=3.0)
        y = lp.variable("y", upper=10.0)
        lp.add_constraint(x + y <= 8)
        lp.minimize(-y)
        reduced, restore = presolve(lp)
        assert reduced.num_variables == 1
        assert restore.fixed == {0: 3.0}
        res = solve_with_presolve(lp)
        assert res["x"] == pytest.approx(3.0)
        assert res["y"] == pytest.approx(5.0)

    def test_singleton_equality_fixes(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=10.0)
        y = lp.variable("y", upper=10.0)
        lp.add_constraint(2 * x == 4)
        lp.add_constraint(x + y <= 5)
        lp.minimize(-x - y)
        reduced, restore = presolve(lp)
        assert restore.fixed == {0: pytest.approx(2.0)}
        res = solve_with_presolve(lp)
        assert res["x"] == pytest.approx(2.0)
        assert res["y"] == pytest.approx(3.0)

    def test_singleton_inequality_tightens(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=100.0)
        lp.add_constraint(x <= 7)
        lp.maximize(x)
        reduced, restore = presolve(lp)
        assert restore.stats.tightened_bounds >= 1
        assert solve_with_presolve(lp).objective == pytest.approx(7.0)

    def test_redundant_row_dropped(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1.0)
        y = lp.variable("y", upper=1.0)
        lp.add_constraint(x + y <= 100)  # can never bind
        lp.maximize(x + y)
        reduced, restore = presolve(lp)
        assert reduced.num_constraints == 0
        assert restore.stats.dropped_rows == 1

    def test_infeasible_singleton_detected(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1.0)
        lp.add_constraint(x == 5)
        lp.minimize(x)
        with pytest.raises(LPInfeasibleError):
            presolve(lp)
        assert solve_with_presolve(lp).status is LPStatus.INFEASIBLE

    def test_infeasible_constant_row(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=2.0, upper=2.0)
        lp.add_constraint(x <= 1)
        lp.minimize(x)
        with pytest.raises(LPInfeasibleError):
            presolve(lp)

    def test_crossed_bounds_detected(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=0.0, upper=10.0)
        lp.add_constraint(x <= 3)
        lp.add_constraint(-x <= -5)  # x >= 5
        lp.minimize(x)
        with pytest.raises(LPInfeasibleError):
            presolve(lp)


class TestEquivalence:
    @given(st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_presolved_optimum_matches(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 6)), int(rng.integers(1, 6))
        lp = LinearProgram()
        x0 = rng.uniform(0, 4, size=n)
        xs = []
        for i in range(n):
            if rng.random() < 0.3:
                # some variables arrive pre-fixed
                xs.append(lp.variable(f"x{i}", lower=float(x0[i]), upper=float(x0[i])))
            else:
                xs.append(lp.variable(f"x{i}", upper=float(x0[i] + rng.uniform(1, 4))))
        A = rng.uniform(-2, 2, size=(m, n))
        b = A @ x0 + rng.uniform(0.1, 2.0, size=m)
        for r in range(m):
            expr = xs[0] * float(A[r, 0])
            for i in range(1, n):
                expr = expr + xs[i] * float(A[r, i])
            lp.add_constraint(expr <= float(b[r]))
        c = rng.uniform(-2, 2, size=n)
        obj = xs[0] * float(c[0])
        for i in range(1, n):
            obj = obj + xs[i] * float(c[i])
        lp.minimize(obj)

        plain = lp.solve()
        pre = solve_with_presolve(lp)
        assert plain.ok and pre.ok
        assert pre.objective == pytest.approx(plain.objective, abs=1e-7)
        # Expanded solution must be feasible for the original model.
        assert np.all(A @ pre.x <= b + 1e-6)

    def test_allocation_lp_with_presolve(self):
        """Presolve the faithful allocation LP: flows of zero-capacity
        principals get fixed away."""
        from repro.agreements import AgreementSystem
        from repro.lp.expr import LinExpr

        S = np.array([[0, 0.5, 0], [0, 0, 0.5], [0, 0, 0]], dtype=float)
        system = AgreementSystem(["a", "b", "c"], np.array([8.0, 0.0, 0.0]), S)
        # Recreate the reduced allocation LP manually and presolve it.
        lp = LinearProgram()
        U = system.u(None)
        ds = [
            lp.variable(f"d{i}", lower=0.0,
                        upper=float(min(U[i, 2], system.V[i])) if i != 2 else 0.0)
            for i in range(3)
        ]
        theta = lp.variable("theta", lower=0.0)
        lp.add_constraint(ds[0] + ds[1] + ds[2] == 2.0)
        T = system.coefficients()
        for i in range(2):
            drop = ds[i] * 1.0
            for k in range(3):
                if k != i and T[k, i] != 0.0:
                    drop = drop + ds[k] * float(T[k, i])
            lp.add_constraint(drop <= theta)
        lp.minimize(LinExpr({3: 1.0}, 0.0))
        plain = lp.solve()
        pre = solve_with_presolve(lp)
        assert pre.objective == pytest.approx(plain.objective, abs=1e-8)
        reduced, restore = presolve(lp)
        assert restore.stats.fixed_variables >= 2  # d1, d2 have zero bounds
