"""Cross-layer integration tests: economy -> agreements -> allocation ->
manager -> simulation, exercised together the way a deployment would."""

import numpy as np
import pytest

from repro.agreements import AgreementSystem
from repro.allocation import allocate_lp
from repro.economy import Bank
from repro.manager import (
    AllocationGrant,
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
)
from repro.proxysim import SimulationConfig, run_simulation
from repro.units import ResourceVector
from repro.workload import Request


class TestEconomyToAllocation:
    """Agreements written as tickets must enforce exactly as matrices."""

    def test_bank_and_matrix_allocations_agree(self):
        bank = Bank()
        for p in ("x", "y", "z"):
            bank.create_currency(p)
        bank.deposit_capacity("x", 10, "general")
        bank.deposit_capacity("y", 6, "general")
        bank.issue_relative_ticket("x", "z", 30)
        bank.issue_relative_ticket("y", "z", 50)

        from_bank = AgreementSystem.from_bank(bank)
        S = np.array([[0, 0, 0.3], [0, 0, 0.5], [0, 0, 0]], dtype=float)
        direct = AgreementSystem(["x", "y", "z"], np.array([10.0, 6.0, 0.0]), S)

        a = allocate_lp(from_bank, "z", 5.0)
        b = allocate_lp(direct, "z", 5.0)
        np.testing.assert_allclose(a.take, b.take, atol=1e-9)
        assert a.theta == pytest.approx(b.theta)

    def test_revocation_propagates_to_enforcement(self):
        bank = Bank()
        bank.create_currency("owner")
        bank.create_currency("user")
        bank.deposit_capacity("owner", 10, "general")
        t = bank.issue_relative_ticket("owner", "user", 40)
        before = AgreementSystem.from_bank(bank).capacity_of("user")
        bank.revoke_ticket(t.ticket_id)
        after = AgreementSystem.from_bank(bank).capacity_of("user")
        assert before == pytest.approx(4.0)
        assert after == pytest.approx(0.0)

    def test_virtual_currency_agreements_enforceable(self):
        """Example-2-style routing must survive flattening + allocation."""
        from repro.economy import build_example_2

        bank, _ = build_example_2()
        system = AgreementSystem.from_bank(bank, "disk")
        plan = allocate_lp(system, "D", 1.5)  # D's 2 TB flows via A2
        assert plan.satisfied == pytest.approx(1.5)
        assert plan.takes_by_name() == {"A": pytest.approx(1.5)}


class TestManagerDrivesAllocation:
    def test_grant_equals_direct_allocation(self):
        transport = InProcessTransport()
        bank = Bank()
        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        caps = {"n0": 8.0, "n1": 3.0, "n2": 0.0}
        for name, cap in caps.items():
            grm.register_principal(name, ResourceVector(general=cap))
            lrm = LocalResourceManager(name, ResourceVector(general=cap))
            lrm.attach(transport)
            lrm.report()
        bank.issue_relative_ticket("n0", "n2", 50)
        bank.issue_relative_ticket("n1", "n2", 50)

        grant = transport.send(
            "grm", AllocationRequestMsg(sender="n2", principal="n2", amount=5.0)
        )
        assert isinstance(grant, AllocationGrant)

        system = AgreementSystem.from_bank(bank)
        direct = allocate_lp(system, "n2", 5.0)
        assert grant.total == pytest.approx(direct.satisfied)
        assert grant.theta == pytest.approx(direct.theta, abs=1e-9)


class TestSimulationUsesEconomy:
    def test_simulation_from_bank_built_system(self):
        """Drive the proxy simulator with agreements expressed as tickets."""
        bank = Bank()
        for i in range(3):
            bank.create_currency(f"isp{i}")
        for i in range(3):
            for j in range(3):
                if i != j:
                    bank.issue_relative_ticket(f"isp{i}", f"isp{j}", 30)
        system = AgreementSystem.from_bank(bank)
        # Capacities come from the simulator's availability, not the bank.
        burst = [Request(100.0 + 0.01 * i, 2e6, 0) for i in range(50)]
        quiet1 = [Request(30_000.0, 1000.0, 1)]
        quiet2 = [Request(30_000.0, 1000.0, 2)]
        cfg = SimulationConfig(
            n_proxies=3, scheme="lp", epoch=60.0, threshold=5.0,
            warmup_days=0, measure_days=1, requests_per_day=100.0,
        )
        result = run_simulation(cfg, system, streams=[burst, quiet1, quiet2])
        assert result.total_redirected > 0
        assert result.total_requests == 52


class TestEndToEndInvariants:
    def test_work_conservation_through_all_layers(self):
        """Total service time demanded == total service time delivered."""
        rng = np.random.default_rng(5)
        streams = []
        for origin in range(3):
            arrivals = np.sort(rng.uniform(0, 40_000, size=200))
            streams.append(
                [Request(float(t), float(rng.uniform(1e3, 1e6)), origin) for t in arrivals]
            )
        from repro.agreements import complete_structure

        cfg = SimulationConfig(
            n_proxies=3, scheme="lp", epoch=120.0, threshold=5.0,
            warmup_days=0, measure_days=1, requests_per_day=100.0,
        )
        sim_system = complete_structure(3, 0.3)
        result = run_simulation(cfg, sim_system, streams=streams)
        assert result.total_requests == 600
        # every queue fully drained
        assert all(q.queue_length() == 0 for q in [])  # drained inside run()
