"""Capstone integration: negotiate -> express -> enforce -> operate.

A consortium of four sites with uneven capacity wants guaranteed
effective capacities.  We (1) *negotiate* the minimal shares meeting the
targets, (2) *express* them as tickets in a bank, (3) stand up the
GRM/LRM *managers* over that bank, and (4) verify that grants at the
negotiated level actually deliver the targets — the whole paper in one
test.
"""

import numpy as np
import pytest

from repro.agreements import AgreementSystem, suggest_shares
from repro.economy.serialize import bank_from_dict, bank_to_dict
from repro.manager import (
    AllocationGrant,
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
)
from repro.proxysim.manager_bridge import bank_for_structure
from repro.units import ResourceVector

SITES = ["hub", "mid", "edge", "new"]
V = np.array([16.0, 8.0, 4.0, 0.0])
TARGETS = np.array([16.0, 8.0, 6.0, 4.0])


@pytest.fixture
def negotiated():
    return suggest_shares(SITES, V, TARGETS)


class TestNegotiateExpressEnforce:
    def test_negotiated_targets_hold(self, negotiated):
        assert np.all(negotiated.capacities(1) >= TARGETS - 1e-6)

    def test_expression_round_trip(self, negotiated):
        """Shares -> tickets -> flattened matrices reproduces S exactly."""
        bank = bank_for_structure(negotiated)
        for site, cap in zip(SITES, V):
            if cap > 0:
                bank.deposit_capacity(site, float(cap), "general")
        system = AgreementSystem.from_bank(bank)
        np.testing.assert_allclose(system.S, negotiated.S, atol=1e-9)
        np.testing.assert_allclose(system.V, V)
        # ... and survives JSON persistence
        system2 = AgreementSystem.from_bank(bank_from_dict(bank_to_dict(bank)))
        np.testing.assert_allclose(system2.S, negotiated.S, atol=1e-9)

    def test_managers_deliver_targets(self, negotiated):
        bank = bank_for_structure(negotiated)
        transport = InProcessTransport()
        grm = GlobalResourceManager("grm", bank)
        grm.attach(transport)
        lrms = {}
        for site, cap in zip(SITES, V):
            if float(cap) > 0:
                bank.deposit_capacity(site, float(cap), "general")
            lrm = LocalResourceManager(site, ResourceVector(general=float(cap)))
            lrm.attach(transport)
            lrms[site] = lrm
            lrm.report()

        # Every site can obtain its full target through the GRM.
        for site, target in zip(SITES, TARGETS):
            if target <= 0:
                continue
            grant = transport.send(
                "grm",
                AllocationRequestMsg(sender=site, principal=site,
                                     amount=float(target)),
            )
            assert isinstance(grant, AllocationGrant), site
            assert grant.total == pytest.approx(float(target))
            # Fulfil and then release so the next site starts clean.
            for donor, amount in grant.takes:
                lrms[donor].reserve(grant.msg_id, ResourceVector(general=amount))
            from repro.manager import ReleaseMsg

            transport.send("grm", ReleaseMsg(sender=site, grant_id=grant.msg_id))
            for donor, _ in grant.takes:
                lrms[donor].release(grant.msg_id)

        assert grm.requests_denied == 0

    def test_simultaneous_targets_not_guaranteed(self, negotiated):
        """The targets are per-principal guarantees, not a simultaneous
        allocation: the hub's capacity backs several agreements at once
        (the paper's sharing semantics), so claiming everything at the
        same time can exhaust raw capacity."""
        total_targets = float(TARGETS.sum())
        # Here the guarantees genuinely oversubscribe the raw capacity —
        # 34 promised against 28 owned — which sharing semantics permit
        # (each guarantee holds in isolation; the hub backs several).
        assert total_targets > float(V.sum())
