"""Tests for SimulationResult metrics."""

import numpy as np
import pytest

from repro.proxysim import SimulationResult


@pytest.fixture
def result():
    r = SimulationResult(n_proxies=3)
    # proxy 0: two requests at hour 1 with waits 2 and 4
    r.record_wait(0, 3_600.0, 2.0)
    r.record_wait(0, 3_700.0, 4.0)
    # proxy 1: one request at hour 2 with wait 10
    r.record_wait(1, 7_200.0, 10.0)
    r.record_redirect(3_650.0, 1)
    return r


class TestRecording:
    def test_totals(self, result):
        assert result.total_requests == 3
        assert result.total_redirected == 1

    def test_per_proxy_series(self, result):
        assert result.mean_wait_series(0)[6] == pytest.approx(3.0)
        assert result.mean_wait_series(1)[12] == pytest.approx(10.0)

    def test_aggregate_series(self, result):
        assert result.mean_wait_series(None)[6] == pytest.approx(3.0)
        assert result.overall_mean_wait() == pytest.approx(16.0 / 3)

    def test_request_counts(self, result):
        assert result.request_count_series(0)[6] == 2
        assert result.request_count_series(None).sum() == 3


class TestWorstCase:
    def test_per_proxy(self, result):
        assert result.worst_case_wait(0) == pytest.approx(3.0)
        assert result.worst_case_wait(1) == pytest.approx(10.0)
        assert result.worst_case_wait(None) == pytest.approx(10.0)

    def test_over_origin_subset(self, result):
        # merging 0 and 1: hour-1 slot mean 3, hour-2 slot mean 10
        assert result.worst_case_wait_over([0, 1]) == pytest.approx(10.0)
        assert result.worst_case_wait_over([0]) == pytest.approx(3.0)

    def test_empty_proxy(self, result):
        assert result.worst_case_wait(2) == 0.0


class TestRedirectStats:
    def test_fractions(self, result):
        assert result.redirect_fraction() == pytest.approx(1 / 3)
        # hour-1 slot: 1 redirect / 2 requests
        assert result.peak_redirect_fraction() == pytest.approx(0.5)

    def test_empty_result(self):
        r = SimulationResult(n_proxies=1)
        assert r.redirect_fraction() == 0.0
        assert r.peak_redirect_fraction() == 0.0

    def test_summary_rounding(self, result):
        s = result.summary()
        assert s["total_requests"] == 3
        assert isinstance(s["mean_wait"], float)
