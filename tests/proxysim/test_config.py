"""Tests for the simulation configuration and its presets."""

import pytest

from repro.errors import SimulationError
from repro.proxysim import ServiceModel, SimulationConfig


class TestServiceModel:
    def test_paper_parameters(self):
        """a=0.1 s, b=1e-6 s/byte, cap c=30 s."""
        m = ServiceModel()
        assert m.service_time(0) == pytest.approx(0.1)
        assert m.service_time(1_000_000) == pytest.approx(1.1)
        assert m.service_time(1e9) == pytest.approx(30.0)  # capped

    def test_cap_binds_exactly(self):
        m = ServiceModel(a=0.1, b=1e-6, c=30.0)
        huge = (30.0 - 0.1) / 1e-6
        assert m.service_time(huge) == pytest.approx(30.0)
        assert m.service_time(huge * 2) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ServiceModel(a=-1)
        with pytest.raises(SimulationError):
            ServiceModel(c=0)


class TestConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.n_proxies == 10
        assert cfg.horizon == 2 * 86_400.0

    def test_scheme_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(scheme="telepathy")

    def test_capacity_scalar_and_vector(self):
        cfg = SimulationConfig(capacity=1.25)
        assert cfg.capacities().tolist() == [1.25] * 10
        cfg = SimulationConfig(n_proxies=2, capacity=(1.0, 2.0))
        assert cfg.capacities().tolist() == [1.0, 2.0]
        with pytest.raises(SimulationError):
            SimulationConfig(n_proxies=2, capacity=(1.0, 2.0, 3.0)).capacities()

    def test_with_returns_new_config(self):
        cfg = SimulationConfig()
        cfg2 = cfg.with_(gap=0.0)
        assert cfg2.gap == 0.0
        assert cfg.gap == 3_600.0

    def test_measure_window(self):
        cfg = SimulationConfig(warmup_days=2, measure_days=1)
        assert cfg.measure_start == 2 * 86_400.0
        assert cfg.horizon == 3 * 86_400.0

    def test_invalid_days(self):
        with pytest.raises(SimulationError):
            SimulationConfig(measure_days=0)


class TestPresets:
    def test_paper_preset_parameters(self):
        cfg = SimulationConfig.paper()
        assert cfg.service.a == 0.1
        assert cfg.service.b == 1e-6
        assert cfg.service.c == 30.0
        assert cfg.requests_per_day == 500_000.0

    def test_scaled_preserves_utilisation(self):
        """The scaled preset must offer the same load/capacity profile."""
        paper = SimulationConfig.paper()
        for scale in (5.0, 25.0, 50.0):
            scaled = SimulationConfig.scaled(scale)
            assert scaled.mean_utilisation() == pytest.approx(
                0.95 * paper.mean_utilisation(), rel=1e-6
            )

    def test_scaled_scales_service_times(self):
        scaled = SimulationConfig.scaled(25.0)
        assert scaled.service.a == pytest.approx(0.1 * 25)
        assert scaled.service.b == pytest.approx(1e-6 * 25)

    def test_scaled_overrides_win(self):
        cfg = SimulationConfig.scaled(25.0, threshold=99.0, scheme="none")
        assert cfg.threshold == 99.0
        assert cfg.scheme == "none"

    def test_bad_scale(self):
        with pytest.raises(SimulationError):
            SimulationConfig.scaled(0)

    def test_utilisation_in_overload_regime(self):
        """Both presets must put the diurnal peak above capacity (the
        regime in which Figure 5's waits arise)."""
        for cfg in (SimulationConfig.paper(), SimulationConfig.scaled()):
            profile = cfg.base_profile()
            peak_util = (
                profile.peak_rate * cfg.service.mean_service(cfg.sizes)
            )
            assert peak_util > 1.0
            assert cfg.mean_utilisation() < 1.0
