"""Tests for the proxy simulation loop.

These use a tiny workload (scale 200, 2 proxies where possible) so each
simulation runs in well under a second; the figure-level behaviour is
covered by benchmarks/.
"""

import numpy as np
import pytest

from repro.agreements import complete_structure
from repro.errors import SimulationError
from repro.proxysim import ProxySimulation, SimulationConfig, run_simulation
from repro.workload import Request


def tiny_config(**overrides):
    defaults = dict(
        n_proxies=2,
        requests_per_day=800.0,
        gap=3_600.0,
        scheme="none",
        epoch=300.0,
        threshold=10.0,
        warmup_days=0,
        measure_days=1,
        seed=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConservation:
    def test_every_request_served_exactly_once(self):
        cfg = tiny_config()
        sim = ProxySimulation(cfg)
        expected = sum(len(s) for s in sim.streams)
        result = sim.run()
        assert result.total_requests == expected

    def test_served_once_with_redirection(self):
        cfg = tiny_config(scheme="lp", n_proxies=3)
        system = complete_structure(3, 0.1)
        sim = ProxySimulation(cfg, system)
        expected = sum(len(s) for s in sim.streams)
        result = sim.run()
        assert result.total_requests == expected

    def test_warmup_excluded_from_stats(self):
        cfg = tiny_config(warmup_days=1, measure_days=1)
        sim = ProxySimulation(cfg)
        result = sim.run()
        measured = sum(
            1 for s in sim.streams for r in s if r.arrival >= cfg.measure_start
        )
        assert result.total_requests == measured

    def test_waits_nonnegative(self):
        result = run_simulation(tiny_config())
        assert np.all(result.waits_all.means() >= 0)


class TestExternalStreams:
    def test_supplied_streams_used(self):
        reqs0 = [Request(100.0 * i, 5_000.0, 0) for i in range(10)]
        reqs1 = [Request(50.0 + 100.0 * i, 5_000.0, 1) for i in range(10)]
        cfg = tiny_config(warmup_days=0)
        result = run_simulation(cfg, streams=[reqs0, reqs1])
        assert result.total_requests == 20

    def test_stream_count_mismatch(self):
        with pytest.raises(ValueError, match="streams"):
            run_simulation(tiny_config(), streams=[[]])

    def test_deterministic_waits_for_fixed_stream(self):
        """Two closely spaced heavy requests: exact Lindley waits."""
        service_len = 1_000_000.0  # 0.1 + 1.0 = 1.1 s service
        reqs = [Request(10.0, service_len, 0), Request(10.5, service_len, 0)]
        cfg = tiny_config(n_proxies=1, gap=0.0, epoch=100.0)
        result = run_simulation(cfg, streams=[reqs])
        # first waits 0; second waits (10 + 1.1) - 10.5 = 0.6
        total_wait = float(result.waits_all._sum.sum())
        assert total_wait == pytest.approx(0.6)


class TestRedirection:
    def make_overload(self, scheme, **overrides):
        """Proxy 0 slammed, proxy 1 idle; redirection should help."""
        burst = [Request(1000.0 + i * 0.01, 3e6, 0) for i in range(60)]
        idle = [Request(40_000.0, 1_000.0, 1)]
        cfg = tiny_config(
            scheme=scheme, epoch=60.0, threshold=5.0, warmup_days=0,
            **overrides,
        )
        system = complete_structure(2, share=0.5)
        return run_simulation(cfg, system, streams=[burst, idle])

    def test_no_sharing_never_redirects(self):
        result = self.make_overload("none")
        assert result.total_redirected == 0

    def test_lp_redirects_under_overload(self):
        result = self.make_overload("lp")
        assert result.total_redirected > 0
        assert result.scheduler_consults > 0
        assert result.lp_solves > 0

    def test_sharing_beats_no_sharing(self):
        none = self.make_overload("none")
        lp = self.make_overload("lp")
        assert lp.overall_mean_wait(0) < none.overall_mean_wait(0)

    def test_greedy_and_endpoint_also_redirect(self):
        for scheme in ("greedy", "endpoint"):
            result = self.make_overload(scheme)
            assert result.total_redirected > 0, scheme

    def test_redirect_cost_delays_service(self):
        cheap = self.make_overload("lp", redirect_cost=0.0)
        costly = self.make_overload("lp", redirect_cost=30.0)
        assert costly.overall_mean_wait(0) > cheap.overall_mean_wait(0)

    def test_max_hops_zero_blocks_redirection(self):
        result = self.make_overload("lp", max_hops=0)
        assert result.total_redirected == 0

    def test_redirected_requests_counted_at_origin(self):
        result = self.make_overload("lp")
        # proxy 1 only generated one request of its own
        assert int(result.waits_by_proxy[1].counts().sum()) == 1


class TestPolicyWiring:
    def test_lp_scheme_requires_system(self):
        with pytest.raises(SimulationError, match="needs an agreement system"):
            run_simulation(tiny_config(scheme="lp"))

    def test_system_size_must_match(self):
        with pytest.raises(SimulationError, match="principals"):
            run_simulation(tiny_config(scheme="lp"), complete_structure(5, 0.1))

    def test_summary_keys(self):
        result = run_simulation(tiny_config())
        summary = result.summary()
        for key in ("total_requests", "mean_wait", "worst_case_wait_isp0",
                    "redirect_fraction"):
            assert key in summary
