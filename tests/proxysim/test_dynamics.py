"""Tests for dynamically changing agreements during a simulation run."""

import pytest

from repro.agreements import complete_structure
from repro.proxysim import ProxySimulation, SimulationConfig
from repro.workload import Request


def overload_streams():
    """Proxy 0 gets two bursts (early and late); proxy 1 stays idle."""
    early = [Request(1_000.0 + i * 0.01, 3e6, 0) for i in range(40)]
    late = [Request(50_000.0 + i * 0.01, 3e6, 0) for i in range(40)]
    idle = [Request(80_000.0, 1_000.0, 1)]
    return [early + late, idle]


def config(**overrides):
    defaults = dict(
        n_proxies=2, scheme="lp", epoch=60.0, threshold=5.0,
        warmup_days=0, measure_days=1, requests_per_day=100.0, seed=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSystemUpdates:
    def test_revocation_mid_run_stops_redirection(self):
        """Full sharing until noon, all agreements revoked after."""
        sharing = complete_structure(2, share=0.5)
        revoked = complete_structure(2, share=0.0)
        sim = ProxySimulation(
            config(), sharing,
            streams=overload_streams(),
            system_updates=[(30_000.0, revoked)],
        )
        result = sim.run()
        redirects = result.redirects.counts()
        early_slots = slice(0, int(30_000 / 600))
        late_slots = slice(int(30_000 / 600), 144)
        assert redirects[early_slots].sum() > 0, "sharing active before update"
        assert redirects[late_slots].sum() == 0, "revoked agreements enforce"

    def test_granting_mid_run_enables_redirection(self):
        none = complete_structure(2, share=0.0)
        sharing = complete_structure(2, share=0.5)
        sim = ProxySimulation(
            config(), none,
            streams=overload_streams(),
            system_updates=[(30_000.0, sharing)],
        )
        result = sim.run()
        redirects = result.redirects.counts()
        assert redirects[: int(30_000 / 600)].sum() == 0
        assert redirects[int(30_000 / 600) :].sum() > 0

    def test_updates_applied_in_time_order(self):
        a = complete_structure(2, share=0.5)
        b = complete_structure(2, share=0.0)
        sim = ProxySimulation(
            config(), a,
            streams=overload_streams(),
            system_updates=[(40_000.0, a), (20_000.0, b)],  # out of order
        )
        sim.run()
        assert sim.system is a  # the later update wins

    def test_wrong_size_update_rejected(self):
        sim = ProxySimulation(
            config(), complete_structure(2, share=0.5),
            streams=overload_streams(),
            system_updates=[(10.0, complete_structure(3, share=0.1))],
        )
        with pytest.raises(ValueError, match="principal count"):
            sim.run()

    def test_lp_solve_count_survives_updates(self):
        sharing = complete_structure(2, share=0.5)
        sim = ProxySimulation(
            config(), sharing,
            streams=overload_streams(),
            system_updates=[(30_000.0, sharing)],
        )
        result = sim.run()
        assert result.lp_solves > 0
