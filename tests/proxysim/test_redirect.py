"""Tests for the redirection policies."""

import numpy as np
import pytest

from repro.agreements import complete_structure, loop_structure
from repro.errors import SimulationError
from repro.proxysim import SimulationConfig, make_policy
from repro.proxysim.redirect import (
    EndpointPolicy,
    GreedyPolicy,
    LPPolicy,
    NoSharingPolicy,
)


@pytest.fixture
def system():
    return complete_structure(4, share=0.2, capacity=1.0)


def avail(*values):
    return np.asarray(values, dtype=float)


class TestNoSharing:
    def test_keeps_everything_local(self):
        policy = NoSharingPolicy(4)
        take = policy.plan(1, 10.0, avail(5, 0, 5, 5))
        assert take[1] == 10.0
        assert take.sum() == 10.0


class TestLPPolicy:
    def test_sheds_to_available_donors(self, system):
        policy = LPPolicy(system)
        take = policy.plan(0, 3.0, avail(0, 10, 10, 10))
        assert take.sum() == pytest.approx(3.0)
        assert take[0] == pytest.approx(0.0, abs=1e-9)

    def test_unplaceable_excess_stays_local(self, system):
        policy = LPPolicy(system)
        take = policy.plan(0, 50.0, avail(0, 10, 10, 10))
        assert take.sum() == pytest.approx(50.0)
        # donors bounded by agreements: ~0.2-ish of 10 each (+ transitive)
        assert take[0] > 40.0

    def test_level_restricts_donors(self):
        system = loop_structure(4, share=0.8, skip=1)
        policy = LPPolicy(system, level=1)
        take = policy.plan(0, 5.0, avail(0, 10, 10, 10))
        # at level 1 the only donor of isp0 is isp3
        assert take[3] > 0
        assert take[1] == pytest.approx(0.0, abs=1e-9)
        assert take[2] == pytest.approx(0.0, abs=1e-9)

    def test_counts_lp_solves(self, system):
        policy = LPPolicy(system)
        policy.plan(0, 1.0, avail(0, 10, 10, 10))
        policy.plan(1, 1.0, avail(10, 0, 10, 10))
        assert policy.lp_solves == 2

    def test_bad_availability_shape(self, system):
        policy = LPPolicy(system)
        with pytest.raises(SimulationError):
            policy.plan(0, 1.0, avail(1, 2))


class TestEndpointPolicy:
    def test_blind_to_availability(self, system):
        rated = np.full(4, 100.0)
        policy = EndpointPolicy(system, rated)
        busy = policy.plan(0, 3.0, avail(0, 0, 0, 0))
        idle = policy.plan(0, 3.0, avail(0, 99, 99, 99))
        np.testing.assert_allclose(busy, idle)

    def test_proportional_to_agreement_quantity(self):
        system = complete_structure(3, share=0.1)
        rated = np.array([100.0, 100.0, 300.0])
        policy = EndpointPolicy(system, rated)
        take = policy.plan(0, 4.0, avail(0, 1, 1))
        # donor weights: 0.1*100 vs 0.1*300 -> 1:3 split
        assert take[2] == pytest.approx(3 * take[1])

    def test_rated_shape_checked(self, system):
        with pytest.raises(SimulationError):
            EndpointPolicy(system, np.ones(3))


class TestGreedyPolicy:
    def test_drains_biggest_donor_first(self, system):
        policy = GreedyPolicy(system)
        take = policy.plan(0, 2.0, avail(0, 100, 5, 5))
        assert take[1] >= take[2] and take[1] >= take[3]


class TestMakePolicy:
    def test_scheme_dispatch(self, system):
        cfg = SimulationConfig(n_proxies=4)
        assert isinstance(make_policy(cfg.with_(scheme="none"), None), NoSharingPolicy)
        assert isinstance(make_policy(cfg.with_(scheme="lp"), system), LPPolicy)
        assert isinstance(
            make_policy(cfg.with_(scheme="endpoint"), system), EndpointPolicy
        )
        assert isinstance(
            make_policy(cfg.with_(scheme="greedy"), system), GreedyPolicy
        )

    def test_lp_policy_inherits_config(self, system):
        cfg = SimulationConfig(n_proxies=4, level=2, allocator_backend="scipy")
        policy = make_policy(cfg, system)
        assert policy.level == 2

    def test_missing_system(self):
        cfg = SimulationConfig(n_proxies=4, scheme="lp")
        with pytest.raises(SimulationError):
            make_policy(cfg, None)
