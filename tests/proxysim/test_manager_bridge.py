"""Tests for running the simulation through the GRM/LRM protocol."""

import numpy as np
import pytest

from repro.agreements import complete_structure
from repro.proxysim import ProxySimulation, SimulationConfig
from repro.proxysim.manager_bridge import ManagerPolicy, bank_for_structure
from repro.proxysim.redirect import LPPolicy
from repro.workload import Request


@pytest.fixture
def system():
    return complete_structure(3, share=0.2)


class TestBankForStructure:
    def test_tickets_match_shares(self, system):
        bank = bank_for_structure(system)
        principals, _, S, _ = bank.to_agreement_system("general")
        assert principals == system.principals
        np.testing.assert_allclose(S, system.S, atol=1e-12)

    def test_no_base_deposits(self, system):
        bank = bank_for_structure(system)
        assert all(not t.is_base_capacity for t in bank.tickets)


class TestManagerPolicyPlans:
    def test_matches_lp_policy(self, system):
        avail = np.array([0.0, 50.0, 80.0])
        mp = ManagerPolicy(system)
        lp = LPPolicy(system)
        take_m = mp.plan(0, 10.0, avail.copy())
        take_l = lp.plan(0, 10.0, avail.copy())
        np.testing.assert_allclose(take_m, take_l, atol=1e-7)

    def test_matches_lp_policy_fig05_structure(self):
        """The manager path equals direct LP on the 10-proxy baseline."""
        fig05 = complete_structure(10, share=0.1)
        mp = ManagerPolicy(fig05)
        lp = LPPolicy(fig05)
        rng = np.random.default_rng(11)
        for _ in range(10):
            avail = rng.uniform(0.0, 100.0, size=10)
            req = int(rng.integers(0, 10))
            avail[req] = 0.0
            excess = float(rng.uniform(1.0, 20.0))
            np.testing.assert_allclose(
                mp.plan(req, excess, avail.copy()),
                lp.plan(req, excess, avail.copy()),
                atol=1e-7,
            )

    def test_denial_falls_back_to_partial(self, system):
        avail = np.array([0.0, 5.0, 5.0])
        mp = ManagerPolicy(system)
        take = mp.plan(0, 100.0, avail)
        assert take.sum() == pytest.approx(100.0)
        # the placeable part went remote, the rest stayed local
        assert take[1] + take[2] > 0
        assert take[0] > 90.0

    def test_message_counting(self, system):
        mp = ManagerPolicy(system)
        mp.plan(0, 1.0, np.array([0.0, 50.0, 80.0]))
        # one batched availability report + one request, regardless of n
        assert mp.messages == 2

    def test_batch_matches_individual_reports(self, system):
        from repro.manager.messages import AvailabilityBatch, AvailabilityReport

        mp = ManagerPolicy(system)
        mp.transport.send(
            "grm",
            AvailabilityBatch(
                sender="isp0",
                reports=(("isp0", 1.0), ("isp1", 2.0), ("isp2", 3.0)),
            ),
        )
        batched = mp.grm.availability_vector()
        for k, p in enumerate(mp.principals):
            mp.transport.send(
                "grm",
                AvailabilityReport(sender=p, available=float(k + 1)),
            )
        np.testing.assert_allclose(mp.grm.availability_vector(), batched)

    def test_level_respected(self):
        from repro.agreements import loop_structure

        loop = loop_structure(3, share=0.8, skip=1)
        mp = ManagerPolicy(loop, level=1)
        take = mp.plan(0, 5.0, np.array([0.0, 50.0, 50.0]))
        # level 1: only isp2 (donor of isp0) contributes
        assert take[1] == pytest.approx(0.0, abs=1e-9)
        assert take[2] > 0


class TestSimulationThroughManager:
    def test_end_to_end_run(self, system):
        burst = [Request(1_000.0 + i * 0.01, 3e6, 0) for i in range(40)]
        idle1 = [Request(40_000.0, 1_000.0, 1)]
        idle2 = [Request(40_000.0, 1_000.0, 2)]
        cfg = SimulationConfig(
            n_proxies=3, scheme="lp", epoch=60.0, threshold=5.0,
            warmup_days=0, measure_days=1, requests_per_day=100.0,
        )
        sim = ProxySimulation(cfg, system, streams=[burst, idle1, idle2])
        sim.policy = ManagerPolicy(system)  # swap in the manager path
        result = sim.run()
        assert result.total_redirected > 0
        assert result.total_requests == 42
        assert sim.policy.messages > 0
