"""Validation against queueing theory.

With a *constant* arrival rate (all Fourier coefficients zero) and no
sharing, each proxy is an M/G/1 queue, so the simulated mean waiting time
must match the Pollaczek-Khinchine formula

    E[W] = lambda * E[S^2] / (2 * (1 - rho))

This pins the whole arrival-generation + queue-service pipeline to an
analytic ground truth, independent of the paper's figures.
"""

import numpy as np
import pytest

from repro.proxysim import ServiceModel, SimulationConfig, run_simulation
from repro.workload import DiurnalProfile, LogNormalSizes


def run_mg1(lam: float, service: ServiceModel, sizes, seed=0, days=3):
    profile = DiurnalProfile(
        requests_per_day=lam * 86_400.0, a1=0.0, a2=0.0
    )
    cfg = SimulationConfig(
        n_proxies=1,
        scheme="none",
        profile=profile,
        requests_per_day=profile.requests_per_day,
        service=service,
        sizes=sizes,
        warmup_days=1,
        measure_days=days - 1,
        seed=seed,
        epoch=300.0,
    )
    return run_simulation(cfg)


def pk_wait(lam: float, s1: float, s2: float) -> float:
    rho = lam * s1
    assert rho < 1
    return lam * s2 / (2.0 * (1.0 - rho))


class TestPollaczekKhinchine:
    @pytest.mark.parametrize("target_rho", [0.3, 0.6])
    def test_mg1_mean_wait(self, target_rho):
        sizes = LogNormalSizes(median=6_000.0, sigma=1.0, max_bytes=1e6)
        service = ServiceModel(a=1.0, b=1e-4, c=1e9)
        # Empirical service moments under the size distribution.
        rng = np.random.default_rng(42)
        draws = sizes.sample(rng, 400_000)
        s = service.a + service.b * draws
        s1, s2 = float(s.mean()), float((s**2).mean())
        lam = target_rho / s1

        expected = pk_wait(lam, s1, s2)
        waits = []
        for seed in (0, 1, 2):
            res = run_mg1(lam, service, sizes, seed=seed)
            waits.append(res.overall_mean_wait())
        measured = float(np.mean(waits))
        # Heavy-ish tail -> slow convergence; 25% tolerance on 3 seeds.
        assert measured == pytest.approx(expected, rel=0.25)

    def test_low_utilisation_near_zero_wait(self):
        sizes = LogNormalSizes(median=6_000.0, sigma=0.5, max_bytes=1e6)
        service = ServiceModel(a=0.5, b=1e-5, c=1e9)
        res = run_mg1(0.05, service, sizes, days=2)
        assert res.overall_mean_wait() < 0.2

    def test_utilisation_ordering(self):
        """Waits increase steeply with utilisation (rho / (1 - rho))."""
        sizes = LogNormalSizes(median=6_000.0, sigma=0.8, max_bytes=1e6)
        service = ServiceModel(a=1.0, b=5e-5, c=1e9)
        rng = np.random.default_rng(7)
        s1 = float((service.a + service.b * sizes.sample(rng, 200_000)).mean())
        w = {}
        for rho in (0.3, 0.7):
            res = run_mg1(rho / s1, service, sizes, days=2)
            w[rho] = res.overall_mean_wait()
        assert w[0.7] > 3.0 * w[0.3]
