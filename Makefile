# Convenience targets for the repro library.

PY ?= python3

.PHONY: install test bench experiments examples experiments-md lint clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

lint:
	$(PY) scripts/reprolint.py src
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks scripts || echo "ruff not installed; skipped"
	@command -v mypy >/dev/null 2>&1 && mypy src/repro || echo "mypy not installed; skipped"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PY) -m repro.experiments.runner all

experiments-md:
	$(PY) scripts/generate_experiments_md.py

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PY) $$f || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis build dist *.egg-info
