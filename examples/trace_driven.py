#!/usr/bin/env python3
"""Trace-driven simulation: bring your own logs.

The paper's simulator is trace-driven; this example shows the full
path for substituting a real trace:

1. write/read a per-proxy CSV trace (here we synthesise one, but
   ``parse_common_log_line`` converts raw proxy logs);
2. fit a :class:`DiurnalProfile` to the observed arrivals and check the
   fit quality (is this trace diurnal enough for the paper's setup?);
3. drive the proxy simulation directly from the trace streams.

Run:  python examples/trace_driven.py   (~20 s)
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.agreements import complete_structure
from repro.proxysim import SimulationConfig, run_simulation
from repro.workload import (
    DiurnalProfile,
    RequestStream,
    fit_profile,
    profile_fit_error,
    read_trace,
    write_trace,
)
from repro.workload.diurnal import DAY_SECONDS


def main() -> None:
    n_proxies = 4
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    # --- 1. produce per-proxy trace files (stand-in for real logs) --------
    cfg = SimulationConfig.scaled(scale=60, n_proxies=n_proxies, gap=3600.0)
    base = cfg.base_profile()
    paths = []
    rng = np.random.default_rng(7)
    for i in range(n_proxies):
        stream = RequestStream(
            base.with_skew(i * cfg.gap), horizon=cfg.horizon, origin=i
        )
        reqs = stream.sample(rng)
        path = workdir / f"proxy{i}.csv"
        write_trace(path, reqs)
        paths.append(path)
    print(f"wrote {n_proxies} trace files under {workdir}")

    # --- 2. read back, fit, and validate the shape --------------------------
    streams = [read_trace(p) for p in paths]
    fitted = fit_profile(streams[0])
    err = profile_fit_error(streams[0], fitted)
    peak_hour = float(
        np.argmax(fitted.rate(np.linspace(0, DAY_SECONDS, 1440))) / 60.0
    )
    print(
        f"proxy0: {len(streams[0])} requests; fitted "
        f"{fitted.requests_per_day:.0f}/day, peak ~{peak_hour:.1f}h, "
        f"fit error {err:.2f}"
    )
    flat = DiurnalProfile(
        requests_per_day=fitted.requests_per_day, a1=0.0, a2=0.0
    )
    print(f"  (a flat profile scores {profile_fit_error(streams[0], flat):.2f})")

    # --- 3. simulate straight from the traces --------------------------------
    system = complete_structure(n_proxies, share=0.1)
    for scheme in ("none", "lp"):
        result = run_simulation(cfg.with_(scheme=scheme),
                                system if scheme != "none" else None,
                                streams=streams)
        print(f"[{scheme}] worst slot wait (proxy0) = "
              f"{result.worst_case_wait(0):.1f}s, "
              f"mean = {result.overall_mean_wait(0):.2f}s")


if __name__ == "__main__":
    main()
