#!/usr/bin/env python3
"""Dynamically changing agreements: revocation mid-day, enforced globally.

The paper stresses that "agreements must be enforced in the presence of
heterogeneous resource types and dynamically changing user set and
resource availability".  This example runs the proxy case study while the
agreement set changes twice during the measured day:

- 00:00-08:00  complete 10% sharing (business as usual);
- 08:00-16:00  ISP 0's partners revoke their tickets (it becomes a pariah:
               it still *donates*, but can no longer borrow);
- 16:00-24:00  agreements restored.

Watch ISP 0's hourly waits spike exactly while it is cut off.

Run:  python examples/dynamic_agreements.py        (~30 s)
"""

import numpy as np

from repro.agreements import AgreementSystem, complete_structure
from repro.proxysim import ProxySimulation, SimulationConfig


def pariah_structure(n: int, share: float, outcast: int) -> AgreementSystem:
    """Complete graph where nobody shares *with* ``outcast`` any more."""
    base = complete_structure(n, share)
    S = base.S.copy()
    S[:, outcast] = 0.0  # inbound agreements revoked
    return AgreementSystem(base.principals, base.V, S)


def main() -> None:
    n, share = 10, 0.1
    normal = complete_structure(n, share)
    pariah = pariah_structure(n, share, outcast=0)

    cfg = SimulationConfig.scaled(scale=50, scheme="lp", gap=3600.0)
    day = 86_400.0
    sim = ProxySimulation(
        cfg,
        normal,
        system_updates=[
            (cfg.measure_start + 8 * 3600.0, pariah),   # 08:00 revoked
            (cfg.measure_start + 16 * 3600.0, normal),  # 16:00 restored
        ],
    )
    result = sim.run()

    waits = result.mean_wait_series(0)
    hours = result.slot_times() / 3600.0
    print("ISP 0 mean wait by 2-hour bucket (agreements revoked 08:00-16:00):")
    for h in range(0, 24, 2):
        mask = (hours >= h) & (hours < h + 2)
        flag = "  <- revoked" if 8 <= h < 16 else ""
        print(f"  {h:02d}:00-{h + 2:02d}:00  {float(np.mean(waits[mask])):8.2f} s{flag}")

    print(f"\nsummary: {result.summary()}")
    print(
        "\nISP 0 peaks near midnight, so the revocation window (08:00-16:00)\n"
        "hurts it most where its local load still exceeds capacity; the other\n"
        "ISPs keep sharing among themselves throughout."
    )


if __name__ == "__main__":
    main()
