#!/usr/bin/env python3
"""Analysing agreement structures: reachability, exposure, dependency.

Builds the paper's three taxonomy structures (complete, sparse,
hierarchical) plus the case study's loop, and reports for each what the
analysis module can tell an operator: who can reach whom, how exposed
each donor is, how dependent each participant is on others, and how
quickly transitive chains decay ("exponential decrease in the amount of
resources accessible along the chain").

Run:  python examples/agreement_analysis.py
"""

from repro.agreements import (
    chain_contributions,
    complete_structure,
    dependency,
    donor_set,
    exposure,
    hierarchical_structure,
    loop_structure,
    reachable_set,
    sparse_structure,
    summarize,
)


def main() -> None:
    structures = {
        "complete (10 ISPs, 10%)": complete_structure(10, 0.1),
        "sparse (20 nodes, degree 3)": sparse_structure(20, degree=3, seed=1),
        "hierarchical (4 groups of 5)": hierarchical_structure(4, 5),
        "loop skip=1 (80%)": loop_structure(10, 0.8, skip=1),
        "loop skip=3 (80%)": loop_structure(10, 0.8, skip=3),
    }

    print(f"{'structure':32s} {'edges':>5} {'density':>8} {'gain':>6} {'maxdep':>7}")
    for name, system in structures.items():
        s = summarize(system)
        print(
            f"{name:32s} {s.edges:>5d} {s.density:>8.2f} "
            f"{s.mean_capacity_gain:>5.2f}x {s.max_dependency:>7.2f}"
        )

    loop = structures["loop skip=1 (80%)"]
    print("\nLoop skip=1, viewed from isp5:")
    print(f"  reachable donors (full closure): {reachable_set(loop, 'isp5')}")
    print(f"  reachable at level 1 only:       {reachable_set(loop, 'isp5', level=1)}")
    print(f"  beneficiaries of isp5:           {donor_set(loop, 'isp5')}")
    print(f"  exposure of isp5:                {exposure(loop, 'isp5'):.2f}")
    print(f"  dependency of isp5:              {dependency(loop, 'isp5'):.2f}")

    print("\nChain decay isp5 -> isp9 (4 hops of 80% each):")
    for level, marginal in chain_contributions(loop, "isp5", "isp9"):
        print(f"  level {level}: +{marginal:.4f}  (0.8^{level} = {0.8 ** level:.4f})")

    print(
        "\nThe exponential decay is why the paper observes that 'considering"
        "\nlonger chains of agreements yields small incremental benefit'."
    )

    # ------------------------------------------------------------------
    # The inverse problem: draft agreements from capacity targets.
    # ------------------------------------------------------------------
    from repro.agreements import suggest_shares

    print("\nNegotiation aid: four sites, uneven capacity, equal targets.")
    V = [16.0, 8.0, 4.0, 0.0]
    targets = [16.0, 8.0, 6.0, 4.0]
    drafted = suggest_shares(["hub", "mid", "edge", "new"], V, targets)
    print(f"  capacities V = {V}, targets = {targets}")
    for i, p in enumerate(drafted.principals):
        row = {
            drafted.principals[j]: round(float(drafted.S[i, j]), 3)
            for j in range(drafted.n)
            if drafted.S[i, j] > 1e-9
        }
        if row:
            print(f"  {p} shares {row}")
    print(f"  resulting level-1 capacities: "
          f"{[round(float(c), 2) for c in drafted.capacities(1)]}")


if __name__ == "__main__":
    main()
