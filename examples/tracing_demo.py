#!/usr/bin/env python3
"""Observability walkthrough: trace an ISP-sharing scenario end to end.

Enables :mod:`repro.obs` with a JSONL trace, then exercises every
instrumented layer:

1. a GRM/LRM cluster allocating over the message transport
   (per-endpoint message counters, GRM allocate spans, LP solves);
2. a small proxy-group simulation (DES event counts, scheduler LP
   solves, sim-time/wall-time ratio).

Finally it replays the trace through the same aggregation that
``scripts/obs_report.py`` uses and prints the summary tables.

Run:  python examples/tracing_demo.py [trace.jsonl]
"""

import sys
import tempfile
from pathlib import Path

import repro.obs as obs
from repro.agreements import complete_structure
from repro.economy import Bank
from repro.manager import (
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
    ReleaseMsg,
)
from repro.obs.report import render_trace
from repro.proxysim import SimulationConfig, run_simulation
from repro.units import ResourceVector


def manager_cluster() -> None:
    """Three ISPs sharing bandwidth through the GRM/LRM protocol."""
    bank = Bank()
    transport = InProcessTransport()
    grm = GlobalResourceManager("grm", bank)
    grm.attach(transport)

    capacities = {"isp0": 10.0, "isp1": 8.0, "isp2": 6.0}
    lrms = {}
    for isp, cap in capacities.items():
        grm.register_principal(isp, ResourceVector(general=cap))
        lrms[isp] = LocalResourceManager(isp, ResourceVector(general=cap))
        lrms[isp].attach(transport)
    # Everyone shares 40% with everyone else.
    for donor in capacities:
        for receiver in capacities:
            if donor != receiver:
                bank.issue_relative_ticket(donor, receiver, 40.0)

    for lrm in lrms.values():
        lrm.report("general")

    # isp2 bursts past its own capacity and leans on the agreements.
    grant = transport.send(
        "grm",
        AllocationRequestMsg(sender="isp2", principal="isp2", amount=9.0),
    )
    print(f"grant to isp2: takes={grant.takes} theta={grant.theta:.3f}")
    transport.send("grm", ReleaseMsg(sender="isp2", grant_id=grant.msg_id))
    print(f"messages delivered: {transport.delivered} "
          f"(per endpoint: {transport.sent_by_endpoint})")


def proxy_simulation() -> None:
    """A down-scaled Figure-6-style run: 4 proxies, LP redirection."""
    cfg = SimulationConfig.scaled(
        scale=200.0, n_proxies=4, warmup_days=0, measure_days=1,
    )
    system = complete_structure(4, share=0.1)
    result = run_simulation(cfg, system)
    s = result.summary()
    print(f"simulated {s['total_requests']} requests, "
          f"{s['total_redirected']} redirected, "
          f"{s['scheduler_consults']} consults, mean wait {s['mean_wait']:.2f}s")


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
    else:
        trace_path = Path(tempfile.gettempdir()) / "repro_tracing_demo.jsonl"
    obs.enable(trace_path=trace_path)

    print("== GRM/LRM cluster over the message transport ==")
    manager_cluster()
    print("\n== proxy-group simulation (scheme=lp) ==")
    proxy_simulation()

    obs.disable()  # flushes the metric snapshot and closes the trace

    print(f"\n== report replayed from {trace_path} ==")
    print(render_trace(trace_path))


if __name__ == "__main__":
    main()
