#!/usr/bin/env python3
"""Virtual currencies: isolating subsets of agreements (Example 2 / Figure 2).

Principal A routes its agreements through two virtual currencies, A1 and
A2.  Repricing one subset (inflating A1, or issuing new tickets from it)
leaves every agreement routed through A2 untouched — the decoupling that
motivates virtual currencies in Section 2.2.

Run:  python examples/virtual_currencies.py
"""

from repro.economy import build_example_2


def show(bank, label: str) -> None:
    values = bank.currency_values()
    row = "  ".join(
        f"{name}={values[name]['disk']:g}" for name in ("A1", "A2", "B", "C", "D")
    )
    print(f"{label:40s} {row}")


def main() -> None:
    bank, tickets = build_example_2()
    print("disk values (TB) after each action:\n")
    show(bank, "initial (A1=3, A2=5 per the paper)")

    # Action 1: A inflates A1 3x.  Only C (routed via A1) is repriced.
    bank.inflate_currency("A1", 3.0)
    show(bank, "inflate A1 by 3x -> only C shrinks")

    # Action 2: A issues a new ticket from A2 to a newcomer E.  The A1
    # subset (C) is untouched; A controls dilution within A2 explicitly.
    bank.create_currency("E")
    bank.issue_relative_ticket("A2", "E", 100)
    bank.inflate_currency("A2", 2.0)
    show(bank, "add E via A2, inflate A2 2x")
    print(f"{'':40s} E={bank.currency_value('E')['disk']:g}")

    # Contrast: without virtual currencies, any change to one agreement's
    # terms would ripple through every ticket issued by A's currency.
    print(
        "\nB and D track only A2's face value; C tracks only A1's — the\n"
        "two agreement subsets are fully decoupled, as Figure 2 intends."
    )


if __name__ == "__main__":
    main()
