#!/usr/bin/env python3
"""The GRM/LRM architecture: agreements enforced through the manager protocol.

Builds the Section-3.2 two-component system — one global resource manager
owning the agreement registry, four local resource managers owning the
physical resources — wires them over the message transport, and walks
through report -> request -> grant -> reserve -> release, including a
request that must borrow transitively and one that is denied.

Run:  python examples/grm_lrm_cluster.py
"""

from repro.economy import Bank
from repro.manager import (
    AllocationGrant,
    AllocationRequestMsg,
    GlobalResourceManager,
    InProcessTransport,
    LocalResourceManager,
    ReleaseMsg,
)
from repro.units import ResourceVector


def main() -> None:
    transport = InProcessTransport()
    bank = Bank()
    grm = GlobalResourceManager("grm", bank)
    grm.attach(transport)

    # Four sites; site0 is big, the rest small.  Chain of 40% agreements
    # site0 -> site1 -> site2 -> site3 (so site3 only reaches site0's
    # capacity transitively).
    capacities = [40.0, 5.0, 5.0, 5.0]
    lrms = []
    for i, cap in enumerate(capacities):
        name = f"site{i}"
        grm.register_principal(name, ResourceVector(general=cap))
        lrm = LocalResourceManager(name, ResourceVector(general=cap))
        lrm.attach(transport)
        lrms.append(lrm)
    for i in range(3):
        bank.issue_relative_ticket(f"site{i}", f"site{i + 1}", 40)

    for lrm in lrms:
        lrm.report()
    print("availability:", {f"site{i}": grm.availability(f"site{i}") for i in range(4)})

    # site3 asks for more than it owns: the grant chains through the
    # agreements (site2 direct, site1 and site0 transitively).
    request = AllocationRequestMsg(sender="site3", principal="site3", amount=8.0)
    grant = transport.send("grm", request)
    assert isinstance(grant, AllocationGrant)
    print(f"\nsite3 requests 8.0 -> grant: {dict(grant.takes)} (theta={grant.theta:.2f})")

    # Each donor LRM reserves its share; the GRM tracked the grant.
    for principal, amount in grant.takes:
        donor = lrms[int(principal[-1])]
        donor.reserve(grant.msg_id, ResourceVector(general=amount))
        donor.report()
    print("availability after grant:",
          {f"site{i}": round(grm.availability(f"site{i}"), 2) for i in range(4)})

    # An oversized request is denied with the transitive capacity quoted.
    denied = transport.send(
        "grm", AllocationRequestMsg(sender="site3", principal="site3", amount=500.0)
    )
    print(f"\nsite3 requests 500.0 -> {type(denied).__name__}: {denied.reason}")

    # Release the first grant; availability is restored.
    transport.send("grm", ReleaseMsg(sender="site3", grant_id=grant.msg_id))
    for principal, _ in grant.takes:
        lrms[int(principal[-1])].release(grant.msg_id)
    print("\nafter release, open grants:", grm.open_grants())
    print(f"messages exchanged: {transport.delivered}")


if __name__ == "__main__":
    main()
