#!/usr/bin/env python3
"""The case study in miniature: ISP web proxies sharing capacity.

Runs the Section-4 simulation three ways — no sharing, LP-enforced
sharing on a complete 10% agreement graph, and the availability-blind
endpoint baseline — and prints an hour-by-hour waiting-time table for
ISP 0 plus the summary comparison.

Run:  python examples/isp_proxy_sharing.py        (~1 minute)
      python examples/isp_proxy_sharing.py fast   (smaller workload)
"""

import sys

import numpy as np

from repro.agreements import complete_structure
from repro.proxysim import SimulationConfig, run_simulation


def main() -> None:
    fast = len(sys.argv) > 1 and sys.argv[1] == "fast"
    scale = 80.0 if fast else 25.0
    system = complete_structure(10, share=0.1)

    results = {}
    for scheme in ("none", "lp", "endpoint"):
        cfg = SimulationConfig.scaled(scale=scale, scheme=scheme, gap=3600.0)
        results[scheme] = run_simulation(
            cfg, system if scheme != "none" else None
        )
        print(f"[{scheme}] {results[scheme].summary()}")

    print("\nMean waiting time at ISP 0 by hour of day (seconds):")
    print(f"{'hour':>4} {'no sharing':>12} {'LP sharing':>12} {'endpoint':>12}")
    slot_hours = results["none"].slot_times() / 3600.0
    series = {k: r.mean_wait_series(0) for k, r in results.items()}
    for hour in range(24):
        mask = (slot_hours >= hour) & (slot_hours < hour + 1)
        row = [float(np.mean(series[k][mask])) for k in ("none", "lp", "endpoint")]
        print(f"{hour:>4} {row[0]:>12.2f} {row[1]:>12.2f} {row[2]:>12.2f}")

    none_peak = results["none"].worst_case_wait(0)
    lp_peak = results["lp"].worst_case_wait(0)
    print(
        f"\nWorst 10-minute slot at ISP 0: {none_peak:.0f}s without sharing "
        f"vs {lp_peak:.1f}s with LP-enforced agreements "
        f"({none_peak / max(lp_peak, 1e-9):.0f}x better)."
    )
    print(
        f"Redirected requests under LP: "
        f"{100 * results['lp'].redirect_fraction():.1f}% of all traffic."
    )


if __name__ == "__main__":
    main()
