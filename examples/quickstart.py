#!/usr/bin/env python3
"""Quickstart: express agreements with tickets/currencies, enforce with LP.

Builds the paper's Example 1 (Figure 1) economy, inspects currency and
ticket values, flattens it into an agreement system, and allocates a
request through the Section-3 LP — the complete express-then-enforce
pipeline in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.agreements import AgreementSystem
from repro.allocation import allocate_lp
from repro.economy import Bank


def main() -> None:
    # --- Expression: tickets and currencies (Section 2) -------------------
    bank = Bank()
    bank.create_currency("A", face_value=1000)  # principal A
    bank.create_currency("B", face_value=100)  # principal B
    bank.create_currency("C")
    bank.create_currency("D")

    # Raw capacity: A owns 10 TB of disk, B owns 15 TB.
    bank.deposit_capacity("A", 10.0, "disk", name="A-Ticket1")
    bank.deposit_capacity("B", 15.0, "disk", name="A-Ticket2")

    # Agreements: A grants C 3 TB absolutely; A shares 50% with B
    # (a relative ticket of face 500 in A's 1000-unit currency);
    # B shares 60% with D.
    bank.issue_absolute_ticket("A", "C", 3.0, "disk", name="R-Ticket3")
    t4 = bank.issue_relative_ticket("A", "B", 500, name="R-Ticket4")
    t5 = bank.issue_relative_ticket("B", "D", 60, name="R-Ticket5")

    print("Currency values (should be A=10, B=20, C=3, D=12):")
    for name, value in bank.currency_values().items():
        print(f"  {name}: {value['disk']:g} TB")
    print(f"R-Ticket4 real value: {bank.ticket_real_value(t4.ticket_id)['disk']:g} TB")
    print(f"R-Ticket5 real value: {bank.ticket_real_value(t5.ticket_id)['disk']:g} TB")

    # --- Enforcement: the LP allocator (Section 3) --------------------------
    system = AgreementSystem.from_bank(bank, "disk")
    print("\nEffective capacities C_i (direct + transitive agreements):")
    for p, c in zip(system.principals, system.capacities()):
        print(f"  {p}: {c:g} TB")

    # D requests 8 TB.  D owns nothing; its capacity flows from B's
    # agreement, which itself is partly transitive through A.
    allocation = allocate_lp(system, "D", 8.0)
    print(f"\nAllocating 8 TB to D -> takes: {allocation.takes_by_name()}")
    print(f"Perturbation theta = {allocation.theta:.3f} "
          "(max capacity drop among other principals, minimised by the LP)")

    # Revoke B's agreement with D and watch D's capacity vanish.
    bank.revoke_ticket(t5.ticket_id)
    system2 = AgreementSystem.from_bank(bank, "disk")
    print(f"\nAfter revoking R-Ticket5, D's capacity: "
          f"{system2.capacity_of('D'):g} TB")


if __name__ == "__main__":
    main()
