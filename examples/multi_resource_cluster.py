#!/usr/bin/env python3
"""Multi-resource requests, coupled resources, and hierarchical allocation.

Exercises the Section-3.2 extensions:

1. a vector request over two resource types (one LP per type);
2. CPU+memory bound into a coupled "slot" type so they always land on the
   same machine;
3. overdraft semantics (the paper's 60%+60%+100% example);
4. multigrid refinement on a hierarchical structure.

Run:  python examples/multi_resource_cluster.py
"""

import numpy as np

from repro.agreements import AgreementSystem, hierarchical_structure
from repro.allocation import (
    MultiResourceRequest,
    allocate_hierarchical,
    allocate_lp,
    allocate_multi,
)
from repro.allocation.multiresource import expand_coupled_takes
from repro.economy import Bank
from repro.units import CoupledResource, ResourceVector


def vector_requests() -> None:
    print("=== 1. Vector request over cpu + disk ===")
    bank = Bank()
    for p in ("alpha", "beta", "gamma"):
        bank.create_currency(p)
    bank.deposit_capacity("alpha", 64, "cpu")
    bank.deposit_capacity("alpha", 2000, "disk")
    bank.deposit_capacity("beta", 16, "cpu")
    bank.issue_relative_ticket("alpha", "beta", 25)   # 25% of alpha
    bank.issue_relative_ticket("beta", "gamma", 50)   # 50% of beta

    systems = {
        rt: AgreementSystem.from_bank(bank, rt) for rt in ("cpu", "disk")
    }
    request = MultiResourceRequest(
        "gamma", ResourceVector(cpu=10.0, disk=200.0)
    )
    plans = allocate_multi(systems, request)
    for rtype, plan in plans.items():
        print(f"  {rtype}: takes {plan.takes_by_name()} (theta={plan.theta:.2f})")


def coupled_resources() -> None:
    print("\n=== 2. Coupled cpu+mem 'slot' bundles ===")
    slot = CoupledResource("slot", ResourceVector(cpu=2.0, mem=8.0))
    bank = Bank()
    bank.create_currency("provider")
    bank.create_currency("tenant")
    bank.deposit_capacity("provider", 32, "slot")  # 64 cpu / 256 GB worth
    bank.issue_relative_ticket("provider", "tenant", 50)
    systems = {"slot": AgreementSystem.from_bank(bank, "slot")}
    request = MultiResourceRequest(
        "tenant", ResourceVector(slot=6.0), coupled=(slot,)
    )
    plans = allocate_multi(systems, request)
    footprint = expand_coupled_takes(request, plans)
    print(f"  slot takes: {plans['slot'].takes_by_name()}")
    print(f"  physical footprint per donor: {footprint}")


def overdraft() -> None:
    print("\n=== 3. Overdraft semantics (Section 3.2's example) ===")
    S = np.array([[0.0, 0.6, 0.6], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
    system = AgreementSystem(
        ["A", "B", "C"], np.array([10.0, 0.0, 0.0]), S, allow_overdraft=True
    )
    print(f"  unclamped share reaching C: {0.6 + 0.6:.1f} of A's 10")
    print(f"  C's capacity with the K clamp: {system.capacity_of('C'):g} "
          "(the paper's '10 instead of 12')")
    plan = allocate_lp(system, "C", 10.0)
    print(f"  allocating all 10 to C -> takes {plan.takes_by_name()}")


def hierarchical() -> None:
    print("\n=== 4. Multigrid refinement on a hierarchical structure ===")
    system = hierarchical_structure(
        4, 6, intra_share_total=0.5, inter_share=0.08, capacity=1.0
    )
    amount = 0.9 * system.capacity_of("node0")
    flat = allocate_lp(system, "node0", amount)
    multi = allocate_hierarchical(system, "node0", amount, partial=True)
    print(f"  flat LP ({system.n} principals): theta={flat.theta:.3f}")
    print(f"  multigrid (coarse {len(system.groups)} groups + refinement): "
          f"satisfied={multi.satisfied:.2f}, theta={multi.theta:.3f}")
    donors_outside = {
        system.principals[i]
        for i in np.nonzero(multi.take)[0]
        if i not in system.groups[0]
    }
    print(f"  cross-group donors engaged: {sorted(donors_outside) or 'none'}")


if __name__ == "__main__":
    vector_requests()
    coupled_resources()
    overdraft()
    hierarchical()
